//! Criterion benches: one group per figure/table of the paper, at a size
//! small enough for statistical repetition. The figure *binaries* produce
//! the full-size numbers; these benches track the relative cost of each
//! kernel across code changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_bench::{run_wavefront, Variant};
use pdc_machine::CostModel;

/// Figure 6 kernels: resolution strategies (32×32 grid, 4 processors).
fn fig6_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    for variant in [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::Handwritten { blksize: 4 },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                b.iter(|| run_wavefront(variant, 32, 4, CostModel::ipsc2(), false));
            },
        );
    }
    g.finish();
}

/// Figure 7 kernels: the optimization ladder.
fn fig7_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    for variant in [Variant::OptimizedII, Variant::OptimizedIII { blksize: 4 }] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                b.iter(|| run_wavefront(variant, 32, 4, CostModel::ipsc2(), false));
            },
        );
    }
    g.finish();
}

/// Block-size sweep kernel (the §4 trade-off).
fn blocksize_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocksize");
    for blk in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(blk), &blk, |b, &blk| {
            b.iter(|| {
                run_wavefront(
                    Variant::OptimizedIII { blksize: blk },
                    32,
                    4,
                    CostModel::ipsc2(),
                    false,
                )
            });
        });
    }
    g.finish();
}

/// Compiler front-half cost: inline + analyze + generate both strategies.
fn compile_kernels(c: &mut Criterion) {
    use pdc_core::driver::{compile, Job, Strategy};
    use pdc_core::programs;
    let program = programs::gauss_seidel();
    let mut g = c.benchmark_group("compile");
    for (name, strategy) in [
        ("runtime", Strategy::Runtime),
        ("compile_time", Strategy::CompileTime),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let job = Job::new(
                    &program,
                    "gs_iteration",
                    programs::wavefront_decomposition(8),
                )
                .with_const("n", 64);
                compile(&job, strategy).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig6_kernels, fig7_kernels, blocksize_kernels, compile_kernels
}
criterion_main!(benches);
