//! Wall-clock micro-benches: one group per figure/table of the paper, at
//! a size small enough for quick repetition. The figure *binaries* produce
//! the full-size simulated numbers; these benches track the relative host
//! cost of each kernel across code changes.
//!
//! The workspace is std-only (the build environment has no registry
//! access), so this is a plain `harness = false` bench over
//! `std::time::Instant` rather than criterion: each kernel runs for a few
//! warm-up iterations, then a timed batch, and the median per-iteration
//! time is printed.

use pdc_bench::{run_wavefront, Variant};
use pdc_machine::CostModel;
use std::time::Instant;

/// Time `f` and print the median per-iteration time in microseconds.
fn bench(label: &str, mut f: impl FnMut()) {
    const WARMUP: usize = 3;
    const SAMPLES: usize = 11;
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[SAMPLES / 2];
    let spread = samples[SAMPLES - 1] - samples[0];
    println!("{label:<42} {median:>12.1} µs/iter  (spread {spread:>10.1} µs)");
}

fn main() {
    println!("== fig6: resolution strategies (32x32, 4 procs) ==");
    for variant in [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::Handwritten { blksize: 4 },
    ] {
        bench(&format!("fig6/{variant}"), || {
            run_wavefront(variant, 32, 4, CostModel::ipsc2(), false);
        });
    }

    println!("\n== fig7: optimization ladder ==");
    for variant in [Variant::OptimizedII, Variant::OptimizedIII { blksize: 4 }] {
        bench(&format!("fig7/{variant}"), || {
            run_wavefront(variant, 32, 4, CostModel::ipsc2(), false);
        });
    }

    println!("\n== blocksize sweep ==");
    for blk in [1usize, 4, 16] {
        bench(&format!("blocksize/{blk}"), || {
            run_wavefront(
                Variant::OptimizedIII { blksize: blk },
                32,
                4,
                CostModel::ipsc2(),
                false,
            );
        });
    }

    println!("\n== compile front half ==");
    {
        use pdc_core::driver::{compile, Job, Strategy};
        use pdc_core::programs;
        let program = programs::gauss_seidel();
        for (name, strategy) in [
            ("runtime", Strategy::Runtime),
            ("compile_time", Strategy::CompileTime),
        ] {
            bench(&format!("compile/{name}"), || {
                let job = Job::new(
                    &program,
                    "gs_iteration",
                    programs::wavefront_decomposition(8),
                )
                .with_const("n", 64);
                compile(&job, strategy).unwrap();
            });
        }
    }
}
