//! The reliability tax: what sequence numbers, acks, and retransmission
//! timers cost on the Jacobi kernel.
//!
//! Three configurations of the same compiled program on the simulator:
//!
//! * **raw** — the vanilla fabric, no reliability layer at all;
//! * **reliable** — the full protocol (seq words, acks, timers) forced on
//!   with an empty fault plan, so every cycle of difference is pure
//!   protocol overhead;
//! * **lossy** — a seeded drop/dup/delay plan, showing what recovery
//!   costs on top of the protocol floor.
//!
//! Prints a table and writes `BENCH_fault_overhead.json` to the current
//! directory so overhead trajectories can be tracked across commits.
//!
//! Usage: `cargo run --release -p pdc-bench --bin fault_overhead [n]`

use pdc_bench::print_table;
use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{CostModel, FaultPlan, RelConfig};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

struct Row {
    config: &'static str,
    makespan: u64,
    messages: u64,
    words: u64,
    retransmits: u64,
    acks: u64,
}

fn measure(
    n: usize,
    nprocs: usize,
    mode: impl Fn(SpmdMachine) -> SpmdMachine,
    config: &'static str,
) -> Row {
    let program = programs::jacobi();
    let decomp = Decomposition::new(nprocs)
        .array("New", Dist::ColumnCyclic)
        .array("Old", Dist::ColumnCyclic);
    let mut job = Job::new(&program, "jacobi", decomp).with_const("n", n as i64);
    job.extent_overrides.insert("Old".to_owned(), (n, n));
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("jacobi compiles");
    let mut m = mode(SpmdMachine::new(&compiled.spmd, CostModel::ipsc2()).expect("lowers"));
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array("Old", Dist::ColumnCyclic, &driver::standard_input(n, n));
    let out = m.run().unwrap_or_else(|e| panic!("{config}: {e}"));
    assert_eq!(out.report.undelivered, 0, "{config}: undelivered");

    // Verify outputs against the sequential interpreter: a bench that
    // computes the wrong answer measures nothing.
    let gathered = m.gather("New").expect("New exists");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");
    assert_eq!(
        driver::first_mismatch(&gathered, &seq),
        None,
        "{config}: wrong output"
    );

    let fr = out.report.fault.unwrap_or_default();
    Row {
        config,
        makespan: out.report.stats.makespan().0,
        messages: out.report.stats.network.messages,
        words: out.report.stats.network.words,
        retransmits: fr.retransmits,
        acks: fr.acks_sent,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let nprocs = 4usize;
    let cfg = RelConfig::default();
    let lossy = FaultPlan::seeded(0xBE2C)
        .with_drops(200)
        .with_dups(100)
        .with_delays(100, 10_000)
        .with_fault_budget(4);

    let rows = [
        measure(n, nprocs, |m| m, "raw"),
        measure(
            n,
            nprocs,
            move |m| m.with_reliable_delivery(cfg),
            "reliable",
        ),
        measure(
            n,
            nprocs,
            {
                let lossy = lossy.clone();
                move |m| m.with_faults_cfg(lossy.clone(), cfg)
            },
            "lossy",
        ),
    ];

    let base = rows[0].makespan;
    let col_names: Vec<String> = ["makespan", "vs raw", "messages", "words", "rexmit", "acks"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let table: Vec<(String, Vec<String>)> = rows
        .iter()
        .map(|r| {
            (
                r.config.to_string(),
                vec![
                    r.makespan.to_string(),
                    format!("{:.3}x", r.makespan as f64 / base as f64),
                    r.messages.to_string(),
                    r.words.to_string(),
                    r.retransmits.to_string(),
                    r.acks.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        &format!("Reliability tax — {n}x{n} Jacobi on {nprocs} processors, iPSC/2 cost model"),
        &col_names,
        &table,
    );

    // Machine-readable trajectory point.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fault_overhead\",\n  \"n\": {n},\n  \"nprocs\": {nprocs},\n  \"configs\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"makespan\": {}, \"messages\": {}, \"words\": {}, \
             \"retransmits\": {}, \"acks_sent\": {}, \"overhead_vs_raw\": {:.4}}}{}\n",
            r.config,
            r.makespan,
            r.messages,
            r.words,
            r.retransmits,
            r.acks,
            r.makespan as f64 / base as f64,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fault_overhead.json", &json).expect("write BENCH_fault_overhead.json");
    println!("\nwrote BENCH_fault_overhead.json");
}
