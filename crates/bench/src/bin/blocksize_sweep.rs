//! §4's open question: "the determination of the block size to obtain
//! the best trade-off between minimizing message traffic and exploiting
//! parallelism" — and "the best block size depends on the size of the
//! matrix" (§2.3).
//!
//! Sweeps `blksize` for Optimized III at several grid sizes.
//!
//! Usage: `cargo run --release -p pdc-bench --bin blocksize_sweep [s]`

use pdc_bench::{print_table, run_wavefront, Variant};
use pdc_machine::CostModel;

fn main() {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let cost = CostModel::ipsc2();
    let blocks = [1usize, 2, 4, 8, 16, 32, 64];
    let col_names: Vec<String> = blocks.iter().map(|b| format!("b={b}")).collect();
    let mut rows = Vec::new();
    for n in [64usize, 128, 256] {
        let times: Vec<String> = blocks
            .iter()
            .map(|&b| {
                run_wavefront(Variant::OptimizedIII { blksize: b }, n, s, cost, false)
                    .makespan
                    .to_string()
            })
            .collect();
        rows.push((format!("n={n} (cycles)"), times));
        let best = blocks
            .iter()
            .min_by_key(|&&b| {
                run_wavefront(Variant::OptimizedIII { blksize: b }, n, s, cost, false).makespan
            })
            .unwrap();
        rows.push((format!("n={n} best"), vec![format!("b={best}"); 1]));
    }
    print_table(
        &format!("Block size sweep — Optimized III on {s} processors"),
        &col_names,
        &rows,
    );
    println!(
        "\nPaper shape check: time is U-shaped in the block size (b=1 pays\n\
         message start-up per element; huge b serializes the wavefront),\n\
         and the optimum grows with the matrix."
    );
}
