//! Self-validating sweep of the automatic decomposition search.
//!
//! For each paper program the bin runs `Job::with_auto_decomposition()`
//! (no pinned optimization level, so the search also sweeps the
//! optimization ladder and strip-mine block sizes), then *re-executes
//! every viable candidate on the simulator* and checks the tuner's
//! central claim end to end:
//!
//! 1. every viable candidate's predicted makespan equals its measured
//!    simulator makespan, cycle for cycle;
//! 2. therefore the predicted-best candidate is the measured-best
//!    candidate (the winner's measured makespan is the minimum over all
//!    viable candidates);
//! 3. the search covered at least 50 candidates per program and took
//!    under one second per program.
//!
//! Results go to stdout and `BENCH_tune.json`; the bin re-parses its own
//! JSON with the std-only parser and exits non-zero on any violation.
//!
//! Usage: `cargo run --release -p pdc-bench --bin tune`

use pdc_bench::print_table;
use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::trace_chrome::{parse_json, Json};
use pdc_machine::{Backend, CostModel};
use pdc_spmd::Scalar;
use std::fmt::Write as _;
use std::time::Instant;

struct Sweep {
    name: &'static str,
    program: pdc_lang::Program,
    entry: &'static str,
    strategy: Strategy,
    n: usize,
    s: usize,
    cost: CostModel,
}

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep {
            name: "wavefront/compile_time",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            strategy: Strategy::CompileTime,
            n: 16,
            s: 4,
            cost: CostModel::ipsc2(),
        },
        Sweep {
            name: "wavefront/runtime_res",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            strategy: Strategy::Runtime,
            n: 16,
            s: 4,
            cost: CostModel::ipsc2(),
        },
        Sweep {
            name: "jacobi/compile_time",
            program: programs::jacobi(),
            entry: "jacobi",
            strategy: Strategy::CompileTime,
            n: 16,
            s: 4,
            cost: CostModel::ipsc2(),
        },
        // Cheap communication flips the trade-off: here the search must
        // abandon the serial fallback and rediscover the paper's
        // column-cyclic wavefront decomposition (strip-mined, b=8).
        Sweep {
            name: "wavefront/shared_memory",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            strategy: Strategy::CompileTime,
            n: 32,
            s: 4,
            cost: CostModel::shared_memory(),
        },
    ]
}

struct Outcome {
    name: &'static str,
    n: usize,
    candidates: usize,
    viable: usize,
    search_secs: f64,
    winner: String,
    predicted: u64,
    measured: u64,
    best_measured: u64,
    failures: usize,
}

fn run_sweep(sw: &Sweep) -> Outcome {
    let mut failures = 0usize;
    let job = Job::new(
        &sw.program,
        sw.entry,
        programs::wavefront_decomposition(sw.s),
    )
    .with_const("n", sw.n as i64)
    .with_auto_decomposition_under(sw.cost);

    let t0 = Instant::now();
    let compiled =
        driver::compile(&job, sw.strategy).unwrap_or_else(|e| panic!("{}: {e}", sw.name));
    let search_secs = t0.elapsed().as_secs_f64();
    let tune = compiled.tune.as_ref().expect("auto compile records search");

    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(sw.n as i64))
        .array("Old", driver::standard_input(sw.n, sw.n));

    // Re-execute every viable candidate and compare measured makespan
    // against the tuner's prediction.
    let mut best_measured = u64::MAX;
    let mut winner_measured = 0u64;
    for (i, e) in tune.evaluated.iter().enumerate() {
        let Ok(score) = &e.outcome else { continue };
        let mut cjob = Job::new(&sw.program, sw.entry, e.candidate.decomp.clone())
            .with_const("n", sw.n as i64)
            .with_verify_static(false);
        if let Some(o) = e.candidate.opt_level {
            cjob = cjob.with_opt_level(o);
        }
        let ccomp = driver::compile(&cjob, sw.strategy)
            .unwrap_or_else(|e2| panic!("{}: viable candidate fails to recompile: {e2}", sw.name));
        let exec = driver::execute_on(&ccomp, &inputs, sw.cost, Backend::Simulated)
            .unwrap_or_else(|e2| panic!("{}: viable candidate fails to run: {e2}", sw.name));
        let measured = exec.makespan();
        if measured != score.makespan {
            eprintln!(
                "{}: candidate `{}`: predicted {} != measured {}",
                sw.name, e.candidate.label, score.makespan, measured
            );
            failures += 1;
        }
        best_measured = best_measured.min(measured);
        if i == tune.winner {
            winner_measured = measured;
        }
    }

    let predicted = tune.winner_score().makespan;
    if winner_measured != best_measured {
        eprintln!(
            "{}: predicted-best is not measured-best: winner measured {}, best {}",
            sw.name, winner_measured, best_measured
        );
        failures += 1;
    }
    if tune.evaluated.len() < 50 {
        eprintln!(
            "{}: only {} candidates searched (need >= 50)",
            sw.name,
            tune.evaluated.len()
        );
        failures += 1;
    }
    if search_secs >= 1.0 {
        eprintln!("{}: search took {search_secs:.3}s (budget 1s)", sw.name);
        failures += 1;
    }

    Outcome {
        name: sw.name,
        n: sw.n,
        candidates: tune.evaluated.len(),
        viable: tune.viable(),
        search_secs,
        winner: tune.winner().candidate.label.clone(),
        predicted,
        measured: winner_measured,
        best_measured,
        failures,
    }
}

fn main() {
    let mut failures = 0usize;
    let mut rows = Vec::new();
    let mut doc = String::from("{\n  \"sweeps\": [\n");
    let outcomes: Vec<Outcome> = sweeps().iter().map(run_sweep).collect();
    for (i, o) in outcomes.iter().enumerate() {
        failures += o.failures;
        rows.push((
            format!("{} n={} s=4", o.name, o.n),
            vec![
                o.candidates.to_string(),
                o.viable.to_string(),
                format!("{:.3}", o.search_secs),
                o.predicted.to_string(),
                o.best_measured.to_string(),
                if o.predicted == o.best_measured && o.failures == 0 {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        ));
        if i > 0 {
            doc.push_str(",\n");
        }
        let _ = write!(
            doc,
            "    {{\"program\": \"{}\", \"n\": {}, \"s\": 4, \"candidates\": {}, \
             \"viable\": {}, \"search_secs\": {:.6}, \"winner\": \"{}\", \
             \"predicted_makespan\": {}, \"measured_makespan\": {}, \
             \"best_measured_makespan\": {}, \"predicted_best_is_measured_best\": {}}}",
            o.name,
            o.n,
            o.candidates,
            o.viable,
            o.search_secs,
            o.winner,
            o.predicted,
            o.measured,
            o.best_measured,
            o.measured == o.best_measured && o.predicted == o.measured,
        );
    }
    doc.push_str("\n  ]\n}\n");

    // Self-validation: the document must survive the std-only parser and
    // assert the predicted-best == measured-best property for every sweep.
    match parse_json(&doc) {
        Ok(parsed) => {
            let parsed_sweeps = parsed
                .get("sweeps")
                .and_then(|r| r.as_arr())
                .unwrap_or_default();
            if parsed_sweeps.len() != outcomes.len() {
                eprintln!("BENCH_tune.json: expected {} sweeps", outcomes.len());
                failures += 1;
            }
            for r in parsed_sweeps {
                let ok = r.get("predicted_best_is_measured_best") == Some(&Json::Bool(true));
                let cands = r
                    .get("candidates")
                    .and_then(|c| c.as_num())
                    .unwrap_or(f64::NAN);
                if !ok || cands < 50.0 {
                    let name = r.get("program").and_then(|x| x.as_str()).unwrap_or("?");
                    eprintln!("BENCH_tune.json: {name} failed self-validation");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("BENCH_tune.json does not parse: {e}");
            failures += 1;
        }
    }
    std::fs::write("BENCH_tune.json", &doc).expect("write BENCH_tune.json");
    println!("wrote BENCH_tune.json");

    print_table(
        "automatic decomposition search",
        &[
            "cands".into(),
            "viable".into(),
            "secs".into(),
            "predicted".into(),
            "best".into(),
            "pred=best".into(),
        ],
        &rows,
    );

    if failures > 0 {
        eprintln!("\n{failures} tune failure(s)");
        std::process::exit(1);
    }
    println!("\npredicted-best == measured-best on every program");
}
