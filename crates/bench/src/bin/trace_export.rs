//! Export Chrome traces and critical-path breakdowns for the five
//! program versions of the paper's Figures 6/7, on both backends.
//!
//! For each (variant, backend) pair the bin runs the wavefront with
//! tracing on, writes a Perfetto-loadable `BENCH_trace_<variant>_<backend>.json`,
//! and analyzes the trace's critical path. The per-run breakdowns go to
//! `BENCH_critical_path.json` and a summary table goes to stdout.
//!
//! The bin validates its own output and exits non-zero on any failure —
//! the emitted JSON must parse with monotonic slice timestamps and
//! matched flow arrows, and on the simulator backend the critical-path
//! decomposition (compute + overheads + flight + blocked) must sum
//! exactly to the reported makespan. CI runs this at n=16, s=4.
//!
//! Usage: `cargo run --release -p pdc-bench --bin trace_export [n] [s]`
//! (defaults: n=16, s=4).

use pdc_bench::{print_table, run_wavefront_traced, Variant};
use pdc_machine::{analyze, chrome_trace, validate_chrome_trace, Backend, CostModel};
use std::fmt::Write as _;

fn slug(v: Variant) -> &'static str {
    match v {
        Variant::RuntimeRes => "runtime_res",
        Variant::CompileTime => "compile_time",
        Variant::OptimizedI => "optimized_i",
        Variant::OptimizedII => "optimized_ii",
        Variant::OptimizedIII { .. } => "optimized_iii",
        Variant::Handwritten { .. } => "handwritten",
    }
}

fn backend_slug(b: Backend) -> &'static str {
    match b {
        Backend::Simulated => "sim",
        Backend::Threaded { .. } => "threaded",
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let s: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let cost = CostModel::ipsc2();
    let cap = 1 << 20;
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ];

    let mut failures = 0usize;
    let mut rows = Vec::new();
    let mut summary = String::from("{\n  \"runs\": [\n");
    let mut first = true;
    for v in variants {
        for backend in [Backend::Simulated, Backend::threaded()] {
            let report = run_wavefront_traced(v, n, s, cost, backend, cap);
            let makespan = report.stats.makespan().0;
            let trace = &report.trace;
            assert!(
                !trace.is_empty(),
                "{v} on {backend:?}: empty trace — the backend dropped the trace config"
            );

            let json = chrome_trace(trace, s);
            let path = format!("BENCH_trace_{}_{}.json", slug(v), backend_slug(backend));
            match validate_chrome_trace(&json) {
                Ok(st) => {
                    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
                    println!(
                        "wrote {path} ({} slices, {} flows, {} dropped)",
                        st.slices, st.flows, st.dropped
                    );
                }
                Err(e) => {
                    eprintln!("INVALID chrome trace for {v} on {backend:?}: {e}");
                    failures += 1;
                    continue;
                }
            }

            let a = analyze(trace, s);
            let cp = &a.critical_path;
            if backend == Backend::Simulated {
                if cp.total() != makespan {
                    eprintln!(
                        "{v}: critical path sums to {} but makespan is {makespan} \
                         (compute {} + send {} + recv {} + flight {} + blocked {})",
                        cp.total(),
                        cp.compute,
                        cp.send_overhead,
                        cp.recv_overhead,
                        cp.flight,
                        cp.blocked
                    );
                    failures += 1;
                }
                if !cp.exact {
                    eprintln!("{v}: critical path on the simulator should be exact");
                    failures += 1;
                }
            }

            let overhead = cp.send_overhead + cp.recv_overhead;
            rows.push((
                format!("{v} [{}]", backend_slug(backend)),
                vec![
                    makespan.to_string(),
                    cp.compute.to_string(),
                    overhead.to_string(),
                    cp.flight.to_string(),
                    cp.blocked.to_string(),
                    format!("{:.0}%", 100.0 * cp.blocked as f64 / makespan.max(1) as f64),
                ],
            ));

            if !first {
                summary.push_str(",\n");
            }
            first = false;
            let _ = write!(
                summary,
                "    {{\"variant\": \"{}\", \"backend\": \"{}\", \"n\": {n}, \"s\": {s}, \
                 \"makespan\": {makespan}, \"compute\": {}, \"send_overhead\": {}, \
                 \"recv_overhead\": {}, \"flight\": {}, \"blocked\": {}, \"exact\": {}, \
                 \"events\": {}, \"dropped\": {}}}",
                slug(v),
                backend_slug(backend),
                cp.compute,
                cp.send_overhead,
                cp.recv_overhead,
                cp.flight,
                cp.blocked,
                cp.exact,
                trace.len(),
                trace.dropped(),
            );
        }
    }
    summary.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_critical_path.json", &summary).expect("write BENCH_critical_path.json");
    println!("wrote BENCH_critical_path.json");

    print_table(
        &format!("critical path, {n}x{n} wavefront on {s} processors"),
        &[
            "makespan".into(),
            "compute".into(),
            "msg overhead".into(),
            "flight".into(),
            "blocked".into(),
            "blocked %".into(),
        ],
        &rows,
    );

    if failures > 0 {
        eprintln!("\n{failures} validation failure(s)");
        std::process::exit(1);
    }
}
