//! Crash recovery: what checkpoints cost and how fast a crashed
//! processor comes back, for the five compiled wavefront versions of
//! Figures 6/7.
//!
//! Three sweeps on the simulator (deterministic, so every number is
//! reproducible bit-for-bit):
//!
//! * **baseline** — each version fault-free with no checkpoints;
//! * **overhead vs interval** — checkpoints every 512/2048/8192 charged
//!   ops with no crash: the pure snapshot tax (<5% at the default 2048
//!   interval is the target);
//! * **recovery vs crash point** — a scripted crash of P1 at an early,
//!   middle, and late op under the default interval: time-to-recover and
//!   the recovered makespan.
//!
//! Every run is self-validated: gathered outputs must match the
//! sequential interpreter, every injected crash must be survived, and
//! recovery runs must not leak protocol traffic into program-level
//! counts. Validation failures are listed in `BENCH_recovery.json`
//! (`"errors"`) and fail the process, so CI can gate on this binary.
//!
//! Usage: `cargo run --release -p pdc-bench --bin recovery [n]`

use pdc_bench::{build_wavefront, print_table, Variant};
use pdc_core::driver::{self, Inputs};
use pdc_core::programs;
use pdc_machine::{CheckpointCfg, CostModel, FaultPlan, ProcId, RecoveryReport, RelConfig};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

const NPROCS: usize = 4;
const INTERVALS: [u64; 3] = [512, 2_048, 8_192];
const DEFAULT_INTERVAL: u64 = 2_048;
const CRASH_POINTS: [u64; 3] = [10, 100, 1_000];

fn versions() -> [Variant; 5] {
    [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 8 },
    ]
}

struct RunResult {
    makespan: u64,
    recovery: Option<RecoveryReport>,
}

/// One simulated run of `variant`, optionally checkpointed and crashed,
/// with output verification against the sequential interpreter.
fn run_one(
    variant: Variant,
    n: usize,
    reliable: bool,
    ckpt: Option<CheckpointCfg>,
    crash: Option<(ProcId, u64)>,
    errors: &mut Vec<String>,
) -> RunResult {
    let label = format!("{variant} ckpt={ckpt:?} crash={crash:?}");
    let prog = build_wavefront(variant, n, NPROCS);
    let mut m = SpmdMachine::new(&prog, CostModel::ipsc2()).expect("program lowers");
    if reliable && ckpt.is_none() && crash.is_none() {
        m = m.with_reliable_delivery(RelConfig::default());
    }
    if let Some(cfg) = ckpt {
        m = m.with_checkpoints(cfg);
    }
    if let Some((proc, at_op)) = crash {
        m = m.with_faults_cfg(
            FaultPlan::seeded(0xC2A5).with_crash(proc, at_op),
            RelConfig::default(),
        );
    }
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m.run().unwrap_or_else(|e| panic!("{label}: {e}"));

    if out.report.undelivered != 0 {
        errors.push(format!("{label}: {} undelivered", out.report.undelivered));
    }
    let gathered = m.gather("New").expect("New exists");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
        .expect("sequential run");
    if driver::first_mismatch(&gathered, &seq).is_some() {
        errors.push(format!("{label}: output differs from sequential"));
    }
    match (&out.report.recovery, crash) {
        (Some(rec), Some(_)) if rec.crashes_survived != 1 => {
            errors.push(format!(
                "{label}: expected 1 survived crash, got {}",
                rec.crashes_survived
            ));
        }
        (None, _) if ckpt.is_some() => {
            errors.push(format!(
                "{label}: checkpointed run carries no RecoveryReport"
            ));
        }
        _ => {}
    }
    RunResult {
        makespan: out.report.stats.makespan().0,
        recovery: out.report.recovery,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let mut errors: Vec<String> = Vec::new();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"recovery\",\n  \"n\": {n},\n  \"nprocs\": {NPROCS},\n  \
         \"default_interval\": {DEFAULT_INTERVAL},\n  \"versions\": [\n"
    ));

    let mut overhead_rows = Vec::new();
    let mut recovery_rows = Vec::new();
    let vs = versions();
    for (vi, &variant) in vs.iter().enumerate() {
        let base = run_one(variant, n, false, None, None, &mut errors);
        // Checkpoints require the reliable layer, so the fair baseline
        // for the *checkpoint* tax is a reliable run without them; the
        // plain run is still reported so the full protocol tax is visible.
        let rel_base = run_one(variant, n, true, None, None, &mut errors);

        // Checkpoint tax, no crash.
        let mut per_interval = Vec::new();
        for &interval in &INTERVALS {
            let r = run_one(
                variant,
                n,
                true,
                Some(CheckpointCfg::every(interval)),
                None,
                &mut errors,
            );
            let rec = r.recovery.unwrap_or_default();
            if rec.crashes_survived != 0 {
                errors.push(format!("{variant}: spurious crash in overhead sweep"));
            }
            let overhead = r.makespan as f64 / rel_base.makespan as f64 - 1.0;
            if interval == DEFAULT_INTERVAL && overhead >= 0.05 {
                errors.push(format!(
                    "{variant}: checkpoint overhead {:.2}% at default interval \
                     breaches the 5% target",
                    overhead * 100.0
                ));
            }
            per_interval.push((interval, r.makespan, overhead, rec));
        }
        overhead_rows.push((
            variant.to_string(),
            per_interval
                .iter()
                .map(|(_, _, ov, rec)| format!("{:.2}% ({}ck)", ov * 100.0, rec.checkpoints_taken))
                .collect::<Vec<_>>(),
        ));

        // Time-to-recover vs crash point, default interval. The recovered
        // makespan is compared against the fault-free *checkpointed* run at
        // the same interval — the extra time is what the crash itself cost.
        let ckpt_base = per_interval
            .iter()
            .find(|(i, ..)| *i == DEFAULT_INTERVAL)
            .map(|(_, mk, ..)| *mk)
            .unwrap_or(rel_base.makespan);
        let mut per_crash = Vec::new();
        for &at_op in &CRASH_POINTS {
            let r = run_one(
                variant,
                n,
                true,
                Some(CheckpointCfg::every(DEFAULT_INTERVAL)),
                Some((ProcId(1), at_op)),
                &mut errors,
            );
            let rec = r.recovery.unwrap_or_default();
            per_crash.push((at_op, r.makespan, rec));
        }
        recovery_rows.push((
            variant.to_string(),
            per_crash
                .iter()
                .map(|(_, mk, rec)| {
                    format!(
                        "{:.2}x +{}cy",
                        *mk as f64 / ckpt_base as f64,
                        rec.recovery_cycles
                    )
                })
                .collect::<Vec<_>>(),
        ));

        json.push_str(&format!(
            "    {{\"version\": \"{variant}\", \"baseline_makespan\": {}, \
             \"reliable_baseline_makespan\": {},\n      \"overhead\": [\n",
            base.makespan, rel_base.makespan
        ));
        for (i, (interval, mk, ov, rec)) in per_interval.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"interval_ops\": {interval}, \"makespan\": {mk}, \
                 \"overhead\": {ov:.6}, \"checkpoints\": {}, \"bytes\": {}}}{}\n",
                rec.checkpoints_taken,
                rec.bytes_snapshotted,
                if i + 1 < per_interval.len() { "," } else { "" }
            ));
        }
        json.push_str("      ],\n      \"recovery\": [\n");
        for (i, (at_op, mk, rec)) in per_crash.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"crash_at_op\": {at_op}, \"makespan\": {mk}, \
                 \"crashes_survived\": {}, \"replayed_ops\": {}, \"replay_frames\": {}, \
                 \"recovery_cycles\": {}}}{}\n",
                rec.crashes_survived,
                rec.replayed_ops,
                rec.replay_frames,
                rec.recovery_cycles,
                if i + 1 < per_crash.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "      ]}}{}\n",
            if vi + 1 < vs.len() { "," } else { "" }
        ));
    }

    let col_names: Vec<String> = INTERVALS.iter().map(|i| format!("every {i}")).collect();
    print_table(
        &format!("Checkpoint overhead vs interval — {n}x{n} wavefront on {NPROCS} processors"),
        &col_names,
        &overhead_rows,
    );
    let col_names: Vec<String> = CRASH_POINTS.iter().map(|c| format!("crash@{c}")).collect();
    print_table(
        &format!(
            "Recovered makespan (vs fault-free) and recovery cycles, interval {DEFAULT_INTERVAL}"
        ),
        &col_names,
        &recovery_rows,
    );

    json.push_str(&format!(
        "  ],\n  \"self_validated\": {},\n  \"errors\": [",
        errors.is_empty()
    ));
    for (i, e) in errors.iter().enumerate() {
        json.push_str(&format!(
            "\n    \"{}\"{}",
            e.replace('"', "'"),
            if i + 1 < errors.len() { "," } else { "\n  " }
        ));
    }
    json.push_str("]\n}\n");
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("\nwrote BENCH_recovery.json");

    if !errors.is_empty() {
        eprintln!("\nself-validation FAILED:");
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    println!("self-validation passed: outputs, crash survival, and the <5% overhead target hold");
}
