//! Live metrics monitor and metrics self-validation bench.
//!
//! Runs the five compiler variants of the wavefront program on the
//! threaded backend while *live-sampling* a shared
//! [`MetricsRegistry`](pdc_machine::MetricsRegistry) from a monitor
//! thread — the registry is lock-free, so sampling never perturbs the
//! run — and refreshes a per-processor dashboard on a TTY. After each
//! run it cross-validates three fully independent accounts of the same
//! traffic:
//!
//! 1. the metrics registry's per-channel tables,
//! 2. the scheduler/fabric `pair_messages` ledger,
//! 3. the static cost-model prediction (on statically exact variants),
//!
//! plus logical-metrics equality between the threaded backend and the
//! deterministic simulator. It then measures the steady-state overhead
//! of full metrics against the metrics-off (flight-recorder-only)
//! default, and writes everything to a self-validated
//! `BENCH_metrics.json`.
//!
//! Usage: `cargo run --release -p pdc-bench --bin monitor [n]`
//!
//! The <2% overhead bound is asserted only when `n >= 512` (below that
//! the run is dominated by thread startup, not the record path) on a
//! host with at least two hardware threads; a smaller `n` remains
//! usable as a CI smoke test of the agreement checks.

use pdc_bench::{compile_wavefront, Variant};
use pdc_core::driver;
use pdc_machine::{
    Backend, CostModel, Ctr, MetricsRegistry, MetricsSnapshot, ProcId, RunReport, Tag,
};
use pdc_spmd::ir::SpmdProgram;
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WARMUP: usize = 1;
const SAMPLES: usize = 5;
const NPROCS: usize = 4;

/// Median of `SAMPLES` timed runs, in milliseconds.
fn median_ms(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

/// One dashboard frame: a fixed-height per-processor table, so the
/// monitor thread can repaint it in place with a cursor-up escape.
fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>9}\n",
        "proc", "ops", "frames", "words", "recvd", "ring max", "parks", "stalls"
    ));
    for (p, pm) in snap.procs.iter().enumerate() {
        out.push_str(&format!(
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>9}\n",
            p,
            pm.get(Ctr::Ops),
            pm.get(Ctr::FramesSent),
            pm.get(Ctr::WordsSent),
            pm.get(Ctr::FramesRecvd),
            pm.ring_occupancy.max,
            pm.get(Ctr::Parks),
            pm.get(Ctr::EnqueueStalls),
        ));
    }
    out
}

/// Build a machine for `prog` with the wavefront inputs preloaded.
fn machine_for(prog: &SpmdProgram, n: usize, backend: Backend) -> SpmdMachine {
    let mut m = SpmdMachine::new(prog, CostModel::ipsc2())
        .expect("program lowers")
        .with_backend(backend);
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    m
}

/// Run `prog` on the threaded backend with a shared registry, repainting
/// the dashboard from a monitor thread while the run executes (TTY
/// only — redirected output gets just the final frame).
fn live_run(prog: &SpmdProgram, n: usize) -> RunReport {
    let registry = Arc::new(MetricsRegistry::new(NPROCS));
    let stop = Arc::new(AtomicBool::new(false));
    let tty = std::io::stdout().is_terminal();
    let sampler = tty.then(|| {
        let (registry, stop) = (Arc::clone(&registry), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut painted = false;
            while !stop.load(Ordering::Acquire) {
                let frame = render(&registry.snapshot());
                let lines = frame.lines().count();
                if painted {
                    print!("\x1b[{lines}A");
                }
                for line in frame.lines() {
                    println!("\x1b[2K{line}");
                }
                std::io::stdout().flush().ok();
                painted = true;
                std::thread::sleep(Duration::from_millis(50));
            }
            if painted {
                print!("\x1b[{}A", NPROCS + 1);
            }
        })
    });
    let mut m = machine_for(prog, n, Backend::threaded());
    m = m.with_metrics_registry(Arc::clone(&registry));
    let out = m.run().expect("threaded run succeeds");
    stop.store(true, Ordering::Release);
    if let Some(h) = sampler {
        h.join().expect("monitor thread exits cleanly");
    }
    print!("{}", render(&out.report.metrics));
    out.report
}

/// Check the metrics registry's channel table against the scheduler's
/// `pair_messages` ledger; both saw every frame independently.
fn check_scheduler_agreement(report: &RunReport, label: &str) {
    let by_triple = report.metrics.out_by_triple();
    assert_eq!(
        by_triple.len(),
        report.pair_messages.len(),
        "{label}: channel sets differ between metrics and scheduler"
    );
    for ((src, dst, tag), (frames, _)) in &by_triple {
        assert_eq!(
            report.pair_messages.get(&(
                ProcId(*src as usize),
                ProcId(*dst as usize),
                Tag(*tag as u32)
            )),
            Some(frames),
            "{label}: {src}->{dst} tag {tag}"
        );
    }
}

struct VariantRow {
    name: String,
    channels: usize,
    frames: u64,
    words: u64,
    prediction_exact: bool,
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    println!("Runtime metrics monitor — {n}x{n} wavefront on {NPROCS} processors\n");

    let mut rows = Vec::new();
    for variant in [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ] {
        println!("== {variant} ==");
        let compiled = compile_wavefront(variant, n, NPROCS).expect("compiler variant");
        let thr = live_run(&compiled.spmd, n);

        // Account 1 vs account 2, on both backends.
        check_scheduler_agreement(&thr, &format!("{variant} (threaded)"));
        let sim = {
            let mut m = machine_for(&compiled.spmd, n, Backend::Simulated).with_metrics();
            m.run().expect("simulated run succeeds").report
        };
        check_scheduler_agreement(&sim, &format!("{variant} (sim)"));
        assert_eq!(
            sim.metrics.logical(),
            thr.metrics.logical(),
            "{variant}: logical metrics diverge across backends"
        );

        // Account 3: the static cost model, exact on compile-time
        // variants — the observed tables must equal the prediction.
        let pred = &compiled.prediction;
        if pred.exact {
            let by_triple = thr.metrics.out_by_triple();
            assert_eq!(
                by_triple.len(),
                pred.sends.len(),
                "{variant}: predicted channel set differs from observed"
            );
            for ((src, dst, tag), (frames, words)) in &by_triple {
                let cost = pred
                    .sends
                    .get(&(*src as usize, *dst as usize, *tag as u32))
                    .unwrap_or_else(|| panic!("{variant}: unpredicted channel {src}->{dst}"));
                assert_eq!(cost.messages, *frames, "{variant}: {src}->{dst} frames");
                assert_eq!(cost.words, *words, "{variant}: {src}->{dst} words");
            }
        }

        let frames = thr.metrics.total(Ctr::FramesSent);
        let words = thr.metrics.total(Ctr::WordsSent);
        println!(
            "   {} channels, {} frames, {} words — metrics == scheduler{}\n",
            thr.pair_messages.len(),
            frames,
            words,
            if pred.exact { " == prediction" } else { "" }
        );
        rows.push(VariantRow {
            name: variant.to_string(),
            channels: thr.pair_messages.len(),
            frames,
            words,
            prediction_exact: pred.exact,
        });
    }

    // Steady-state overhead: full metrics vs the flight-recorder-only
    // default, threaded backend, compile-time variant.
    let compiled = compile_wavefront(Variant::CompileTime, n, NPROCS).expect("compiles");
    let off_ms = median_ms(|| {
        machine_for(&compiled.spmd, n, Backend::threaded())
            .run()
            .expect("runs");
    });
    let on_ms = median_ms(|| {
        machine_for(&compiled.spmd, n, Backend::threaded())
            .with_metrics()
            .run()
            .expect("runs");
    });
    let overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let validated = n >= 512 && cores >= 2;
    println!(
        "metrics off {off_ms:.2} ms, on {on_ms:.2} ms — overhead {overhead_pct:+.2}%{}",
        if validated { " (bound asserted)" } else { "" }
    );
    if validated {
        assert!(
            overhead_pct < 2.0,
            "full metrics cost {overhead_pct:.2}% (> 2% bound) at n={n}"
        );
    }

    let variants_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"variant\": \"{}\", \"channels\": {}, \"frames\": {}, \"words\": {}, \"prediction_exact\": {}}}",
                r.name, r.channels, r.frames, r.words, r.prediction_exact
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"metrics\",\n  \"n\": {n},\n  \"nprocs\": {NPROCS},\n  \"samples\": {SAMPLES},\n  \"host_parallelism\": {cores},\n  \"overhead_checked\": {validated},\n  \"metrics_off_ms\": {off_ms:.3},\n  \"metrics_on_ms\": {on_ms:.3},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"variants\": [\n{}\n  ]\n}}\n",
        variants_json.join(",\n")
    );
    std::fs::write("BENCH_metrics.json", &json).expect("write BENCH_metrics.json");
    println!(
        "\nEvery variant: metrics tables == scheduler ledger on both backends,\n\
         logical metrics identical across backends{}. Written to BENCH_metrics.json.",
        if rows.iter().any(|r| r.prediction_exact) {
            ", and == the exact static prediction"
        } else {
            ""
        }
    );
}
