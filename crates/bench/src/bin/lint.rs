//! Run the static communication-safety analyzer (`pdc-analyze`) over
//! every compiled variant of the paper's programs and prove them clean.
//!
//! For each (program, variant, size) the bin compiles, analyzes the
//! final SPMD code, and requires a *verified* result: the walk exact,
//! every `(src, dst, tag)` channel's sends equal to its receives, the
//! abstract replay deadlock-free, single assignment intact, and zero
//! lints. Any diagnostic is unexpected and fails the run.
//!
//! The sweep covers the five Figure 6/7 wavefront variants (run-time
//! resolution, compile-time resolution, Optimized I–III) at n=16/s=4 and
//! n=128/s=4, plus the Jacobi program at n=16/s=4 under both generators.
//! Results go to stdout and `BENCH_lint.json`; the bin re-parses its own
//! JSON with the std-only parser and exits non-zero on any malformed
//! document, unverified program, or unexpected diagnostic.
//!
//! Usage: `cargo run --release -p pdc-bench --bin lint`

use pdc_bench::{compile_wavefront, print_table, Variant};
use pdc_core::driver::{self, Compiled, Job, Strategy};
use pdc_core::programs;
use pdc_machine::trace_chrome::{parse_json, Json};
use pdc_opt::OptLevel;
use std::collections::HashMap;
use std::fmt::Write as _;

fn slug(v: Variant) -> &'static str {
    match v {
        Variant::RuntimeRes => "runtime_res",
        Variant::CompileTime => "compile_time",
        Variant::OptimizedI => "optimized_i",
        Variant::OptimizedII => "optimized_ii",
        Variant::OptimizedIII { .. } => "optimized_iii",
        Variant::Handwritten { .. } => "handwritten",
    }
}

struct Run {
    program: &'static str,
    variant: String,
    n: usize,
    s: usize,
    compiled: Compiled,
}

fn jacobi_compiled(strategy: Strategy, level: Option<OptLevel>, n: usize, s: usize) -> Compiled {
    let program = programs::jacobi();
    let mut job = Job::new(&program, "jacobi", programs::wavefront_decomposition(s))
        .with_const("n", n as i64);
    if let Some(level) = level {
        job = job.with_opt_level(level);
    }
    driver::compile(&job, strategy).expect("jacobi compiles")
}

fn main() {
    let wavefront_variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ];

    let mut runs: Vec<Run> = Vec::new();
    for (n, s) in [(16usize, 4usize), (128, 4)] {
        for v in wavefront_variants {
            runs.push(Run {
                program: "wavefront",
                variant: slug(v).into(),
                n,
                s,
                compiled: compile_wavefront(v, n, s).expect("compiler variant"),
            });
        }
    }
    for (variant, strategy, level) in [
        ("runtime_res", Strategy::Runtime, None),
        ("compile_time", Strategy::CompileTime, Some(OptLevel::O0)),
        ("optimized_ii", Strategy::CompileTime, Some(OptLevel::O2)),
    ] {
        runs.push(Run {
            program: "jacobi",
            variant: variant.into(),
            n: 16,
            s: 4,
            compiled: jacobi_compiled(strategy, level, 16, 4),
        });
    }

    let mut failures = 0usize;
    let mut rows = Vec::new();
    let mut doc = String::from("{\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let consts: HashMap<String, i64> = [("n".to_string(), run.n as i64)].into();
        let (env, arrays) = run.compiled.static_env(&consts);
        let report = pdc_analyze::analyze(&run.compiled.spmd, &env, &arrays);
        let name = format!("{} {} n={} s={}", run.program, run.variant, run.n, run.s);

        let messages: u64 = report.channels.values().map(|c| c.sent).sum();
        if !report.verified() {
            eprintln!("{name}: NOT VERIFIED (exact={})", report.exact);
            failures += 1;
        }
        for d in &report.diagnostics {
            let span = d
                .tag
                .and_then(|t| run.compiled.resolve_tag_span(t))
                .map(|s| format!(" at {s}"))
                .unwrap_or_default();
            eprintln!("{name}: unexpected diagnostic{span}: {}", d.message);
            failures += 1;
        }
        for note in &report.notes {
            eprintln!("{name}: note: {note}");
        }

        rows.push((
            name,
            vec![
                report.channels.len().to_string(),
                messages.to_string(),
                report.diagnostics.len().to_string(),
                if report.verified() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        ));
        if i > 0 {
            doc.push_str(",\n");
        }
        let _ = write!(
            doc,
            "    {{\"program\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"s\": {}, \
             \"exact\": {}, \"verified\": {}, \"channels\": {}, \"messages\": {messages}, \
             \"diagnostics\": {}}}",
            run.program,
            run.variant,
            run.n,
            run.s,
            report.exact,
            report.verified(),
            report.channels.len(),
            report.diagnostics.len(),
        );
    }
    doc.push_str("\n  ]\n}\n");

    // The document must survive the std-only parser and agree with the
    // sweep: every run present and verified with zero diagnostics.
    match parse_json(&doc) {
        Ok(parsed) => {
            let parsed_runs = parsed
                .get("runs")
                .and_then(|r| r.as_arr())
                .unwrap_or_default();
            if parsed_runs.len() != runs.len() {
                eprintln!("BENCH_lint.json: expected {} runs", runs.len());
                failures += 1;
            }
            for r in parsed_runs {
                let verified = r.get("verified") == Some(&Json::Bool(true));
                let diags = r
                    .get("diagnostics")
                    .and_then(|d| d.as_num())
                    .unwrap_or(f64::NAN);
                if !verified || diags != 0.0 {
                    let name = r.get("program").and_then(|x| x.as_str()).unwrap_or("?");
                    let variant = r.get("variant").and_then(|x| x.as_str()).unwrap_or("?");
                    eprintln!("BENCH_lint.json: {name}/{variant} not clean");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("BENCH_lint.json does not parse: {e}");
            failures += 1;
        }
    }
    std::fs::write("BENCH_lint.json", &doc).expect("write BENCH_lint.json");
    println!("wrote BENCH_lint.json");

    print_table(
        "static communication-safety sweep",
        &[
            "channels".into(),
            "messages".into(),
            "diags".into(),
            "verified".into(),
        ],
        &rows,
    );

    if failures > 0 {
        eprintln!("\n{failures} lint failure(s)");
        std::process::exit(1);
    }
    println!("\nall programs statically verified");
}
