//! Wall-clock race between the two execution backends.
//!
//! The deterministic simulator and the threaded backend compute the same
//! logical results (same outputs, same logical makespan, same message
//! counts); what differs is *host* time. This bench runs the wavefront
//! program on both backends over a processor sweep, prints median
//! wall-clock per run, and writes a self-validated
//! `BENCH_backend_race.json` with the speedup curve, so CI can gate on
//! the threaded backend actually winning at scale.
//!
//! Usage: `cargo run --release -p pdc-bench --bin backend_race [n]`
//!
//! At `n < 512` the problem is too small for threads to amortize their
//! startup, so the win-at-scale assertion is skipped (the run still
//! validates logical agreement); that keeps a tiny `n` usable as a CI
//! smoke test. The assertion is likewise skipped on hosts without at
//! least two hardware threads: on one core there is no parallelism for
//! the threaded backend to exploit, so "threads win" is not a testable
//! claim — the JSON records the host parallelism so a reader can tell
//! the two situations apart.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{Backend, CostModel};
use pdc_spmd::Scalar;
use std::time::Instant;

const WARMUP: usize = 1;
const SAMPLES: usize = 3;

/// Proc counts raced; the JSON speedup curve has one point per entry.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Median of `SAMPLES` timed runs, in milliseconds. Uses a total order
/// (NaN cannot poison the sort) and averages the two middle samples
/// when the count is even instead of biasing high.
fn median_ms(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

struct Row {
    procs: usize,
    sim_ms: f64,
    thr_ms: f64,
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    println!("Backend wall-clock race — {n}x{n} wavefront, median of {SAMPLES} runs\n");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "procs", "simulated (ms)", "threaded (ms)", "speedup"
    );

    let program = programs::gauss_seidel();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let mut rows = Vec::new();
    for s in SWEEP {
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");

        let mut makespans = Vec::new();
        let mut time_of = |backend: Backend| {
            median_ms(|| {
                let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), backend)
                    .expect("runs");
                makespans.push(exec.makespan());
            })
        };
        let sim_ms = time_of(Backend::Simulated);
        let thr_ms = time_of(Backend::threaded());
        assert!(
            makespans.windows(2).all(|w| w[0] == w[1]),
            "backends disagree on logical makespan at s={s}"
        );
        println!(
            "{s:>6} {sim_ms:>16.2} {thr_ms:>16.2} {:>8.2}",
            sim_ms / thr_ms
        );
        rows.push(Row {
            procs: s,
            sim_ms,
            thr_ms,
        });
    }

    // Self-validation: the ring interconnect must make real threads pay
    // off once the problem is big enough to amortize thread startup —
    // provided the host can actually run threads in parallel.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let validated = n >= 512 && cores >= 2;
    if validated {
        let last = rows.last().expect("sweep is non-empty");
        assert!(
            last.thr_ms < last.sim_ms,
            "threaded backend lost the race at n={n}, s={}: {:.2} ms vs {:.2} ms simulated",
            last.procs,
            last.thr_ms,
            last.sim_ms
        );
    }

    let curve: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"procs\": {}, \"simulated_ms\": {:.3}, \"threaded_ms\": {:.3}, \"speedup\": {:.3}}}",
                r.procs,
                r.sim_ms,
                r.thr_ms,
                r.sim_ms / r.thr_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"backend_race\",\n  \"n\": {n},\n  \"samples\": {SAMPLES},\n  \"host_parallelism\": {cores},\n  \"win_at_scale_checked\": {validated},\n  \"curve\": [\n{}\n  ]\n}}\n",
        curve.join(",\n")
    );
    std::fs::write("BENCH_backend_race.json", &json).expect("write BENCH_backend_race.json");

    println!(
        "\nSame logical makespan on every run; speedup is simulated/threaded\n\
         wall time. Curve written to BENCH_backend_race.json{}.",
        if validated {
            " (threaded win at max s asserted)"
        } else if cores < 2 {
            " (single-core host: no parallelism to assert a win on)"
        } else {
            " (n too small to assert a threaded win)"
        }
    );
}
