//! Wall-clock race between the two execution backends.
//!
//! The deterministic simulator and the threaded backend compute the same
//! logical results (same outputs, same logical makespan, same message
//! counts); what differs is *host* time. This bench runs the wavefront
//! program on both backends over a processor sweep and prints median
//! wall-clock per run, so the crossover point — where real threads start
//! paying off against the single-threaded event loop — is visible.
//!
//! Usage: `cargo run --release -p pdc-bench --bin backend_race [n]`

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{Backend, CostModel};
use pdc_spmd::Scalar;
use std::time::Instant;

const WARMUP: usize = 1;
const SAMPLES: usize = 5;

fn median_ms(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    println!("Backend wall-clock race — {n}x{n} wavefront, median of {SAMPLES} runs\n");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "procs", "simulated (ms)", "threaded (ms)", "ratio"
    );

    let program = programs::gauss_seidel();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    for s in [1usize, 2, 4, 8] {
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");

        let mut makespans = Vec::new();
        let mut time_of = |backend: Backend| {
            median_ms(|| {
                let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), backend)
                    .expect("runs");
                makespans.push(exec.makespan());
            })
        };
        let sim_ms = time_of(Backend::Simulated);
        let thr_ms = time_of(Backend::threaded());
        assert!(
            makespans.windows(2).all(|w| w[0] == w[1]),
            "backends disagree on logical makespan"
        );
        println!(
            "{s:>6} {sim_ms:>16.2} {thr_ms:>16.2} {:>8.2}",
            thr_ms / sim_ms
        );
    }
    println!(
        "\nSame logical makespan on every run; the ratio column is pure\n\
         host-side overhead (thread spawn, channel hops, stash lookups)."
    );
}
