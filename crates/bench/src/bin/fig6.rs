//! Figure 6: effect of compile-time and run-time resolution.
//!
//! Prints simulated execution time (cycles) against the number of
//! processors for the run-time resolution, compile-time resolution,
//! Optimized I, and handwritten versions of the 128×128 wavefront
//! program — the four curves of the paper's Figure 6.
//!
//! Usage: `cargo run --release -p pdc-bench --bin fig6 [n]`

use pdc_bench::{print_table, processor_sweep, run_wavefront, speedups, Variant};
use pdc_machine::CostModel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let cost = CostModel::ipsc2();
    let sweep = processor_sweep(n);
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::Handwritten { blksize: 8 },
    ];
    let col_names: Vec<String> = sweep.iter().map(|s| format!("S={s}")).collect();
    let mut rows = Vec::new();
    let mut base = None;
    for v in variants {
        let times: Vec<u64> = sweep
            .iter()
            .map(|&s| run_wavefront(v, n, s, cost, false).makespan)
            .collect();
        if v == Variant::CompileTime {
            base = Some(times[0]);
        }
        rows.push((
            format!("{v} (cycles)"),
            times.iter().map(|t| t.to_string()).collect(),
        ));
        rows.push((format!("{v} (rel S=1)"), {
            let t0 = times[0];
            times
                .iter()
                .map(|t| format!("{:.2}", *t as f64 / t0 as f64))
                .collect()
        }));
    }
    if let Some(base) = base {
        rows.push(("speedup of handwritten vs 1-proc compile-time".into(), {
            let times: Vec<u64> = sweep
                .iter()
                .map(|&s| {
                    run_wavefront(Variant::Handwritten { blksize: 8 }, n, s, cost, false).makespan
                })
                .collect();
            speedups(base, &times)
        }));
    }
    print_table(
        &format!("Figure 6 — {n}x{n} integer grid, iPSC/2 cost model"),
        &col_names,
        &rows,
    );
    println!(
        "\nPaper shape check: run-time and compile-time curves are flat (no\n\
         parallelism); Optimized I improves but stays flat; the handwritten\n\
         program scales with S."
    );
}
