//! Explain the compilation of the paper's five program versions: print
//! each variant's remark stream (what every phase did and what it
//! declined to do, with source spans), then verify the static
//! message-cost prediction against a traced, fault-free simulator run.
//!
//! Output goes to stdout plus `BENCH_remarks.json`, which bundles the
//! remark streams with the predicted-vs-observed accounting. The bin
//! re-parses its own JSON with the std-only parser and exits non-zero if
//! the document is malformed or any prediction misses — CI runs this at
//! n=16, s=4.
//!
//! Usage: `cargo run --release -p pdc-bench --bin explain [n] [s] [--metrics]`
//! (defaults: n=16, s=4). With `--metrics` each run also records the
//! runtime metrics registry and the table gains live metric columns —
//! frames and words as the registry counted them, plus the scratch-arena
//! reuse/grow split — cross-checked against the observed message counts.

use pdc_bench::{compile_wavefront, print_table, Variant};
use pdc_core::driver::{self, Inputs};
use pdc_machine::trace_chrome::parse_json;
use pdc_machine::CostModel;
use pdc_spmd::Scalar;
use std::fmt::Write as _;

fn slug(v: Variant) -> &'static str {
    match v {
        Variant::RuntimeRes => "runtime_res",
        Variant::CompileTime => "compile_time",
        Variant::OptimizedI => "optimized_i",
        Variant::OptimizedII => "optimized_ii",
        Variant::OptimizedIII { .. } => "optimized_iii",
        Variant::Handwritten { .. } => "handwritten",
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let metrics = argv.iter().any(|a| a == "--metrics");
    let mut pos = argv.iter().filter(|a| !a.starts_with("--"));
    let n: usize = pos.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let s: usize = pos.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ];

    let mut failures = 0usize;
    let mut rows = Vec::new();
    let mut doc = format!("{{\n  \"n\": {n},\n  \"s\": {s},\n  \"runs\": [\n");
    for (i, v) in variants.into_iter().enumerate() {
        let mut compiled = compile_wavefront(v, n, s).expect("compiler variant");
        compiled.trace_cap = Some(1 << 20);
        compiled.metrics = metrics;

        println!("==== {v} ====");
        println!("{}", compiled.remarks_text());

        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2())
            .unwrap_or_else(|e| panic!("{v}: {e}"));
        let report = exec.verify_predictions();
        let predicted_msgs = compiled.prediction.total_messages();
        let predicted_words = compiled.prediction.total_words();
        let observed_msgs = exec.messages();
        let observed_words = exec.outcome.report.stats.network.words;
        for m in &report.mismatches {
            eprintln!("{v}: PREDICTION MISS: {m}");
        }
        if !report.ok() || !report.statically_exact || !report.trace_checked {
            failures += 1;
        }
        let mut cells = vec![
            predicted_msgs.to_string(),
            observed_msgs.to_string(),
            predicted_words.to_string(),
            observed_words.to_string(),
            report.checked_channels.to_string(),
            if report.ok() {
                "yes".into()
            } else {
                "NO".into()
            },
        ];
        if metrics {
            // Live metric columns, cross-checked: the registry must have
            // counted exactly the frames and words the network reported.
            use pdc_machine::Ctr;
            let snap = exec.metrics();
            let m_frames = snap.total(Ctr::FramesSent);
            let m_words = snap.total(Ctr::WordsSent);
            if m_frames != observed_msgs || m_words != observed_words {
                eprintln!(
                    "{v}: METRICS MISS: registry saw {m_frames} frames / {m_words} words, \
                     network reported {observed_msgs} / {observed_words}"
                );
                failures += 1;
            }
            cells.push(m_frames.to_string());
            cells.push(m_words.to_string());
            cells.push(format!(
                "{}/{}",
                snap.total(Ctr::ScratchReuse),
                snap.total(Ctr::ScratchGrow)
            ));
        }
        rows.push((v.to_string(), cells));

        if i > 0 {
            doc.push_str(",\n");
        }
        let _ = write!(
            doc,
            "    {{\"variant\": \"{}\", \"predicted_messages\": {predicted_msgs}, \
             \"observed_messages\": {observed_msgs}, \"predicted_words\": {predicted_words}, \
             \"observed_words\": {observed_words}, \"channels\": {}, \"exact\": {}, \
             \"verified\": {}, \"vectorized\": {}, \"jammed\": {}, \"stripped\": {}, \
             \"remarks\": {}}}",
            slug(v),
            report.checked_channels,
            report.statically_exact,
            report.ok(),
            compiled.opt_report.vectorized,
            compiled.opt_report.jammed,
            compiled.opt_report.stripped,
            compiled.remarks_json(),
        );
    }
    doc.push_str("\n  ]\n}\n");

    // The document must survive the same std-only parser CI uses on the
    // Chrome traces, and every run must have verified.
    match parse_json(&doc) {
        Ok(parsed) => {
            let runs = parsed
                .get("runs")
                .and_then(|r| r.as_arr())
                .unwrap_or_default();
            if runs.len() != variants.len() {
                eprintln!("BENCH_remarks.json: expected {} runs", variants.len());
                failures += 1;
            }
            for run in runs {
                let name = run
                    .get("variant")
                    .and_then(|x| x.as_str())
                    .unwrap_or("?")
                    .to_owned();
                let remark_count = run
                    .get("remarks")
                    .and_then(|r| r.get("remarks"))
                    .and_then(|r| r.as_arr())
                    .map_or(0, <[_]>::len);
                if remark_count == 0 {
                    eprintln!("{name}: no remarks in BENCH_remarks.json");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("BENCH_remarks.json does not parse: {e}");
            failures += 1;
        }
    }
    std::fs::write("BENCH_remarks.json", &doc).expect("write BENCH_remarks.json");
    println!("wrote BENCH_remarks.json");

    let mut headers: Vec<String> = vec![
        "pred msgs".into(),
        "obs msgs".into(),
        "pred words".into(),
        "obs words".into(),
        "channels".into(),
        "match".into(),
    ];
    if metrics {
        headers.push("m frames".into());
        headers.push("m words".into());
        headers.push("reuse/grow".into());
    }
    print_table(
        &format!("predicted vs observed messages, {n}x{n} wavefront on {s} processors"),
        &headers,
        &rows,
    );

    if failures > 0 {
        eprintln!("\n{failures} verification failure(s)");
        std::process::exit(1);
    }
}
