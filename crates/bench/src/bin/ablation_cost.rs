//! Ablation: do the §4 optimizations still matter when messages are
//! cheap?
//!
//! §1 argues that spatial locality matters even on shared-memory machines
//! where a remote access costs "tens of cycles" rather than thousands.
//! This ablation reruns the wavefront variants under
//! [`CostModel::shared_memory`] and compares the improvement factors.
//!
//! Usage: `cargo run --release -p pdc-bench --bin ablation_cost [n] [s]`

use pdc_bench::{print_table, run_wavefront, Variant};
use pdc_machine::CostModel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 8 },
        Variant::Handwritten { blksize: 8 },
    ];
    let col_names = vec![
        "iPSC/2 (cycles)".to_string(),
        "shared-mem (cycles)".to_string(),
    ];
    let mut rows = Vec::new();
    for v in variants {
        let mp = run_wavefront(v, n, s, CostModel::ipsc2(), false).makespan;
        let sm = run_wavefront(v, n, s, CostModel::shared_memory(), false).makespan;
        rows.push((v.to_string(), vec![mp.to_string(), sm.to_string()]));
    }
    print_table(
        &format!("Cost-model ablation — {n}x{n} grid on {s} processors"),
        &col_names,
        &rows,
    );
    println!(
        "\nShape check: the gap between unoptimized and optimized versions\n\
         narrows when messages cost tens of cycles, but locality still\n\
         wins — matching the paper's argument that decomposition matters\n\
         on shared-memory machines too."
    );
}
