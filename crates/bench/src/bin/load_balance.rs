//! §5.4 load balancing: *"Processes may be shuffled from overloaded to
//! underloaded nodes without slowing their execution if the data
//! associated with a process is moved along with the code."*
//!
//! We simulate the situation that motivates the section — an imbalanced
//! machine — by making one processor several times slower than the rest,
//! and implement the remedy the paper proposes: move work *and its data*
//! by re-assigning columns with a weighted table
//! ([`Dist::column_weighted`]). The table mapping is opaque to the
//! mapping-equation solver, so this experiment also exercises the
//! compiler's *inconclusive* path end to end: all ownership tests appear
//! as run-time guards.
//!
//! Usage: `cargo run --release -p pdc-bench --bin load_balance [n]`

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{CostModel, Machine};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn run(label: &str, dist: Dist, slowdowns: Vec<u64>, n: usize) {
    let s = slowdowns.len();
    let program = programs::jacobi();
    let decomp = Decomposition::new(s)
        .array("New", dist.clone())
        .array("Old", dist.clone());
    let mut job = Job::new(&program, "jacobi", decomp).with_const("n", n as i64);
    job.extent_overrides.insert("Old".into(), (n, n));
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let machine = Machine::new(s, CostModel::ipsc2()).with_slowdowns(slowdowns);
    let mut m = SpmdMachine::with_machine(&compiled.spmd, machine).expect("lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array("Old", dist, &driver::standard_input(n, n));
    let out = m.run().expect("runs");
    let gathered = m.gather("New").expect("gathers");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");
    let verified = driver::first_mismatch(&gathered, &seq).is_none();
    println!(
        "{label:<34} {:>12} cycles   imbalance {:>5.2}   verified: {verified}",
        out.report.stats.makespan().0,
        out.report.stats.imbalance(),
    );
    assert!(verified, "{label} computed a wrong answer");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    // P0 is 4x slower than its three peers.
    let slowdowns = vec![4u64, 1, 1, 1];
    println!(
        "Load balancing (§5.4) — Jacobi on a {n}x{n} grid, 4 processors,\n\
         P0 running 4x slower than the others\n"
    );
    run(
        "equal columns (column-cyclic)",
        Dist::ColumnCyclic,
        slowdowns.clone(),
        n,
    );
    run(
        "weighted columns (1:4:4:4)",
        Dist::column_weighted(&[1, 4, 4, 4]),
        slowdowns.clone(),
        n,
    );
    run(
        "balanced machine, equal columns",
        Dist::ColumnCyclic,
        vec![1, 1, 1, 1],
        n,
    );
    println!(
        "\nShape check: on the imbalanced machine the slow processor gates\n\
         the equal decomposition; re-assigning columns in proportion to\n\
         speed (data moving with its work) recovers most of the loss."
    );
}
