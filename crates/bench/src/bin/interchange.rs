//! §4's closing remark: a source program whose loops run against the
//! distribution ("if the sequential version … had had the i and j-loops
//! reversed") shows no wavefront parallelism; loop interchange restores
//! it.
//!
//! Usage: `cargo run --release -p pdc-bench --bin interchange [n] [s]`

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_opt::{interchange, optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn run(program: &pdc_lang::Program, n: usize, s: usize) -> (u64, u64, bool) {
    let job = Job::new(
        program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let (opt, _) = optimize(&compiled.spmd, OptLevel::O2);
    let mut m = SpmdMachine::new(&opt, CostModel::ipsc2()).expect("lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m.run().expect("runs");
    let gathered = m.gather("New").expect("New exists");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
        .expect("sequential");
    (
        out.report.stats.makespan().0,
        out.report.stats.network.messages,
        driver::first_mismatch(&gathered, &seq).is_none(),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let reversed = programs::gauss_seidel_interchanged();
    let (fixed, swapped) = interchange(&reversed);
    let normal = programs::gauss_seidel();

    let (t_rev, m_rev, ok_rev) = run(&reversed, n, s);
    let (t_fix, m_fix, ok_fix) = run(&fixed, n, s);
    let (t_norm, m_norm, ok_norm) = run(&normal, n, s);

    println!("Loop interchange — {n}x{n} grid on {s} processors (Optimized II)");
    println!("----------------------------------------------------------------");
    println!("reversed loops        : {t_rev:>12} cycles  {m_rev:>8} msgs  verified={ok_rev}");
    println!(
        "after interchange ({swapped} swap): {t_fix:>6} cycles  {m_fix:>8} msgs  verified={ok_fix}"
    );
    println!("normal order          : {t_norm:>12} cycles  {m_norm:>8} msgs  verified={ok_norm}");
    println!(
        "\nPaper shape check: the reversed program runs far slower at the\n\
         same message count; interchange recovers the normal-order time."
    );
}
