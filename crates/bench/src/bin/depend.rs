//! Run the exact loop-dependence framework (`pdc-depend`) over every
//! compiler variant of the paper's wavefront, plus Jacobi and a
//! deliberately non-affine scatter kernel, and pin what it proves.
//!
//! For each of the five Figure 6/7 wavefront variants the bin compiles
//! at n=16/s=4 and collects the driver's `Phase::Depend` remarks: all
//! three inlined nests must analyze *exactly*, the interior nest must
//! carry the two paper flow dependences with their witnessing
//! direction/distance vectors — `(<,=)` at distance `(1,0)` on the
//! column loop and `(=,<)` at distance `(0,1)` on the row loop — and
//! the column-cyclic distribution must draw exactly one cross-processor
//! hotspot lint. Jacobi must carry nothing and lint nothing. The
//! scatter kernel's indirect subscript must degrade to `exact = false`
//! with a stated reason, never to a silent claim of independence.
//!
//! Results go to stdout and `BENCH_depend.json`; the bin re-parses its
//! own JSON with the std-only parser and exits non-zero on any
//! malformed document or violated expectation.
//!
//! Usage: `cargo run --release -p pdc-bench --bin depend`

use pdc_bench::{compile_wavefront, print_table, Variant};
use pdc_core::programs;
use pdc_depend::ast::{analyze_for_env, nests};
use pdc_machine::trace_chrome::{parse_json, Json};
use pdc_report::{Phase, Remark, RemarkKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const N: usize = 16;
const S: usize = 4;

/// The non-affine control: an indirect scatter whose write subscript
/// the framework must refuse to reason about.
const SCATTER: &str = r#"
procedure scatter(Idx, n) {
    let A = matrix(n, n);
    for i = 1 to n do {
        for j = 1 to n do {
            A[Idx[i, 1], j] = i + j;
        }
    }
    return A;
}
"#;

fn slug(v: Variant) -> &'static str {
    match v {
        Variant::RuntimeRes => "runtime_res",
        Variant::CompileTime => "compile_time",
        Variant::OptimizedI => "optimized_i",
        Variant::OptimizedII => "optimized_ii",
        Variant::OptimizedIII { .. } => "optimized_iii",
        Variant::Handwritten { .. } => "handwritten",
    }
}

/// What one analyzed program contributes to the table and the JSON.
struct Row {
    program: &'static str,
    variant: String,
    nests: usize,
    exact_nests: usize,
    carried: usize,
    hotspots: usize,
    exact: bool,
    /// Witnessing `describe()` strings of the carried dependences.
    witnesses: Vec<String>,
    /// First inexactness reason, if any.
    reason: Option<String>,
}

/// Summarize a compiled program's `Phase::Depend` remark stream.
fn summarize(program: &'static str, variant: String, remarks: &[Remark]) -> Row {
    let mut row = Row {
        program,
        variant,
        nests: 0,
        exact_nests: 0,
        carried: 0,
        hotspots: 0,
        exact: true,
        witnesses: Vec::new(),
        reason: None,
    };
    for r in remarks.iter().filter(|r| r.phase == Phase::Depend) {
        match r.kind {
            RemarkKind::Applied => {
                row.nests += 1;
                let exact = r.details.iter().any(|(k, v)| k == "exact" && v == "true");
                if exact {
                    row.exact_nests += 1;
                } else {
                    row.exact = false;
                }
                if let Some((_, c)) = r.details.iter().find(|(k, _)| k == "carried") {
                    row.carried += c.parse::<usize>().unwrap_or(0);
                }
                for (k, v) in &r.details {
                    if k.starts_with("dep") && v.contains("carried") {
                        row.witnesses.push(v.clone());
                    }
                }
            }
            RemarkKind::Missed => {
                if r.message.contains("inexact") {
                    if let Some((_, why)) = r.details.iter().find(|(k, _)| k == "reason") {
                        row.reason.get_or_insert_with(|| why.clone());
                    }
                } else {
                    row.hotspots += 1;
                }
            }
        }
    }
    row.witnesses.sort();
    row
}

fn json_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // The five wavefront variants: same source, every strategy/level.
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ];
    for v in variants {
        let compiled = compile_wavefront(v, N, S).expect("compiler variant");
        rows.push(summarize("wavefront", slug(v).into(), &compiled.remarks));
    }

    // Jacobi: nothing carried, nothing linted.
    {
        use pdc_core::driver::{self, Job, Strategy};
        let program = programs::jacobi();
        let job = Job::new(&program, "jacobi", programs::wavefront_decomposition(S))
            .with_const("n", N as i64);
        let compiled = driver::compile(&job, Strategy::CompileTime).expect("jacobi compiles");
        rows.push(summarize(
            "jacobi",
            "compile_time".into(),
            &compiled.remarks,
        ));
    }

    // The non-affine control, analyzed at the source level.
    {
        let prog = pdc_lang::parse(SCATTER).expect("scatter parses");
        let env: BTreeMap<String, i64> = [("n".to_string(), N as i64)].into();
        let mut row = Row {
            program: "scatter",
            variant: "source".into(),
            nests: 0,
            exact_nests: 0,
            carried: 0,
            hotspots: 0,
            exact: true,
            witnesses: Vec::new(),
            reason: None,
        };
        for (_, nest) in nests(&prog) {
            let info = analyze_for_env(nest, &env);
            row.nests += 1;
            if info.exact {
                row.exact_nests += 1;
            } else {
                row.exact = false;
                if let Some(note) = info.notes.first() {
                    row.reason.get_or_insert_with(|| note.clone());
                }
            }
            row.carried += info.loop_carried().count();
        }
        rows.push(row);
    }

    // Render the JSON document.
    let mut doc = String::from("{\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        let witnesses = r
            .witnesses
            .iter()
            .map(|w| format!("\"{}\"", json_str(w)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            doc,
            "    {{\"program\": \"{}\", \"variant\": \"{}\", \"n\": {N}, \"s\": {S}, \
             \"nests\": {}, \"exact_nests\": {}, \"exact\": {}, \"carried\": {}, \
             \"hotspots\": {}, \"witnesses\": [{witnesses}], \"reason\": {}}}",
            r.program,
            r.variant,
            r.nests,
            r.exact_nests,
            r.exact,
            r.carried,
            r.hotspots,
            match &r.reason {
                Some(why) => format!("\"{}\"", json_str(why)),
                None => "null".into(),
            },
        );
    }
    doc.push_str("\n  ]\n}\n");

    // Self-validation: the document must parse and prove the paper's
    // dependence structure.
    let mut failures = 0usize;
    match parse_json(&doc) {
        Ok(parsed) => {
            let runs = parsed
                .get("runs")
                .and_then(|r| r.as_arr())
                .unwrap_or_default();
            if runs.len() != rows.len() {
                eprintln!("BENCH_depend.json: expected {} runs", rows.len());
                failures += 1;
            }
            for r in runs {
                let program = r.get("program").and_then(|x| x.as_str()).unwrap_or("?");
                let variant = r.get("variant").and_then(|x| x.as_str()).unwrap_or("?");
                let name = format!("{program}/{variant}");
                let exact = r.get("exact") == Some(&Json::Bool(true));
                let carried = r.get("carried").and_then(|x| x.as_num()).unwrap_or(-1.0);
                let hotspots = r.get("hotspots").and_then(|x| x.as_num()).unwrap_or(-1.0);
                let witnesses: Vec<&str> = r
                    .get("witnesses")
                    .and_then(|w| w.as_arr())
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|w| w.as_str())
                    .collect();
                match program {
                    "wavefront" => {
                        if !exact || carried != 2.0 || hotspots != 1.0 {
                            eprintln!(
                                "{name}: expected exact wavefront with 2 carried deps \
                                 and 1 hotspot, got exact={exact} carried={carried} \
                                 hotspots={hotspots}"
                            );
                            failures += 1;
                        }
                        let has = |dir: &str, dist: &str| {
                            witnesses
                                .iter()
                                .any(|w| w.contains(dir) && w.contains(dist))
                        };
                        if !has("(<,=)", "(1,0)") || !has("(=,<)", "(0,1)") {
                            eprintln!("{name}: witnessing vectors missing: {witnesses:?}");
                            failures += 1;
                        }
                    }
                    "jacobi" => {
                        if !exact || carried != 0.0 || hotspots != 0.0 {
                            eprintln!("{name}: Jacobi must carry and lint nothing");
                            failures += 1;
                        }
                    }
                    "scatter" => {
                        if exact {
                            eprintln!("{name}: non-affine program claimed exact analysis");
                            failures += 1;
                        }
                        let has_reason = r
                            .get("reason")
                            .and_then(|x| x.as_str())
                            .is_some_and(|s| !s.is_empty());
                        if !has_reason {
                            eprintln!("{name}: inexactness must state its reason");
                            failures += 1;
                        }
                    }
                    _ => {
                        eprintln!("{name}: unexpected program");
                        failures += 1;
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("BENCH_depend.json does not parse: {e}");
            failures += 1;
        }
    }
    std::fs::write("BENCH_depend.json", &doc).expect("write BENCH_depend.json");
    println!("wrote BENCH_depend.json");

    print_table(
        "exact loop-dependence analysis",
        &[
            "nests".into(),
            "exact".into(),
            "carried".into(),
            "hotspots".into(),
            "reason".into(),
        ],
        &rows
            .iter()
            .map(|r| {
                (
                    format!("{} {}", r.program, r.variant),
                    vec![
                        format!("{}/{}", r.exact_nests, r.nests),
                        r.exact.to_string(),
                        r.carried.to_string(),
                        r.hotspots.to_string(),
                        r.reason.clone().unwrap_or_else(|| "—".into()),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );

    if failures > 0 {
        eprintln!("\n{failures} dependence expectation(s) violated");
        std::process::exit(1);
    }
    println!("\nevery paper variant analyzed exactly; non-affine control degraded honestly");
}
