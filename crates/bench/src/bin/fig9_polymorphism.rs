//! §5.1, Figures 8 and 9: mapping polymorphism.
//!
//! The identity function `f = λa:P1. a` is applied to `b:P2` and `k:P3`.
//! With a *monomorphic* parameter mapping every call drags its argument
//! to P1 and back (four messages, serialized on P1); with *polymorphic*
//! mappings each call runs where its data lives and the messages vanish.
//!
//! Usage: `cargo run --release -p pdc-bench --bin fig9_polymorphism`

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::inline::{ParamMapMode, ParamMaps};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, ScalarMap};

fn run(mode: ParamMapMode) -> (u64, u64) {
    let program = programs::identity_calls();
    let decomp = Decomposition::new(4)
        .scalar("b", ScalarMap::On(2))
        .scalar("k", ScalarMap::On(3))
        .scalar("u", ScalarMap::On(2))
        .scalar("v", ScalarMap::On(3));
    let mut param_maps = ParamMaps::new();
    param_maps.insert(("f".into(), "a".into()), ScalarMap::On(1));
    let mut job = Job::new(&program, "main", decomp);
    job.param_maps = param_maps;
    job.mode = mode;
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let inputs = Inputs::new()
        .scalar("b", pdc_spmd::Scalar::Int(5))
        .scalar("k", pdc_spmd::Scalar::Int(7));
    let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2()).expect("runs");
    (exec.messages(), exec.makespan())
}

fn main() {
    let (mono_msgs, mono_time) = run(ParamMapMode::Monomorphic);
    let (poly_msgs, poly_time) = run(ParamMapMode::Polymorphic);
    println!("Mapping polymorphism (Figures 8 and 9)");
    println!("--------------------------------------");
    println!("monomorphic (Fig. 8): {mono_msgs} messages, {mono_time} cycles");
    println!("polymorphic (Fig. 9): {poly_msgs} messages, {poly_time} cycles");
    println!(
        "\nPaper shape check: polymorphism eliminates the four coercion\n\
         messages of the two identity calls and removes the serialization\n\
         through the function's home processor."
    );
    assert!(
        mono_msgs >= poly_msgs + 4,
        "expected at least 4 messages saved"
    );
}
