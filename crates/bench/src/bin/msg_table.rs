//! Footnote 3: message counts of the run-time resolution and handwritten
//! programs — "31,752 messages for the run-time resolution code versus
//! 2142 messages for the handwritten code".
//!
//! Usage: `cargo run --release -p pdc-bench --bin msg_table [n] [s]`

use pdc_bench::{print_table, run_wavefront, Variant};
use pdc_machine::CostModel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let cost = CostModel::zero(); // counts only
    let variants = [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 8 },
        Variant::Handwritten { blksize: 8 },
    ];
    let col_names = vec!["messages".to_string(), "words".to_string()];
    let mut rows = Vec::new();
    for v in variants {
        let m = run_wavefront(v, n, s, cost, false);
        rows.push((
            v.to_string(),
            vec![m.messages.to_string(), m.words.to_string()],
        ));
    }
    print_table(
        &format!("Message counts — {n}x{n} grid on {s} processors"),
        &col_names,
        &rows,
    );
    println!(
        "\nPaper anchors (footnote 3, n=128): run-time resolution 31,752\n\
         (= 2 remote operands x 126^2 interior points); handwritten 2,142."
    );
}
