//! Figure 7: effect of the message-passing optimizations.
//!
//! Prints simulated execution time against the number of processors for
//! Optimized I (message combining), Optimized II (pipelining), Optimized
//! III (blocking), and the handwritten program.
//!
//! Usage: `cargo run --release -p pdc-bench --bin fig7 [n]`

use pdc_bench::{print_table, processor_sweep, run_wavefront, Variant};
use pdc_machine::CostModel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let cost = CostModel::ipsc2();
    let sweep = processor_sweep(n);
    let variants = [
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 8 },
        Variant::Handwritten { blksize: 8 },
    ];
    let col_names: Vec<String> = sweep.iter().map(|s| format!("S={s}")).collect();
    let mut rows = Vec::new();
    for v in variants {
        let ms: Vec<_> = sweep
            .iter()
            .map(|&s| run_wavefront(v, n, s, cost, false))
            .collect();
        rows.push((
            format!("{v} (cycles)"),
            ms.iter().map(|m| m.makespan.to_string()).collect(),
        ));
        rows.push((
            format!("{v} (messages)"),
            ms.iter().map(|m| m.messages.to_string()).collect(),
        ));
    }
    print_table(
        &format!("Figure 7 — {n}x{n} integer grid, iPSC/2 cost model"),
        &col_names,
        &rows,
    );
    println!(
        "\nPaper shape check: pipelining (II) buys parallelism over pure\n\
         combining (I); blocking (III) keeps the parallelism while cutting\n\
         messages and is the best compiled version, close to handwritten."
    );
}
