//! The benchmark harness: one function per program variant the paper
//! measures, plus the sweeps that regenerate each figure and table.
//!
//! Binaries (run with `--release`; the simulations execute tens of
//! millions of instructions):
//!
//! * `fig6` — Figure 6: run-time resolution, compile-time resolution,
//!   Optimized I, and the handwritten program vs number of processors;
//! * `fig7` — Figure 7: Optimized II and Optimized III vs the handwritten
//!   program;
//! * `msg_table` — footnote 3: total message counts (31,752 vs 2,142 in
//!   the paper);
//! * `blocksize_sweep` — §4's open question: execution time vs `blksize`;
//! * `fig9_polymorphism` — §5.1: monomorphic vs polymorphic parameter
//!   mappings (Figures 8 and 9);
//! * `interchange` — §4's closing remark: the reversed-loop program
//!   before and after loop interchange;
//! * `ablation_cost` — the same programs under a shared-memory-like cost
//!   model (is message combining still worth it when messages are cheap?).

use pdc_core::driver::{self, Compiled, Inputs, Job, Strategy};
use pdc_core::handwritten;
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_opt::OptLevel;
use pdc_spmd::ir::SpmdProgram;
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

/// A program variant of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// §3.1 run-time resolution.
    RuntimeRes,
    /// §3.2 compile-time resolution.
    CompileTime,
    /// Appendix A.2 (vectorized old columns).
    OptimizedI,
    /// Appendix A.3 (pipelined new values).
    OptimizedII,
    /// Appendix A.4 (blocked new values).
    OptimizedIII {
        /// Rows per block.
        blksize: usize,
    },
    /// Figure 3.
    Handwritten {
        /// Rows per block.
        blksize: usize,
    },
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::RuntimeRes => write!(f, "run-time resolution"),
            Variant::CompileTime => write!(f, "compile-time resolution"),
            Variant::OptimizedI => write!(f, "optimized I (vectorized)"),
            Variant::OptimizedII => write!(f, "optimized II (pipelined)"),
            Variant::OptimizedIII { blksize } => write!(f, "optimized III (b={blksize})"),
            Variant::Handwritten { blksize } => write!(f, "handwritten (b={blksize})"),
        }
    }
}

/// One simulated execution's results.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Total messages (the footnote-3 metric).
    pub messages: u64,
    /// Total payload words.
    pub words: u64,
    /// Simulated execution time in cycles (the figures' y-axis).
    pub makespan: u64,
    /// Instructions executed across all processors.
    pub steps: u64,
    /// Did the gathered result match the sequential interpreter?
    pub verified: bool,
}

/// Drive the compiler for a wavefront variant, keeping the full
/// [`Compiled`] bundle — remark stream, optimization report, and static
/// cost prediction included. `None` for the handwritten program, which
/// never goes through the compiler.
///
/// # Panics
///
/// Panics on compilation failure (the canonical program always compiles).
pub fn compile_wavefront(variant: Variant, n: usize, nprocs: usize) -> Option<Compiled> {
    let (strategy, level) = match variant {
        Variant::Handwritten { .. } => return None,
        Variant::RuntimeRes => (Strategy::Runtime, None),
        Variant::CompileTime => (Strategy::CompileTime, Some(OptLevel::O0)),
        Variant::OptimizedI => (Strategy::CompileTime, Some(OptLevel::O1)),
        Variant::OptimizedII => (Strategy::CompileTime, Some(OptLevel::O2)),
        Variant::OptimizedIII { blksize } => {
            (Strategy::CompileTime, Some(OptLevel::O3 { blksize }))
        }
    };
    let program = programs::gauss_seidel();
    let mut job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(nprocs),
    )
    .with_const("n", n as i64);
    if let Some(level) = level {
        job = job.with_opt_level(level);
    }
    Some(driver::compile(&job, strategy).expect("wavefront compiles"))
}

/// Build the SPMD program for a variant of the wavefront benchmark.
///
/// # Panics
///
/// Panics on compilation failure (the canonical program always compiles).
pub fn build_wavefront(variant: Variant, n: usize, nprocs: usize) -> SpmdProgram {
    match variant {
        Variant::Handwritten { blksize } => handwritten::gauss_seidel(nprocs, blksize),
        _ => {
            compile_wavefront(variant, n, nprocs)
                .expect("compiler variant")
                .spmd
        }
    }
}

/// Simulate one wavefront variant on an `n × n` grid over `nprocs`
/// processors under `cost`, verifying the gathered result when `verify`.
///
/// # Panics
///
/// Panics on simulation errors (deadlock, fault) — the harness treats
/// those as bugs, not data points.
pub fn run_wavefront(
    variant: Variant,
    n: usize,
    nprocs: usize,
    cost: CostModel,
    verify: bool,
) -> Measurement {
    let prog = build_wavefront(variant, n, nprocs);
    let mut m = SpmdMachine::new(&prog, cost).expect("program lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m
        .run()
        .unwrap_or_else(|e| panic!("{variant} (n={n}, s={nprocs}): {e}"));
    assert_eq!(
        out.report.undelivered, 0,
        "{variant}: orphaned messages in the network"
    );
    let verified = if verify {
        let gathered = m.gather("New").expect("New exists");
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
            .expect("sequential run");
        driver::first_mismatch(&gathered, &seq).is_none()
    } else {
        true
    };
    Measurement {
        messages: out.report.stats.network.messages,
        words: out.report.stats.network.words,
        makespan: out.report.stats.makespan().0,
        steps: out.report.steps,
        verified,
    }
}

/// Like [`run_wavefront`] but with tracing enabled on an explicit
/// backend, returning the full [`RunReport`](pdc_machine::RunReport)
/// (whose `trace` feeds the Chrome exporter and critical-path analyzer).
///
/// # Panics
///
/// Panics on simulation errors — the harness treats those as bugs.
pub fn run_wavefront_traced(
    variant: Variant,
    n: usize,
    nprocs: usize,
    cost: CostModel,
    backend: pdc_machine::Backend,
    trace_cap: usize,
) -> pdc_machine::RunReport {
    let prog = build_wavefront(variant, n, nprocs);
    let mut m = SpmdMachine::new(&prog, cost)
        .expect("program lowers")
        .with_backend(backend)
        .with_trace(trace_cap);
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m
        .run()
        .unwrap_or_else(|e| panic!("{variant} (n={n}, s={nprocs}, {backend:?}): {e}"));
    out.report
}

/// Default processor counts swept by Figures 6 and 7.
pub fn processor_sweep(n: usize) -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= n / 4)
        .collect()
}

/// A formatted table: header plus rows of (label, values-by-column).
pub fn print_table(title: &str, col_names: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap();
    let col_w = col_names
        .iter()
        .map(|c| c.len())
        .chain(rows.iter().flat_map(|(_, vs)| vs.iter().map(|v| v.len())))
        .max()
        .unwrap()
        + 2;
    print!("{:label_w$}", "");
    for c in col_names {
        print!("{c:>col_w$}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:label_w$}");
        for v in values {
            print!("{v:>col_w$}");
        }
        println!();
    }
}

/// Speedup row helper: sequential (1-processor compile-time) time over
/// each measured time.
pub fn speedups(base: u64, times: &[u64]) -> Vec<String> {
    times
        .iter()
        .map(|t| format!("{:.2}", base as f64 / *t as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_every_variant_small() {
        for variant in [
            Variant::RuntimeRes,
            Variant::CompileTime,
            Variant::OptimizedI,
            Variant::OptimizedII,
            Variant::OptimizedIII { blksize: 2 },
            Variant::Handwritten { blksize: 2 },
        ] {
            let m = run_wavefront(variant, 8, 2, CostModel::ipsc2(), true);
            assert!(m.verified, "{variant} produced a wrong answer");
            assert!(m.makespan > 0);
        }
    }

    #[test]
    fn paper_ordering_holds_at_moderate_size() {
        // Who wins: handwritten ≈ optimized III < optimized II
        // < optimized I < compile-time < run-time.
        let n = 24;
        let s = 4;
        let cost = CostModel::ipsc2();
        let rt = run_wavefront(Variant::RuntimeRes, n, s, cost, false).makespan;
        let ct = run_wavefront(Variant::CompileTime, n, s, cost, false).makespan;
        let o1 = run_wavefront(Variant::OptimizedI, n, s, cost, false).makespan;
        let o2 = run_wavefront(Variant::OptimizedII, n, s, cost, false).makespan;
        let o3 = run_wavefront(Variant::OptimizedIII { blksize: 4 }, n, s, cost, false).makespan;
        let hw = run_wavefront(Variant::Handwritten { blksize: 4 }, n, s, cost, false).makespan;
        assert!(ct < rt, "compile-time {ct} vs run-time {rt}");
        assert!(o1 < ct, "optimized I {o1} vs compile-time {ct}");
        assert!(o2 < o1, "optimized II {o2} vs optimized I {o1}");
        assert!(o3 < o2, "optimized III {o3} vs optimized II {o2}");
        // The handwritten program and optimized III are the same protocol;
        // allow either to edge out the other slightly.
        let ratio = o3 as f64 / hw as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "optimized III ({o3}) should be close to handwritten ({hw})"
        );
    }

    #[test]
    fn processor_sweep_respects_grid() {
        assert_eq!(processor_sweep(128), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(processor_sweep(16), vec![1, 2, 4]);
    }
}
