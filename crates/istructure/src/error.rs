//! Error taxonomy for I-structure operations.

use std::error::Error;
use std::fmt;

/// A violation of I-structure semantics.
///
/// The paper (§2.1) defines two run-time errors: writing an element that has
/// already been written, and reading an element that is undefined. We add a
/// bounds error for indices outside the allocated extent, which in the paper
/// would be a generic run-time fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IStructureError {
    /// A second write arrived at an already-full cell.
    DoubleWrite {
        /// Linear (row-major) index of the offending cell.
        index: usize,
    },
    /// A read arrived at a cell that was never written and the store was
    /// asked for a definite value (strict read).
    EmptyRead {
        /// Linear (row-major) index of the offending cell.
        index: usize,
    },
    /// An index fell outside the allocated extent.
    OutOfBounds {
        /// Linear index that was requested.
        index: usize,
        /// Number of allocated cells.
        len: usize,
    },
    /// A 2-D index fell outside the allocated extent.
    OutOfBounds2d {
        /// Row requested (1-based, as in the paper's programs).
        row: i64,
        /// Column requested (1-based).
        col: i64,
        /// Allocated rows.
        rows: usize,
        /// Allocated columns.
        cols: usize,
    },
}

impl fmt::Display for IStructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IStructureError::DoubleWrite { index } => {
                write!(f, "i-structure element {index} written twice")
            }
            IStructureError::EmptyRead { index } => {
                write!(f, "i-structure element {index} read while undefined")
            }
            IStructureError::OutOfBounds { index, len } => {
                write!(f, "i-structure index {index} out of bounds (len {len})")
            }
            IStructureError::OutOfBounds2d {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "i-structure index ({row},{col}) out of bounds ({rows}x{cols})"
            ),
        }
    }
}

impl Error for IStructureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<IStructureError> = vec![
            IStructureError::DoubleWrite { index: 3 },
            IStructureError::EmptyRead { index: 9 },
            IStructureError::OutOfBounds { index: 10, len: 4 },
            IStructureError::OutOfBounds2d {
                row: 5,
                col: 6,
                rows: 2,
                cols: 2,
            },
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IStructureError>();
    }
}
