//! One-dimensional write-once arrays.

use crate::{AccessStats, Cell, IStructureError, Result};

/// A one-dimensional I-structure: a fixed-length array of write-once cells.
///
/// Allocation fixes the length; each element may then be written exactly
/// once and read any number of times after it is written. Reads of empty
/// cells are reported as [`IStructureError::EmptyRead`] by the strict
/// [`read`](IStructure::read); callers that implement dataflow-style
/// deferral use [`try_read`](IStructure::try_read), which records the
/// deferred read on the cell instead of failing.
///
/// # Examples
///
/// ```
/// use pdc_istructure::IStructure;
///
/// # fn main() -> Result<(), pdc_istructure::IStructureError> {
/// let mut v: IStructure<i64> = IStructure::new(4);
/// v.write(0, 10)?;
/// assert_eq!(*v.read(0)?, 10);
/// assert!(v.try_read(3).is_none()); // not yet written; deferred
/// assert_eq!(v.stats().empty_reads, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IStructure<T> {
    cells: Vec<Cell<T>>,
    stats: AccessStats,
}

impl<T> IStructure<T> {
    /// Allocate `len` empty cells.
    pub fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, Cell::new);
        IStructure {
            cells,
            stats: AccessStats::new(),
        }
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Is the structure zero-length?
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of cells that have been written.
    pub fn full_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_full()).count()
    }

    /// Have all cells been written?
    pub fn is_fully_defined(&self) -> bool {
        self.cells.iter().all(Cell::is_full)
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Write `value` into cell `index`.
    ///
    /// # Errors
    ///
    /// [`IStructureError::DoubleWrite`] if the cell is already full,
    /// [`IStructureError::OutOfBounds`] if `index >= len`.
    pub fn write(&mut self, index: usize, value: T) -> Result<()> {
        let len = self.cells.len();
        let cell = self
            .cells
            .get_mut(index)
            .ok_or(IStructureError::OutOfBounds { index, len })?;
        if cell.is_full() {
            self.stats.rejected_writes += 1;
            return Err(IStructureError::DoubleWrite { index });
        }
        *cell = Cell::Full(value);
        self.stats.writes += 1;
        Ok(())
    }

    /// Strict read of cell `index`: the value must already be present.
    ///
    /// # Errors
    ///
    /// [`IStructureError::EmptyRead`] if the cell has not been written,
    /// [`IStructureError::OutOfBounds`] if `index >= len`.
    pub fn read(&mut self, index: usize) -> Result<&T> {
        let len = self.cells.len();
        let cell = self
            .cells
            .get_mut(index)
            .ok_or(IStructureError::OutOfBounds { index, len })?;
        match cell {
            Cell::Full(v) => {
                self.stats.reads += 1;
                Ok(v)
            }
            Cell::Empty { .. } => {
                self.stats.empty_reads += 1;
                Err(IStructureError::EmptyRead { index })
            }
        }
    }

    /// Non-strict read: `Some(&value)` if present, otherwise `None` after
    /// recording a deferred read on the cell.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; use [`read`](Self::read) for a
    /// fallible bounds check.
    pub fn try_read(&mut self, index: usize) -> Option<&T> {
        match &mut self.cells[index] {
            Cell::Full(_) => {
                self.stats.reads += 1;
                self.cells[index].value()
            }
            Cell::Empty { deferred } => {
                *deferred += 1;
                self.stats.empty_reads += 1;
                None
            }
        }
    }

    /// Peek at a cell without touching statistics or deferral counts.
    pub fn peek(&self, index: usize) -> Option<&T> {
        self.cells.get(index).and_then(Cell::value)
    }

    /// Total deferred reads currently recorded on empty cells.
    pub fn deferred_reads(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| u64::from(c.deferred_reads()))
            .sum()
    }

    /// Iterate over the written values together with their indices.
    pub fn iter_full(&self) -> impl Iterator<Item = (usize, &T)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.value().map(|v| (i, v)))
    }
}

impl<T: Clone> IStructure<T> {
    /// Build a fully-defined structure from existing values.
    pub fn from_values(values: &[T]) -> Self {
        let mut s = IStructure::new(values.len());
        for (i, v) in values.iter().enumerate() {
            s.write(i, v.clone()).expect("fresh structure");
        }
        s
    }

    /// Extract all values; `None` if any cell is still empty.
    pub fn to_vec(&self) -> Option<Vec<T>> {
        self.cells.iter().map(|c| c.value().cloned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut s = IStructure::new(3);
        s.write(1, "x").unwrap();
        assert_eq!(*s.read(1).unwrap(), "x");
        assert_eq!(s.full_count(), 1);
        assert!(!s.is_fully_defined());
    }

    #[test]
    fn double_write_is_rejected() {
        let mut s = IStructure::new(2);
        s.write(0, 1).unwrap();
        assert_eq!(
            s.write(0, 2),
            Err(IStructureError::DoubleWrite { index: 0 })
        );
        // Original value survives.
        assert_eq!(*s.read(0).unwrap(), 1);
        assert_eq!(s.stats().rejected_writes, 1);
    }

    #[test]
    fn empty_read_is_an_error() {
        let mut s: IStructure<i32> = IStructure::new(2);
        assert_eq!(s.read(1), Err(IStructureError::EmptyRead { index: 1 }));
        assert_eq!(s.stats().empty_reads, 1);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut s: IStructure<i32> = IStructure::new(2);
        assert_eq!(
            s.write(5, 0),
            Err(IStructureError::OutOfBounds { index: 5, len: 2 })
        );
        assert_eq!(
            s.read(2),
            Err(IStructureError::OutOfBounds { index: 2, len: 2 })
        );
    }

    #[test]
    fn try_read_defers() {
        let mut s: IStructure<i32> = IStructure::new(1);
        assert!(s.try_read(0).is_none());
        assert!(s.try_read(0).is_none());
        assert_eq!(s.deferred_reads(), 2);
        s.write(0, 9).unwrap();
        assert_eq!(s.try_read(0), Some(&9));
        // Deferral counts are frozen once the cell fills.
        assert_eq!(s.deferred_reads(), 0);
    }

    #[test]
    fn from_values_and_to_vec() {
        let s = IStructure::from_values(&[1, 2, 3]);
        assert!(s.is_fully_defined());
        assert_eq!(s.to_vec(), Some(vec![1, 2, 3]));
        let partial: IStructure<i32> = IStructure::new(2);
        assert_eq!(partial.to_vec(), None);
    }

    #[test]
    fn iter_full_skips_empty() {
        let mut s = IStructure::new(4);
        s.write(1, 10).unwrap();
        s.write(3, 30).unwrap();
        let pairs: Vec<_> = s.iter_full().map(|(i, v)| (i, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn zero_length_structure() {
        let s: IStructure<i32> = IStructure::new(0);
        assert!(s.is_empty());
        assert!(s.is_fully_defined());
        assert_eq!(s.to_vec(), Some(vec![]));
    }
}
