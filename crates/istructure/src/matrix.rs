//! Two-dimensional write-once arrays (`matrix(e1,e2)` of the paper).

use crate::{AccessStats, IStructure, IStructureError, Result};

/// A two-dimensional I-structure in row-major order.
///
/// Indices are **1-based**, matching the programs in the paper (`New[i,j]`
/// for `i, j` in `1..=N`). The paper's `matrix(e1,e2)` primitive allocates
/// one of these; `A[i,j] = e` maps to [`write`](IMatrix::write) and `A[i,j]`
/// to [`read`](IMatrix::read).
///
/// # Examples
///
/// ```
/// use pdc_istructure::IMatrix;
///
/// # fn main() -> Result<(), pdc_istructure::IStructureError> {
/// let mut m: IMatrix<i64> = IMatrix::new(2, 2);
/// m.write(1, 1, 5)?;
/// m.write(2, 2, 7)?;
/// assert_eq!(*m.read(2, 2)?, 7);
/// assert_eq!(m.full_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IMatrix<T> {
    rows: usize,
    cols: usize,
    data: IStructure<T>,
}

impl<T> IMatrix<T> {
    /// Allocate a `rows × cols` matrix of empty cells.
    pub fn new(rows: usize, cols: usize) -> Self {
        IMatrix {
            rows,
            cols,
            data: IStructure::new(rows * cols),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major linear index for 1-based `(row, col)`.
    ///
    /// # Errors
    ///
    /// [`IStructureError::OutOfBounds2d`] if either index is outside
    /// `1..=rows` / `1..=cols`.
    pub fn linear_index(&self, row: i64, col: i64) -> Result<usize> {
        if row < 1 || col < 1 || row as usize > self.rows || col as usize > self.cols {
            return Err(IStructureError::OutOfBounds2d {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((row as usize - 1) * self.cols + (col as usize - 1))
    }

    /// Write `value` into element `(row, col)`.
    ///
    /// # Errors
    ///
    /// Double writes and out-of-bounds indices are reported as in
    /// [`IStructure::write`].
    pub fn write(&mut self, row: i64, col: i64, value: T) -> Result<()> {
        let idx = self.linear_index(row, col)?;
        self.data.write(idx, value)
    }

    /// Strict read of element `(row, col)`.
    ///
    /// # Errors
    ///
    /// Empty reads and out-of-bounds indices are reported as in
    /// [`IStructure::read`].
    pub fn read(&mut self, row: i64, col: i64) -> Result<&T> {
        let idx = self.linear_index(row, col)?;
        self.data.read(idx)
    }

    /// Peek without touching statistics.
    pub fn peek(&self, row: i64, col: i64) -> Option<&T> {
        let idx = self.linear_index(row, col).ok()?;
        self.data.peek(idx)
    }

    /// Number of written elements.
    pub fn full_count(&self) -> usize {
        self.data.full_count()
    }

    /// Have all elements been written?
    pub fn is_fully_defined(&self) -> bool {
        self.data.is_fully_defined()
    }

    /// Access statistics for the underlying store.
    pub fn stats(&self) -> AccessStats {
        self.data.stats()
    }

    /// Borrow the underlying linear store.
    pub fn as_linear(&self) -> &IStructure<T> {
        &self.data
    }
}

impl<T: Clone> IMatrix<T> {
    /// Build a fully-defined matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, values: &[T]) -> Self {
        assert_eq!(values.len(), rows * cols, "shape mismatch");
        IMatrix {
            rows,
            cols,
            data: IStructure::from_values(values),
        }
    }

    /// Extract all values in row-major order; `None` if any cell is empty.
    pub fn to_vec(&self) -> Option<Vec<T>> {
        self.data.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_based_indexing_round_trips() {
        let mut m = IMatrix::new(2, 3);
        m.write(1, 1, 'a').unwrap();
        m.write(2, 3, 'z').unwrap();
        assert_eq!(*m.read(1, 1).unwrap(), 'a');
        assert_eq!(*m.read(2, 3).unwrap(), 'z');
    }

    #[test]
    fn linear_index_is_row_major() {
        let m: IMatrix<i32> = IMatrix::new(3, 4);
        assert_eq!(m.linear_index(1, 1).unwrap(), 0);
        assert_eq!(m.linear_index(1, 4).unwrap(), 3);
        assert_eq!(m.linear_index(2, 1).unwrap(), 4);
        assert_eq!(m.linear_index(3, 4).unwrap(), 11);
    }

    #[test]
    fn bounds_are_checked() {
        let mut m: IMatrix<i32> = IMatrix::new(2, 2);
        for (r, c) in [(0, 1), (1, 0), (3, 1), (1, 3), (-1, 1)] {
            assert!(matches!(
                m.write(r, c, 0),
                Err(IStructureError::OutOfBounds2d { .. })
            ));
        }
    }

    #[test]
    fn double_write_detected_through_matrix() {
        let mut m = IMatrix::new(2, 2);
        m.write(1, 2, 1).unwrap();
        assert!(matches!(
            m.write(1, 2, 2),
            Err(IStructureError::DoubleWrite { .. })
        ));
    }

    #[test]
    fn from_rows_and_to_vec() {
        let m = IMatrix::from_rows(2, 2, &[1, 2, 3, 4]);
        assert!(m.is_fully_defined());
        assert_eq!(m.to_vec(), Some(vec![1, 2, 3, 4]));
        assert_eq!(m.peek(1, 2), Some(&2));
        assert_eq!(m.peek(2, 1), Some(&3));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_rows_checks_shape() {
        let _ = IMatrix::from_rows(2, 2, &[1, 2, 3]);
    }
}
