//! The per-element state of an I-structure.

/// State of one I-structure element.
///
/// A cell starts [`Cell::Empty`], transitions to [`Cell::Full`] on its first
/// (and only legal) write, and never changes again. The `Empty` variant
/// carries the number of reads that arrived before the write — *deferred*
/// reads in dataflow terminology — so that a runtime built on this store can
/// account for read-before-write synchronization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell<T> {
    /// No value has been written yet. The payload counts reads that have
    /// been deferred on this cell.
    Empty {
        /// Number of reads that arrived while the cell was still empty.
        deferred: u32,
    },
    /// The value has been written exactly once.
    Full(T),
}

impl<T> Cell<T> {
    /// A fresh, never-written cell with no deferred readers.
    pub const fn new() -> Self {
        Cell::Empty { deferred: 0 }
    }

    /// Is this cell still empty?
    pub fn is_empty(&self) -> bool {
        matches!(self, Cell::Empty { .. })
    }

    /// Is this cell full (written)?
    pub fn is_full(&self) -> bool {
        matches!(self, Cell::Full(_))
    }

    /// The value, if the cell has been written.
    pub fn value(&self) -> Option<&T> {
        match self {
            Cell::Full(v) => Some(v),
            Cell::Empty { .. } => None,
        }
    }

    /// Number of reads deferred on this cell while it was empty.
    pub fn deferred_reads(&self) -> u32 {
        match self {
            Cell::Empty { deferred } => *deferred,
            Cell::Full(_) => 0,
        }
    }
}

impl<T> Default for Cell<T> {
    fn default() -> Self {
        Cell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_empty() {
        let c: Cell<i32> = Cell::new();
        assert!(c.is_empty());
        assert!(!c.is_full());
        assert_eq!(c.value(), None);
        assert_eq!(c.deferred_reads(), 0);
    }

    #[test]
    fn full_cell_reports_value() {
        let c = Cell::Full(7);
        assert!(c.is_full());
        assert_eq!(c.value(), Some(&7));
        assert_eq!(c.deferred_reads(), 0);
    }

    #[test]
    fn default_matches_new() {
        let a: Cell<u8> = Cell::default();
        let b: Cell<u8> = Cell::new();
        assert_eq!(a, b);
    }
}
