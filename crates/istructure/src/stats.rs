//! Access statistics for an I-structure store.

/// Counters describing how a store has been used.
///
/// These are cheap to maintain and let the simulator and test suite reason
/// about program behaviour (e.g. that compile-time resolution performs the
/// same number of `is_write`s as the sequential program, or that no read was
/// deferred in a correctly synchronized schedule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Successful strict reads of full cells.
    pub reads: u64,
    /// Successful first writes.
    pub writes: u64,
    /// Reads that found an empty cell (deferred or erroneous).
    pub empty_reads: u64,
    /// Writes rejected because the cell was already full.
    pub rejected_writes: u64,
}

impl AccessStats {
    /// Fresh, all-zero statistics.
    pub const fn new() -> Self {
        AccessStats {
            reads: 0,
            writes: 0,
            empty_reads: 0,
            rejected_writes: 0,
        }
    }

    /// Total number of operations observed.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.empty_reads + self.rejected_writes
    }

    /// Merge counters from another store (used when gathering distributed
    /// segments).
    pub fn merge(&mut self, other: &AccessStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.empty_reads += other.empty_reads;
        self.rejected_writes += other.rejected_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = AccessStats {
            reads: 1,
            writes: 2,
            empty_reads: 3,
            rejected_writes: 4,
        };
        let b = AccessStats {
            reads: 10,
            writes: 20,
            empty_reads: 30,
            rejected_writes: 40,
        };
        a.merge(&b);
        assert_eq!(a.reads, 11);
        assert_eq!(a.writes, 22);
        assert_eq!(a.empty_reads, 33);
        assert_eq!(a.rejected_writes, 44);
        assert_eq!(a.total_ops(), 11 + 22 + 33 + 44);
    }
}
