//! Write-once *I-structure* arrays — the storage substrate of Id Nouveau.
//!
//! I-structures (Arvind, Nikhil & Pingali) separate the *allocation* of an
//! array from the *definition* of its elements, which makes it possible to
//! build large arrays incrementally in a declarative language without the
//! copying cost of purely functional arrays. Unlike imperative arrays, an
//! element may be written **at most once**: a second write to the same cell
//! is a run-time error, and a read of a never-written cell is a run-time
//! error (or, in a dataflow setting, a *deferred* read that completes when
//! the write arrives).
//!
//! This crate provides:
//!
//! * [`IStructure<T>`] — a one-dimensional write-once array with per-cell
//!   empty/full state, deferred-read bookkeeping, and access statistics;
//! * [`IMatrix<T>`] — a two-dimensional array in row-major order built on
//!   the same cell machinery, matching the `matrix(e1,e2)` primitive of the
//!   paper (§2.1);
//! * [`IStructureError`] — the error taxonomy (double write, empty read,
//!   bounds).
//!
//! Both containers are used by the sequential interpreter in `pdc-lang` and
//! by the SPMD virtual machine in `pdc-spmd` (where each processor holds the
//! local segment of a distributed I-structure).
//!
//! # Examples
//!
//! ```
//! use pdc_istructure::{IMatrix, IStructureError};
//!
//! # fn main() -> Result<(), IStructureError> {
//! let mut m: IMatrix<i64> = IMatrix::new(3, 3);
//! m.write(1, 1, 42)?;
//! assert_eq!(*m.read(1, 1)?, 42);
//! // Writing the same element twice is a run-time error:
//! assert!(m.write(1, 1, 43).is_err());
//! # Ok(())
//! # }
//! ```

mod cell;
mod error;
mod matrix;
mod stats;
mod structure;

pub use cell::Cell;
pub use error::IStructureError;
pub use matrix::IMatrix;
pub use stats::AccessStats;
pub use structure::IStructure;

/// Convenient result alias for fallible I-structure operations.
pub type Result<T> = std::result::Result<T, IStructureError>;
