//! Property-based tests of I-structure invariants.

use pdc_istructure::{IMatrix, IStructure, IStructureError};
use proptest::prelude::*;

proptest! {
    /// Write-once: after any sequence of writes, each cell holds the FIRST
    /// value written to it and later writes were rejected.
    #[test]
    fn first_write_wins(len in 1usize..64, writes in proptest::collection::vec((0usize..64, any::<i32>()), 0..128)) {
        let mut s = IStructure::new(len);
        let mut model: Vec<Option<i32>> = vec![None; len];
        for (idx, v) in writes {
            let r = s.write(idx, v);
            if idx >= len {
                prop_assert_eq!(r, Err(IStructureError::OutOfBounds { index: idx, len }));
            } else if model[idx].is_some() {
                prop_assert_eq!(r, Err(IStructureError::DoubleWrite { index: idx }));
            } else {
                prop_assert!(r.is_ok());
                model[idx] = Some(v);
            }
        }
        for (i, want) in model.iter().enumerate() {
            prop_assert_eq!(s.peek(i), want.as_ref());
        }
    }

    /// full_count always equals the number of distinct successfully written
    /// indices, and is_fully_defined iff full_count == len.
    #[test]
    fn full_count_consistency(len in 0usize..32, idxs in proptest::collection::vec(0usize..32, 0..64)) {
        let mut s = IStructure::new(len);
        let mut seen = std::collections::HashSet::new();
        for idx in idxs {
            if s.write(idx, 0u8).is_ok() {
                seen.insert(idx);
            }
        }
        prop_assert_eq!(s.full_count(), seen.len());
        prop_assert_eq!(s.is_fully_defined(), seen.len() == len);
    }

    /// Matrix linear_index is a bijection from valid (row, col) pairs onto
    /// 0..rows*cols.
    #[test]
    fn matrix_index_bijection(rows in 1usize..12, cols in 1usize..12) {
        let m: IMatrix<i8> = IMatrix::new(rows, cols);
        let mut seen = vec![false; rows * cols];
        for r in 1..=rows as i64 {
            for c in 1..=cols as i64 {
                let idx = m.linear_index(r, c).unwrap();
                prop_assert!(!seen[idx], "collision at {}", idx);
                seen[idx] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Statistics: reads + empty_reads equals the number of read attempts,
    /// writes + rejected_writes equals in-bounds write attempts.
    #[test]
    fn stats_account_for_all_ops(
        len in 1usize..16,
        ops in proptest::collection::vec((any::<bool>(), 0usize..16), 0..64),
    ) {
        let mut s = IStructure::new(len);
        let mut read_attempts = 0u64;
        let mut write_attempts = 0u64;
        for (is_read, idx) in ops {
            let idx = idx % len;
            if is_read {
                let _ = s.read(idx);
                read_attempts += 1;
            } else {
                let _ = s.write(idx, 1i64);
                write_attempts += 1;
            }
        }
        let st = s.stats();
        prop_assert_eq!(st.reads + st.empty_reads, read_attempts);
        prop_assert_eq!(st.writes + st.rejected_writes, write_attempts);
    }
}
