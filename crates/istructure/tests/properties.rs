//! Property-based tests of I-structure invariants (deterministic
//! `pdc-testkit` cases; a failing case prints its seed for replay).

use pdc_istructure::{IMatrix, IStructure, IStructureError};
use pdc_testkit::cases;

/// Write-once: after any sequence of writes, each cell holds the FIRST
/// value written to it and later writes were rejected.
#[test]
fn first_write_wins() {
    cases(128, "first_write_wins", |rng| {
        let len = rng.range_usize(1, 64);
        let n_writes = rng.range_usize(0, 128);
        let mut s = IStructure::new(len);
        let mut model: Vec<Option<i32>> = vec![None; len];
        for _ in 0..n_writes {
            let idx = rng.range_usize(0, 64);
            let v = rng.next_u64() as i32;
            let r = s.write(idx, v);
            if idx >= len {
                assert_eq!(r, Err(IStructureError::OutOfBounds { index: idx, len }));
            } else if model[idx].is_some() {
                assert_eq!(r, Err(IStructureError::DoubleWrite { index: idx }));
            } else {
                assert!(r.is_ok());
                model[idx] = Some(v);
            }
        }
        for (i, want) in model.iter().enumerate() {
            assert_eq!(s.peek(i), want.as_ref());
        }
    });
}

/// full_count always equals the number of distinct successfully written
/// indices, and is_fully_defined iff full_count == len.
#[test]
fn full_count_consistency() {
    cases(128, "full_count_consistency", |rng| {
        let len = rng.range_usize(0, 32);
        let n_idxs = rng.range_usize(0, 64);
        let mut s = IStructure::new(len);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n_idxs {
            let idx = rng.range_usize(0, 32);
            if s.write(idx, 0u8).is_ok() {
                seen.insert(idx);
            }
        }
        assert_eq!(s.full_count(), seen.len());
        assert_eq!(s.is_fully_defined(), seen.len() == len);
    });
}

/// Matrix linear_index is a bijection from valid (row, col) pairs onto
/// 0..rows*cols.
#[test]
fn matrix_index_bijection() {
    cases(64, "matrix_index_bijection", |rng| {
        let rows = rng.range_usize(1, 12);
        let cols = rng.range_usize(1, 12);
        let m: IMatrix<i8> = IMatrix::new(rows, cols);
        let mut seen = vec![false; rows * cols];
        for r in 1..=rows as i64 {
            for c in 1..=cols as i64 {
                let idx = m.linear_index(r, c).unwrap();
                assert!(!seen[idx], "collision at {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    });
}

/// Statistics: reads + empty_reads equals the number of read attempts,
/// writes + rejected_writes equals in-bounds write attempts.
#[test]
fn stats_account_for_all_ops() {
    cases(128, "stats_account_for_all_ops", |rng| {
        let len = rng.range_usize(1, 16);
        let n_ops = rng.range_usize(0, 64);
        let mut s = IStructure::new(len);
        let mut read_attempts = 0u64;
        let mut write_attempts = 0u64;
        for _ in 0..n_ops {
            let idx = rng.range_usize(0, 16) % len;
            if rng.bool() {
                let _ = s.read(idx);
                read_attempts += 1;
            } else {
                let _ = s.write(idx, 1i64);
                write_attempts += 1;
            }
        }
        let st = s.stats();
        assert_eq!(st.reads + st.empty_reads, read_attempts);
        assert_eq!(st.writes + st.rejected_writes, write_attempts);
    });
}
