//! Target-level front-end: dependence analysis of SPMD loop nests.
//!
//! Generated code subscripts are richer than source subscripts: the
//! compiler's own placement arithmetic produces `div`/`mod` forms like
//! `1 + (j-1) div 4` in local index positions. Those are *known*
//! functions of the iteration vector, so this front-end admits every
//! [`Canon`] form as exact: structurally identical forms pin the loops
//! they mention to distance 0, differing non-affine forms stay
//! conservatively unknown (a constant shift aligning two `div` forms
//! is not a unique solution of the subscript equation — see
//! [`crate::canon::solve_shift`]), and only subscripts outside the
//! canonical grammar make an access opaque.
//!
//! Compiler-introduced plain buffers (`$vb…`, `$jam…`) are *not*
//! treated as arrays here: they are single-writer streams whose
//! ordering is enforced by the send/recv pairs of the pass that
//! introduced them, and the passes never reorder across communication.

use crate::canon::{canon, canon_eq, mentions, solve_shift, Canon};
use crate::{Access, DependenceInfo, LoopInfo};
use pdc_mapping::Affine;
use pdc_spmd::ir::{SExpr, SStmt, SpmdProgram};
use std::collections::{BTreeMap, BTreeSet};

/// Arrays written (via local or global writes) anywhere in the program.
pub fn written_arrays(prog: &SpmdProgram) -> BTreeSet<String> {
    fn scan(body: &[SStmt], out: &mut BTreeSet<String>) {
        for s in body {
            match s {
                SStmt::AWrite { array, .. } | SStmt::AWriteGlobal { array, .. } => {
                    out.insert(array.clone());
                }
                SStmt::For { body, .. } => scan(body, out),
                SStmt::If { then, els, .. } => {
                    scan(then, out);
                    scan(els, out);
                }
                _ => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    for body in prog.bodies() {
        scan(body, &mut out);
    }
    out
}

/// Arrays that appear in the program (allocated or read) but are never
/// written: such arrays have **no dependences at all**, which is the
/// legality fact message vectorization rests on.
pub fn read_only_arrays(prog: &SpmdProgram) -> BTreeSet<String> {
    fn exprs(e: &SExpr, seen: &mut BTreeSet<String>) {
        match e {
            SExpr::ARead { array, idx } | SExpr::AReadGlobal { array, idx } => {
                seen.insert(array.clone());
                for i in idx {
                    exprs(i, seen);
                }
            }
            SExpr::OwnerOf { idx, .. } | SExpr::LocalOf { idx, .. } => {
                for i in idx {
                    exprs(i, seen);
                }
            }
            SExpr::Bin(_, a, b) => {
                exprs(a, seen);
                exprs(b, seen);
            }
            SExpr::Un(_, a) => exprs(a, seen),
            SExpr::BufRead { idx, .. } => exprs(idx, seen),
            _ => {}
        }
    }
    fn scan(body: &[SStmt], seen: &mut BTreeSet<String>) {
        for s in body {
            match s {
                SStmt::AllocDist {
                    array, rows, cols, ..
                } => {
                    seen.insert(array.clone());
                    exprs(rows, seen);
                    exprs(cols, seen);
                }
                SStmt::AllocBuf { len, .. } => exprs(len, seen),
                SStmt::Let { value, .. } => exprs(value, seen),
                SStmt::AWrite { idx, value, .. } | SStmt::AWriteGlobal { idx, value, .. } => {
                    for i in idx {
                        exprs(i, seen);
                    }
                    exprs(value, seen);
                }
                SStmt::BufWrite { idx, value, .. } => {
                    exprs(idx, seen);
                    exprs(value, seen);
                }
                SStmt::Send { to, values, .. } => {
                    exprs(to, seen);
                    for v in values {
                        exprs(v, seen);
                    }
                }
                SStmt::Recv { from, .. } => exprs(from, seen),
                SStmt::SendBuf { to, lo, hi, .. } => {
                    exprs(to, seen);
                    exprs(lo, seen);
                    exprs(hi, seen);
                }
                SStmt::RecvBuf { from, lo, hi, .. } => {
                    exprs(from, seen);
                    exprs(lo, seen);
                    exprs(hi, seen);
                }
                SStmt::For {
                    lo, hi, step, body, ..
                } => {
                    exprs(lo, seen);
                    exprs(hi, seen);
                    exprs(step, seen);
                    scan(body, seen);
                }
                SStmt::If { cond, then, els } => {
                    exprs(cond, seen);
                    scan(then, seen);
                    scan(els, seen);
                }
                SStmt::Comment(_) => {}
            }
        }
    }
    let mut seen = BTreeSet::new();
    for body in prog.bodies() {
        scan(body, &mut seen);
    }
    let written = written_arrays(prog);
    seen.difference(&written).cloned().collect()
}

/// Solve for the single constant shift `delta` with
/// `read_idx[v := v + delta] == write_idx` across *every* dimension —
/// the flow-dependence witness the jam pass needs ("the value sent at
/// iteration `v+delta` is the one produced at iteration `v`").
/// Dimensions not mentioning `v` must be structurally equal; at least
/// one dimension must mention `v`, and all that do must agree.
pub fn flow_shift(write_idx: &[SExpr], read_idx: &[SExpr], v: &str) -> Option<i64> {
    if write_idx.len() != read_idx.len() {
        return None;
    }
    let mut delta: Option<i64> = None;
    for (a, b) in write_idx.iter().zip(read_idx) {
        if mentions(a, v) || mentions(b, v) {
            let (ca, cb) = (canon(a)?, canon(b)?);
            let d = solve_shift(&ca, &cb, v)?;
            match delta {
                None => delta = Some(d),
                Some(prev) if prev == d => {}
                _ => return None,
            }
        } else if !canon_eq(a, b) {
            return None;
        }
    }
    delta
}

struct Walker {
    info: DependenceInfo,
    stack: Vec<usize>,
    pos: usize,
    /// Known symbol values, already filtered of the nest's loop vars.
    env: BTreeMap<String, i64>,
}

impl Walker {
    fn new(env: BTreeMap<String, i64>) -> Self {
        Walker {
            info: DependenceInfo {
                exact: true,
                ..DependenceInfo::default()
            },
            stack: Vec::new(),
            pos: 0,
            env,
        }
    }

    /// Replace known symbols by their values in every affine leaf.
    fn subst(&self, c: Canon) -> Canon {
        if self.env.is_empty() {
            return c;
        }
        match c {
            Canon::Aff(mut a) => {
                for (k, v) in &self.env {
                    if a.mentions(k) {
                        a = a.substitute(k, &Affine::constant(*v));
                    }
                }
                Canon::Aff(a)
            }
            Canon::Div(inner, k) => Canon::Div(Box::new(self.subst(*inner)), k),
            Canon::Mod(inner, k) => Canon::Mod(Box::new(self.subst(*inner)), k),
            Canon::Add(a, b) => Canon::Add(Box::new(self.subst(*a)), Box::new(self.subst(*b))),
            Canon::Scale(k, inner) => Canon::Scale(k, Box::new(self.subst(*inner))),
        }
    }

    fn access(&mut self, array: &str, is_write: bool, global: bool, idx: &[SExpr]) {
        let mut subs = Vec::with_capacity(idx.len());
        let mut reason = None;
        for e in idx {
            match canon(e) {
                Some(c) => subs.push(self.subst(c)),
                None => {
                    reason = Some(format!(
                        "subscript of `{array}` outside the canonical index grammar"
                    ));
                    break;
                }
            }
        }
        let opaque = reason.is_some();
        self.info.accesses.push(Access {
            array: array.to_string(),
            is_write,
            global,
            subs: if opaque { None } else { Some(subs) },
            reason,
            loops: self.stack.clone(),
            pos: self.pos,
            span: None,
        });
    }

    /// Constant value of a bound expression under the environment.
    fn cbound(&self, e: &SExpr) -> Option<i64> {
        match canon(e).map(|c| self.subst(c)) {
            Some(Canon::Aff(a)) => a.as_constant(),
            _ => None,
        }
    }

    fn expr(&mut self, e: &SExpr) {
        match e {
            SExpr::ARead { array, idx } | SExpr::AReadGlobal { array, idx } => {
                for i in idx {
                    self.expr(i);
                }
                let global = matches!(e, SExpr::AReadGlobal { .. });
                self.access(array, false, global, idx);
            }
            SExpr::OwnerOf { idx, .. } | SExpr::LocalOf { idx, .. } => {
                // Pure index arithmetic: no element is touched.
                for i in idx {
                    self.expr(i);
                }
            }
            SExpr::Bin(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            SExpr::Un(_, a) => self.expr(a),
            SExpr::BufRead { idx, .. } => self.expr(idx),
            _ => {}
        }
    }

    fn body(&mut self, stmts: &[SStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Let { value, .. } => {
                self.expr(value);
                self.pos += 1;
            }
            SStmt::AllocDist { rows, cols, .. } => {
                self.expr(rows);
                self.expr(cols);
                self.pos += 1;
            }
            SStmt::AllocBuf { len, .. } => {
                self.expr(len);
                self.pos += 1;
            }
            SStmt::AWrite { array, idx, value } => {
                for i in idx {
                    self.expr(i);
                }
                self.expr(value);
                self.access(array, true, false, idx);
                self.pos += 1;
            }
            SStmt::AWriteGlobal { array, idx, value } => {
                for i in idx {
                    self.expr(i);
                }
                self.expr(value);
                self.access(array, true, true, idx);
                self.pos += 1;
            }
            SStmt::BufWrite { idx, value, .. } => {
                self.expr(idx);
                self.expr(value);
                self.pos += 1;
            }
            SStmt::Send { to, values, .. } => {
                self.expr(to);
                for v in values {
                    self.expr(v);
                }
                self.pos += 1;
            }
            SStmt::Recv { from, .. } => {
                self.expr(from);
                self.pos += 1;
            }
            SStmt::SendBuf { to, lo, hi, .. } => {
                self.expr(to);
                self.expr(lo);
                self.expr(hi);
                self.pos += 1;
            }
            SStmt::RecvBuf { from, lo, hi, .. } => {
                self.expr(from);
                self.expr(lo);
                self.expr(hi);
                self.pos += 1;
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                self.expr(lo);
                self.expr(hi);
                self.expr(step);
                let lo_c = self.cbound(lo);
                let hi_c = self.cbound(hi);
                let step_c = self.cbound(step);
                let id = self.info.loops.len();
                self.info.loops.push(LoopInfo {
                    var: var.clone(),
                    lo: lo_c,
                    hi: hi_c,
                    step: step_c,
                });
                self.stack.push(id);
                self.pos += 1;
                self.body(body);
                self.stack.pop();
            }
            SStmt::If { cond, then, els } => {
                self.expr(cond);
                self.pos += 1;
                // Either branch may execute on some iteration.
                self.body(then);
                self.body(els);
            }
            SStmt::Comment(_) => {}
        }
    }
}

/// Analyze one target-code loop nest (`stmt` should be an
/// [`SStmt::For`]). Symbols stay symbolic — use [`analyze_for_env`]
/// when the static environment is known.
pub fn analyze_for(stmt: &SStmt) -> DependenceInfo {
    analyze_for_env(stmt, &BTreeMap::new())
}

/// [`analyze_for`] with known symbol values substituted into
/// subscripts and loop bounds first (the nest's loop variables are
/// never substituted).
pub fn analyze_for_env(stmt: &SStmt, env: &BTreeMap<String, i64>) -> DependenceInfo {
    let mut bound = BTreeSet::new();
    loop_vars(stmt, &mut bound);
    let env = env
        .iter()
        .filter(|(k, _)| !bound.contains(k.as_str()))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let mut w = Walker::new(env);
    w.stmt(stmt);
    w.info.solve();
    w.info
}

/// Every loop variable appearing under `s`.
fn loop_vars(s: &SStmt, out: &mut BTreeSet<String>) {
    match s {
        SStmt::For { var, body, .. } => {
            out.insert(var.clone());
            for st in body {
                loop_vars(st, out);
            }
        }
        SStmt::If { then, els, .. } => {
            for st in then {
                loop_vars(st, out);
            }
            for st in els {
                loop_vars(st, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepKind, Direction};

    fn colform(off: i64) -> SExpr {
        // 1 + (j + off) div 4 — the compile-time local column of a
        // column-cyclic distribution.
        SExpr::int(1).add(SExpr::var("j").add(SExpr::int(off)).idiv(SExpr::int(4)))
    }

    #[test]
    fn element_loop_carried_flow_is_exact() {
        // for i = 2 to 7 { t = is_read(New, [i-1, col]); is_write(New,
        // [i, col], t) } — the strip-mine element loop shape.
        let nest = SStmt::For {
            var: "i".into(),
            lo: SExpr::int(2),
            hi: SExpr::int(7),
            step: SExpr::int(1),
            body: vec![
                SStmt::Let {
                    var: "t".into(),
                    value: SExpr::ARead {
                        array: "New".into(),
                        idx: vec![SExpr::var("i").sub(SExpr::int(1)), colform(-1)],
                    },
                },
                SStmt::AWrite {
                    array: "New".into(),
                    idx: vec![SExpr::var("i"), colform(-1)],
                    value: SExpr::var("t"),
                },
            ],
        };
        let d = analyze_for(&nest);
        assert!(d.exact, "{:?}", d.notes);
        assert_eq!(d.deps.len(), 1, "{:?}", d.deps);
        let dep = &d.deps[0];
        assert_eq!(dep.kind, DepKind::Flow);
        assert_eq!(dep.distance, vec![Some(1)]);
        assert_eq!(dep.direction, vec![Direction::Lt]);
        assert_eq!(dep.level, Some(1));
    }

    #[test]
    fn strided_loop_measures_iteration_distance() {
        // for j = 1 by 4 { is_write(a, [j]); t = is_read(a, [j - 4]) }
        let nest = SStmt::For {
            var: "j".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(33),
            step: SExpr::int(4),
            body: vec![
                SStmt::AWrite {
                    array: "a".into(),
                    idx: vec![SExpr::var("j")],
                    value: SExpr::int(0),
                },
                SStmt::Let {
                    var: "t".into(),
                    value: SExpr::ARead {
                        array: "a".into(),
                        idx: vec![SExpr::var("j").sub(SExpr::int(4))],
                    },
                },
            ],
        };
        let d = analyze_for(&nest);
        assert!(d.exact, "{:?}", d.notes);
        assert_eq!(d.deps.len(), 1);
        assert_eq!(d.deps[0].distance, vec![Some(1)]);
        assert_eq!(d.deps[0].kind, DepKind::Flow);
    }

    #[test]
    fn local_and_global_spaces_never_pair() {
        let nest = SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(4),
            step: SExpr::int(1),
            body: vec![
                SStmt::AWrite {
                    array: "a".into(),
                    idx: vec![SExpr::var("i")],
                    value: SExpr::int(0),
                },
                SStmt::Let {
                    var: "t".into(),
                    value: SExpr::AReadGlobal {
                        array: "a".into(),
                        idx: vec![SExpr::var("i")],
                    },
                },
            ],
        };
        let d = analyze_for(&nest);
        // Same subscripts but different index spaces: the framework
        // refuses to equate them (pairing them would be wrong whenever
        // Local ≠ identity).
        assert!(d.deps.is_empty(), "{:?}", d.deps);
    }

    #[test]
    fn flow_shift_matches_jam_semantics() {
        let w = vec![SExpr::var("i"), colform(-1)];
        let r = vec![SExpr::var("i"), colform(-2)];
        assert_eq!(flow_shift(&w, &r, "j"), Some(1));
        // Dimension not mentioning j must be equal.
        let r_bad = vec![SExpr::var("i").add(SExpr::int(1)), colform(-2)];
        assert_eq!(flow_shift(&w, &r_bad, "j"), None);
        // No dimension mentioning j at all: no witness.
        let plain = vec![SExpr::var("i")];
        assert_eq!(flow_shift(&plain, &plain, "j"), None);
    }

    #[test]
    fn written_and_read_only_partition() {
        let prog = SpmdProgram::uniform(
            2,
            vec![
                SStmt::AllocDist {
                    array: "Old".into(),
                    rows: SExpr::int(8),
                    cols: SExpr::int(8),
                    dist: pdc_mapping::Dist::ColumnCyclic,
                },
                SStmt::For {
                    var: "i".into(),
                    lo: SExpr::int(1),
                    hi: SExpr::int(8),
                    step: SExpr::int(1),
                    body: vec![SStmt::AWrite {
                        array: "New".into(),
                        idx: vec![SExpr::var("i"), SExpr::int(1)],
                        value: SExpr::ARead {
                            array: "Old".into(),
                            idx: vec![SExpr::var("i"), SExpr::int(1)],
                        },
                    }],
                },
            ],
        );
        let written = written_arrays(&prog);
        assert!(written.contains("New") && !written.contains("Old"));
        let ro = read_only_arrays(&prog);
        assert!(ro.contains("Old") && !ro.contains("New"));
    }
}
