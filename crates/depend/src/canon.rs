//! Canonical forms and substitution for target expressions.
//!
//! The dependence solver and the optimization passes must decide
//! questions like *"is the column this block reads the column that
//! block writes, one outer iteration later?"*. They do it by
//! normalizing index expressions to a canonical tree whose leaves are
//! affine forms, comparing structurally, and solving for constant
//! shifts.
//!
//! A caution on [`solve_shift`]: a constant shift that aligns two
//! `div`/`mod` forms is *a* solution of the subscript equation, not
//! the only one (quotient equality admits whole residue blocks of
//! solutions), so it is **not** a dependence distance by itself. The
//! core solver therefore never treats it as exact; the jam pass may,
//! because it separately proves the residue guards agree under the
//! shift.

use pdc_mapping::Affine;
use pdc_spmd::ir::{SBinOp, SExpr, SUnOp};

/// Canonicalized expression: affine leaves combined by `div`/`mod` (the
/// only non-affine operators the compiler emits in index positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Canon {
    /// An affine combination of variables.
    Aff(Affine),
    /// `a div k`.
    Div(Box<Canon>, i64),
    /// `a mod k`.
    Mod(Box<Canon>, i64),
    /// `a + b` where at least one side is non-affine.
    Add(Box<Canon>, Box<Canon>),
    /// `k * a` where `a` is non-affine.
    Scale(i64, Box<Canon>),
}

/// Normalize an expression; `None` if it contains reads, communication,
/// or non-index arithmetic.
pub fn canon(e: &SExpr) -> Option<Canon> {
    match e {
        SExpr::Int(v) => Some(Canon::Aff(Affine::constant(*v))),
        SExpr::Var(v) => Some(Canon::Aff(Affine::var(v.clone()))),
        SExpr::Un(SUnOp::Neg, a) => neg(canon(a)?),
        SExpr::Bin(op, a, b) => {
            let (ca, cb) = (canon(a)?, canon(b)?);
            match op {
                SBinOp::Add => Some(add(ca, cb)),
                SBinOp::Sub => Some(add(ca, neg(cb)?)),
                SBinOp::Mul => match (ca, cb) {
                    (Canon::Aff(x), Canon::Aff(y)) => {
                        if let Some(k) = x.as_constant() {
                            Some(Canon::Aff(y.scale(k)))
                        } else {
                            y.as_constant().map(|k| Canon::Aff(x.scale(k)))
                        }
                    }
                    (Canon::Aff(x), other) | (other, Canon::Aff(x)) => {
                        x.as_constant().map(|k| scale(k, other))
                    }
                    _ => None,
                },
                SBinOp::FloorDiv => match (cb, ca) {
                    (Canon::Aff(y), ca) => {
                        let k = y.as_constant()?;
                        if k <= 0 {
                            return None;
                        }
                        Some(Canon::Div(Box::new(ca), k))
                    }
                    _ => None,
                },
                SBinOp::Mod => match (cb, ca) {
                    (Canon::Aff(y), ca) => {
                        let k = y.as_constant()?;
                        if k <= 0 {
                            return None;
                        }
                        Some(Canon::Mod(Box::new(ca), k))
                    }
                    _ => None,
                },
                _ => None,
            }
        }
        _ => None,
    }
}

fn neg(c: Canon) -> Option<Canon> {
    match c {
        Canon::Aff(a) => Some(Canon::Aff(a.scale(-1))),
        other => Some(scale(-1, other)),
    }
}

fn scale(k: i64, c: Canon) -> Canon {
    match c {
        Canon::Aff(a) => Canon::Aff(a.scale(k)),
        Canon::Scale(k2, inner) => Canon::Scale(k * k2, inner),
        other => Canon::Scale(k, Box::new(other)),
    }
}

fn add(a: Canon, b: Canon) -> Canon {
    match (a, b) {
        (Canon::Aff(x), Canon::Aff(y)) => Canon::Aff(x.add(&y)),
        // Keep affine accumulating on the left for canonical shape.
        (Canon::Add(l, r), y) => match (*l, y) {
            (Canon::Aff(x), Canon::Aff(y2)) => Canon::Add(Box::new(Canon::Aff(x.add(&y2))), r),
            (l2, y2) => Canon::Add(Box::new(Canon::Add(Box::new(l2), r)), Box::new(y2)),
        },
        (x, y) => Canon::Add(Box::new(x), Box::new(y)),
    }
}

/// Substitute `v := v + delta` throughout.
pub fn shift_var(c: &Canon, v: &str, delta: i64) -> Canon {
    match c {
        Canon::Aff(a) => Canon::Aff(a.substitute(v, &Affine::var(v).offset(delta))),
        Canon::Div(inner, k) => Canon::Div(Box::new(shift_var(inner, v, delta)), *k),
        Canon::Mod(inner, k) => Canon::Mod(Box::new(shift_var(inner, v, delta)), *k),
        Canon::Add(a, b) => Canon::Add(
            Box::new(shift_var(a, v, delta)),
            Box::new(shift_var(b, v, delta)),
        ),
        Canon::Scale(k, inner) => Canon::Scale(*k, Box::new(shift_var(inner, v, delta))),
    }
}

/// Solve `shift_var(b, v, delta) == a` for a constant `delta`; `None` if
/// no constant shift aligns them. Conservative: both trees must have the
/// same shape and the affine leaves must differ only in their constant
/// parts, consistently.
pub fn solve_shift(a: &Canon, b: &Canon, v: &str) -> Option<i64> {
    let mut delta: Option<i64> = None;
    fn walk(a: &Canon, b: &Canon, v: &str, delta: &mut Option<i64>) -> bool {
        match (a, b) {
            (Canon::Aff(x), Canon::Aff(y)) => {
                // Need y[v := v + d] == x. Coefficients must match.
                for var in x.vars().chain(y.vars()) {
                    if x.coeff(var) != y.coeff(var) {
                        return false;
                    }
                }
                let cv = y.coeff(v);
                let diff = x.constant_part() - y.constant_part();
                if cv == 0 {
                    return diff == 0;
                }
                if diff % cv != 0 {
                    return false;
                }
                let d = diff / cv;
                match delta {
                    None => {
                        *delta = Some(d);
                        true
                    }
                    Some(prev) => *prev == d,
                }
            }
            (Canon::Div(ia, ka), Canon::Div(ib, kb)) | (Canon::Mod(ia, ka), Canon::Mod(ib, kb)) => {
                ka == kb && walk(ia, ib, v, delta)
            }
            (Canon::Add(a1, a2), Canon::Add(b1, b2)) => {
                walk(a1, b1, v, delta) && walk(a2, b2, v, delta)
            }
            (Canon::Scale(ka, ia), Canon::Scale(kb, ib)) => ka == kb && walk(ia, ib, v, delta),
            _ => false,
        }
    }
    if walk(a, b, v, &mut delta) {
        delta.or(Some(0))
    } else {
        None
    }
}

/// Render a canonical form back to target IR.
pub fn uncanon(c: &Canon) -> SExpr {
    match c {
        Canon::Aff(a) => affine_to_sexpr(a),
        Canon::Div(inner, k) => uncanon(inner).idiv(SExpr::int(*k)),
        Canon::Mod(inner, k) => uncanon(inner).imod(SExpr::int(*k)),
        Canon::Add(a, b) => uncanon(a).add(uncanon(b)),
        Canon::Scale(k, inner) => SExpr::int(*k).mul(uncanon(inner)),
    }
}

fn affine_to_sexpr(a: &Affine) -> SExpr {
    let mut acc: Option<SExpr> = None;
    for v in a.vars().map(str::to_owned).collect::<Vec<_>>() {
        let c = a.coeff(&v);
        let term = if c == 1 {
            SExpr::var(v)
        } else {
            SExpr::int(c).mul(SExpr::var(v))
        };
        acc = Some(match acc {
            None => term,
            Some(e) => e.add(term),
        });
    }
    let c = a.constant_part();
    match acc {
        None => SExpr::int(c),
        Some(e) if c == 0 => e,
        Some(e) if c > 0 => e.add(SExpr::int(c)),
        Some(e) => e.sub(SExpr::int(-c)),
    }
}

/// Substitute `v := v + delta` in a target expression (via the canonical
/// form where possible; structurally otherwise).
pub fn shift_sexpr(e: &SExpr, v: &str, delta: i64) -> SExpr {
    if let Some(c) = canon(e) {
        return uncanon(&shift_var(&c, v, delta));
    }
    match e {
        SExpr::Var(w) if w == v => SExpr::var(v).add(SExpr::int(delta)),
        SExpr::Bin(op, a, b) => SExpr::Bin(
            *op,
            Box::new(shift_sexpr(a, v, delta)),
            Box::new(shift_sexpr(b, v, delta)),
        ),
        SExpr::Un(op, a) => SExpr::Un(*op, Box::new(shift_sexpr(a, v, delta))),
        SExpr::ARead { array, idx } => SExpr::ARead {
            array: array.clone(),
            idx: idx.iter().map(|i| shift_sexpr(i, v, delta)).collect(),
        },
        SExpr::AReadGlobal { array, idx } => SExpr::AReadGlobal {
            array: array.clone(),
            idx: idx.iter().map(|i| shift_sexpr(i, v, delta)).collect(),
        },
        SExpr::OwnerOf { array, idx } => SExpr::OwnerOf {
            array: array.clone(),
            idx: idx.iter().map(|i| shift_sexpr(i, v, delta)).collect(),
        },
        SExpr::LocalOf { array, idx, dim } => SExpr::LocalOf {
            array: array.clone(),
            idx: idx.iter().map(|i| shift_sexpr(i, v, delta)).collect(),
            dim: *dim,
        },
        SExpr::BufRead { buf, idx } => SExpr::BufRead {
            buf: buf.clone(),
            idx: Box::new(shift_sexpr(idx, v, delta)),
        },
        other => other.clone(),
    }
}

/// Structural equality modulo canonical form.
pub fn canon_eq(a: &SExpr, b: &SExpr) -> bool {
    match (canon(a), canon(b)) {
        (Some(ca), Some(cb)) => ca == cb,
        _ => a == b,
    }
}

/// Does the expression mention a variable?
pub fn mentions(e: &SExpr, v: &str) -> bool {
    match e {
        SExpr::Var(w) => w == v,
        SExpr::Int(_) | SExpr::Float(_) | SExpr::Bool(_) | SExpr::MyNode | SExpr::NProcs => false,
        SExpr::Bin(_, a, b) => mentions(a, v) || mentions(b, v),
        SExpr::Un(_, a) => mentions(a, v),
        SExpr::ARead { idx, .. }
        | SExpr::AReadGlobal { idx, .. }
        | SExpr::OwnerOf { idx, .. }
        | SExpr::LocalOf { idx, .. } => idx.iter().any(|e| mentions(e, v)),
        SExpr::BufRead { idx, .. } => mentions(idx, v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> SExpr {
        SExpr::var("j")
    }

    #[test]
    fn canon_folds_constants() {
        // (j + 1) - 2 == j - 1
        let a = j().add(SExpr::int(1)).sub(SExpr::int(2));
        let b = j().sub(SExpr::int(1));
        assert!(canon_eq(&a, &b));
    }

    #[test]
    fn canon_distinguishes_div_args() {
        let a = j().sub(SExpr::int(1)).idiv(SExpr::int(4));
        let b = j().sub(SExpr::int(2)).idiv(SExpr::int(4));
        assert!(!canon_eq(&a, &b));
    }

    #[test]
    fn solve_shift_finds_delta() {
        // a = 1 + (j-1) div 4 ; b = 1 + (j-2) div 4 : b[j := j+1] == a.
        let a = canon(&SExpr::int(1).add(j().sub(SExpr::int(1)).idiv(SExpr::int(4)))).unwrap();
        let b = canon(&SExpr::int(1).add(j().sub(SExpr::int(2)).idiv(SExpr::int(4)))).unwrap();
        assert_eq!(solve_shift(&a, &b, "j"), Some(1));
        // No shift aligns different divisors.
        let c = canon(&SExpr::int(1).add(j().sub(SExpr::int(2)).idiv(SExpr::int(8)))).unwrap();
        assert_eq!(solve_shift(&a, &c, "j"), None);
    }

    #[test]
    fn shift_sexpr_simplifies() {
        // ((j - 1) mod 4) with j := j+1 becomes (j mod 4).
        let e = j().sub(SExpr::int(1)).imod(SExpr::int(4));
        let shifted = shift_sexpr(&e, "j", 1);
        assert!(canon_eq(&shifted, &j().imod(SExpr::int(4))));
    }

    #[test]
    fn mentions_walks_reads() {
        let e = SExpr::ARead {
            array: "A".into(),
            idx: vec![SExpr::var("i"), j()],
        };
        assert!(mentions(&e, "i"));
        assert!(!mentions(&e, "k"));
    }

    #[test]
    fn solve_shift_requires_same_shape() {
        let a = canon(&j().idiv(SExpr::int(4))).unwrap();
        let b = canon(&j().imod(SExpr::int(4))).unwrap();
        assert_eq!(solve_shift(&a, &b, "j"), None);
    }

    #[test]
    fn uncanon_round_trips_value() {
        // Evaluate both the original and the canonical rendering at a
        // few points.
        let e = j()
            .sub(SExpr::int(1))
            .idiv(SExpr::int(4))
            .add(SExpr::int(1))
            .add(j().imod(SExpr::int(3)));
        let c = canon(&e).unwrap();
        let back = uncanon(&c);
        for jv in [1i64, 5, 9, 17] {
            assert_eq!(eval(&e, jv), eval(&back, jv), "at j = {jv}");
        }
    }

    fn eval(e: &SExpr, jv: i64) -> i64 {
        match e {
            SExpr::Int(v) => *v,
            SExpr::Var(v) if v == "j" => jv,
            SExpr::Bin(op, a, b) => {
                let (x, y) = (eval(a, jv), eval(b, jv));
                match op {
                    SBinOp::Add => x + y,
                    SBinOp::Sub => x - y,
                    SBinOp::Mul => x * y,
                    SBinOp::FloorDiv => x.div_euclid(y),
                    SBinOp::Mod => x.rem_euclid(y),
                    _ => panic!("unexpected op"),
                }
            }
            SExpr::Un(SUnOp::Neg, a) => -eval(a, jv),
            other => panic!("unexpected expr {other:?}"),
        }
    }
}
