//! Source-level front-end: dependence analysis of `pdc-lang` loop nests.
//!
//! The source language is where the honest-degradation contract bites:
//! only *purely affine* subscripts (`i`, `j-1`, `2*i+3`) are admitted
//! to the exact theory. Anything else — `div`/`mod` arithmetic,
//! indirect subscripts like `A[B[i]]`, products of variables — makes
//! the access opaque with a stated reason, and the whole analysis
//! degrades to `exact = false` while still over-approximating every
//! dependence the opaque access could participate in.
//!
//! Calls inside a nest also forfeit exactness: the callee's array
//! effects are not tracked, so the analysis notes the call and reports
//! inexact. (The paper's programs keep calls outside their loop
//! nests, so all five analyze exactly.)

use crate::{Access, DependenceInfo, LoopInfo};
use pdc_lang::ast::{BinOp, Block, Expr, ExprKind, Program, Stmt, UnOp};
use pdc_lang::span::Span;
use pdc_mapping::Affine;
use std::collections::{BTreeMap, BTreeSet};

use crate::canon::Canon;

/// Convert a source expression to an affine form, or say why not.
pub fn to_affine(e: &Expr) -> Result<Affine, &'static str> {
    match &e.kind {
        ExprKind::Int(v) => Ok(Affine::constant(*v)),
        ExprKind::Var(v) => Ok(Affine::var(v.clone())),
        ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } => Ok(to_affine(operand)?.scale(-1)),
        ExprKind::Unary { .. } => Err("boolean operator"),
        ExprKind::Binary { op, lhs, rhs } => match op {
            BinOp::Add => Ok(to_affine(lhs)?.add(&to_affine(rhs)?)),
            BinOp::Sub => Ok(to_affine(lhs)?.sub(&to_affine(rhs)?)),
            BinOp::Mul => {
                let (a, b) = (to_affine(lhs)?, to_affine(rhs)?);
                if let Some(k) = a.as_constant() {
                    Ok(b.scale(k))
                } else if let Some(k) = b.as_constant() {
                    Ok(a.scale(k))
                } else {
                    Err("non-linear product")
                }
            }
            BinOp::Div | BinOp::FloorDiv => Err("division"),
            BinOp::Mod => Err("modulo"),
            _ => Err("non-arithmetic operator"),
        },
        ExprKind::ArrayRead { .. } => Err("indirect subscript"),
        ExprKind::Call { .. } => Err("call in subscript"),
        _ => Err("non-affine expression"),
    }
}

struct Walker {
    info: DependenceInfo,
    stack: Vec<usize>,
    pos: usize,
    /// Known symbol values (the static environment), already filtered
    /// to exclude every loop variable of the nest.
    env: BTreeMap<String, i64>,
}

impl Walker {
    fn new(env: BTreeMap<String, i64>) -> Self {
        Walker {
            info: DependenceInfo {
                exact: true,
                ..DependenceInfo::default()
            },
            stack: Vec::new(),
            pos: 0,
            env,
        }
    }

    /// Replace known symbols by their values.
    fn subst(&self, a: Affine) -> Affine {
        let mut out = a;
        for (k, v) in &self.env {
            if out.mentions(k) {
                out = out.substitute(k, &Affine::constant(*v));
            }
        }
        out
    }

    fn note(&mut self, msg: String) {
        self.info.exact = false;
        if self.info.notes.len() < 32 && !self.info.notes.contains(&msg) {
            self.info.notes.push(msg);
        }
    }

    /// Constant value of a bound expression under the environment.
    fn bound(&self, e: &Expr) -> Option<i64> {
        to_affine(e).ok().and_then(|a| self.subst(a).as_constant())
    }

    /// Record one array access at the current position.
    fn access(&mut self, array: &str, is_write: bool, indices: &[Expr], span: Span) {
        let mut subs = Vec::with_capacity(indices.len());
        let mut reason = None;
        for ix in indices {
            match to_affine(ix) {
                Ok(a) => subs.push(Canon::Aff(self.subst(a))),
                Err(why) => {
                    reason = Some(format!("{why} in subscript of `{array}`"));
                    break;
                }
            }
        }
        let opaque = reason.is_some();
        self.info.accesses.push(Access {
            array: array.to_string(),
            is_write,
            global: true,
            subs: if opaque { None } else { Some(subs) },
            reason,
            loops: self.stack.clone(),
            pos: self.pos,
            span: Some(span),
        });
    }

    /// Collect every array read inside an expression (including reads
    /// nested in the subscripts of other reads).
    fn expr(&mut self, e: &Expr, span: Span) {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
            ExprKind::ArrayRead { array, indices } => {
                for ix in indices {
                    self.expr(ix, span);
                }
                self.access(array, false, indices, span);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs, span);
                self.expr(rhs, span);
            }
            ExprKind::Unary { operand, .. } => self.expr(operand, span),
            ExprKind::Call { name, args } => {
                for a in args {
                    self.expr(a, span);
                }
                self.note(format!(
                    "call to `{name}` inside the nest: callee array effects unknown"
                ));
            }
            ExprKind::Alloc { dims } => {
                for d in dims {
                    self.expr(d, span);
                }
            }
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { init, span, .. } => {
                self.expr(init, *span);
                self.pos += 1;
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                span,
            } => {
                for ix in indices {
                    self.expr(ix, *span);
                }
                self.expr(value, *span);
                self.access(array, true, indices, *span);
                self.pos += 1;
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
                span: _,
            } => {
                let step_c = match step {
                    None => Some(1),
                    Some(e) => self.bound(e),
                };
                let lo_c = self.bound(lo);
                let hi_c = self.bound(hi);
                let id = self.info.loops.len();
                self.info.loops.push(LoopInfo {
                    var: var.clone(),
                    lo: lo_c,
                    hi: hi_c,
                    step: step_c,
                });
                self.stack.push(id);
                self.pos += 1;
                self.block(body);
                self.stack.pop();
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                self.expr(cond, *span);
                self.pos += 1;
                // Both branches *may* execute on some iteration; keep
                // their accesses (conservative over-approximation).
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.block(e);
                }
            }
            Stmt::Return { value, span } => {
                self.expr(value, *span);
                self.pos += 1;
            }
            Stmt::ExprStmt { expr, span } => {
                self.expr(expr, *span);
                self.pos += 1;
            }
        }
    }
}

/// Analyze one loop nest: `stmt` should be a [`Stmt::For`]; the walk
/// collects every loop and array access under it and solves all
/// subscript equations. Symbols stay symbolic — use
/// [`analyze_for_env`] when the static environment is known (the
/// repo-wide convention: analyses are exact *given* the environment).
pub fn analyze_for(stmt: &Stmt) -> DependenceInfo {
    analyze_for_env(stmt, &BTreeMap::new())
}

/// [`analyze_for`] with known symbol values substituted into
/// subscripts and loop bounds first (loop variables of the nest are
/// never substituted, even if the environment names them).
pub fn analyze_for_env(stmt: &Stmt, env: &BTreeMap<String, i64>) -> DependenceInfo {
    let mut bound = BTreeSet::new();
    loop_vars(stmt, &mut bound);
    let env = env
        .iter()
        .filter(|(k, _)| !bound.contains(k.as_str()))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let mut w = Walker::new(env);
    w.stmt(stmt);
    w.info.solve();
    w.info
}

/// Every loop variable appearing under `s`.
fn loop_vars(s: &Stmt, out: &mut BTreeSet<String>) {
    match s {
        Stmt::For { var, body, .. } => {
            out.insert(var.clone());
            for st in &body.stmts {
                loop_vars(st, out);
            }
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            for st in &then_blk.stmts {
                loop_vars(st, out);
            }
            if let Some(e) = else_blk {
                for st in &e.stmts {
                    loop_vars(st, out);
                }
            }
        }
        _ => {}
    }
}

/// The outermost `for` statements of every procedure, paired with the
/// owning procedure's name — the analysis units for a whole program.
pub fn nests(prog: &Program) -> Vec<(&str, &Stmt)> {
    fn collect<'p>(proc: &'p str, b: &'p Block, out: &mut Vec<(&'p str, &'p Stmt)>) {
        for s in &b.stmts {
            match s {
                Stmt::For { .. } => out.push((proc, s)),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    collect(proc, then_blk, out);
                    if let Some(e) = else_blk {
                        collect(proc, e, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for p in &prog.procs {
        collect(&p.name, &p.body, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepKind, Direction};
    use pdc_core::programs;

    fn nest_of<'p>(prog: &'p Program, proc: &str) -> &'p Stmt {
        nests(prog)
            .into_iter()
            .filter(|(p, _)| *p == proc)
            .map(|(_, s)| s)
            .next()
            .expect("proc has a nest")
    }

    #[test]
    fn gauss_seidel_has_the_paper_dependences() {
        // (j,i) nest: New[i,j] reads New[i,j-1] (outer-carried) and
        // New[i-1,j] (inner-carried).
        let prog = programs::gauss_seidel();
        let d = analyze_for(nest_of(&prog, "gs_iteration"));
        assert!(d.exact, "{:?}", d.notes);
        let carried: Vec<_> = d
            .loop_carried()
            .filter(|x| x.kind == DepKind::Flow)
            .collect();
        assert_eq!(carried.len(), 2, "{carried:?}");
        assert!(carried
            .iter()
            .any(|x| x.distance == [Some(1), Some(0)] && x.direction_string() == "(<,=)"));
        assert!(carried
            .iter()
            .any(|x| x.distance == [Some(0), Some(1)] && x.direction_string() == "(=,<)"));
        assert!(d.interchange_legal(0, 1).is_ok());
    }

    #[test]
    fn jacobi_interior_nest_has_no_dependences() {
        // The interior nest reads only `Old`, which the nest never
        // writes; `New` writes never collide.
        let prog = programs::jacobi();
        let nests = nests(&prog);
        let (_, interior) = nests
            .iter()
            .rfind(|(p, _)| *p == "jacobi")
            .expect("interior nest");
        let d = analyze_for(interior);
        assert!(d.exact, "{:?}", d.notes);
        assert!(d.deps.is_empty(), "{:?}", d.deps);
    }

    #[test]
    fn boundary_nests_are_independent_given_the_environment() {
        // `New[i,1]` vs `New[i,n]` needs the environment to prove the
        // columns distinct; with it the nests are exactly independent.
        let prog = programs::gauss_seidel();
        let env = BTreeMap::from([("n".to_string(), 16i64)]);
        for (_, nest) in nests(&prog).iter().filter(|(p, _)| *p == "init_boundary") {
            let d = analyze_for_env(nest, &env);
            assert!(d.exact, "{:?}", d.notes);
            assert!(d.deps.is_empty(), "{:?}", d.deps);
        }
    }

    #[test]
    fn boundary_nests_without_environment_degrade_honestly() {
        let prog = programs::gauss_seidel();
        let (_, nest) = nests(&prog)
            .into_iter()
            .find(|(p, _)| *p == "init_boundary")
            .expect("boundary nest");
        let d = analyze_for(nest);
        assert!(!d.exact);
        assert!(
            d.notes.iter().any(|n| n.contains("symbol `n`")),
            "{:?}",
            d.notes
        );
        // The unproven collision is kept, not dropped.
        assert!(!d.deps.is_empty());
    }

    #[test]
    fn indirect_subscript_degrades() {
        let src = "procedure p(a, b, n) {\n  for i = 1 to n do {\n    a[b[i], 1] = i;\n  }\n  return 0;\n}\n";
        let prog = pdc_lang::parse(src).expect("parses");
        let d = analyze_for(nest_of(&prog, "p"));
        assert!(!d.exact);
        assert!(
            d.notes.iter().any(|n| n.contains("indirect subscript")),
            "{:?}",
            d.notes
        );
        // The opaque write still participates as an all-Any dependence.
        assert!(d.deps.iter().any(|x| x.direction.contains(&Direction::Any)));
    }

    #[test]
    fn modulo_subscript_degrades() {
        let src =
            "procedure p(a, n) {\n  for i = 1 to n do {\n    a[i mod 8, 1] = i;\n  }\n  return 0;\n}\n";
        let prog = pdc_lang::parse(src).expect("parses");
        let d = analyze_for(nest_of(&prog, "p"));
        assert!(!d.exact);
        assert!(
            d.notes.iter().any(|n| n.contains("modulo")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn call_in_nest_degrades() {
        let src = "procedure f(x) { return x; }\nprocedure p(a, n) {\n  for i = 1 to n do {\n    a[i, 1] = f(i);\n  }\n  return 0;\n}\n";
        let prog = pdc_lang::parse(src).expect("parses");
        let d = analyze_for(nest_of(&prog, "p"));
        assert!(!d.exact);
        assert!(
            d.notes.iter().any(|n| n.contains("callee")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn anti_dependence_blocks_interchange() {
        let src = "procedure p(a, n) {\n  for i = 2 to n do {\n    for j = 1 to n do {\n      a[i, j] = a[i + 1, j - 1] + 1;\n    }\n  }\n  return 0;\n}\n";
        let prog = pdc_lang::parse(src).expect("parses");
        let d = analyze_for(nest_of(&prog, "p"));
        assert!(d.exact, "{:?}", d.notes);
        let dep = d
            .deps
            .iter()
            .find(|x| x.kind == DepKind::Anti)
            .expect("anti dep");
        assert_eq!(dep.distance, vec![Some(1), Some(-1)]);
        assert_eq!(dep.direction_string(), "(<,>)");
        let blocked = d.interchange_legal(0, 1);
        assert_eq!(blocked.unwrap_err().kind, DepKind::Anti);
    }
}
