//! Exact loop-dependence analysis for counted-loop nests.
//!
//! The optimization passes in `pdc-opt` (vectorize, jam, strip-mine,
//! interchange) and the decomposition tuner must decide whether a
//! transformation *reorders two accesses to the same I-structure
//! element*. This crate answers that question with the classical affine
//! machinery — per-array-pair **distance/direction vectors** computed by
//! ZIV/SIV subscripts tests, the GCD test, and Banerjee-style bound
//! checks over the nest's iteration space — and classifies every
//! dependence as flow, anti, or output, and as loop-carried (with its
//! carrying level) or loop-independent.
//!
//! Soundness is *relative to exactness*, mirroring `pdc_report::cost`:
//! when a subscript falls outside the affine theory (indirect
//! subscripts like `A[B[i]]`, `div`/`mod` arithmetic at the source
//! level, symbolic coefficients), the access is kept as an *opaque*
//! access, every pair it forms is reported as a dependence with
//! [`Direction::Any`] in every position, and the analysis degrades
//! honestly: [`DependenceInfo::exact`] turns false with a reason in
//! `notes`. Consumers must treat `Any` directions and inexact results
//! as blocking; they may only apply a transformation the framework
//! proves legal.
//!
//! Two front-ends share this core: [`ast`] analyzes `pdc-lang` source
//! nests (purely affine subscripts only — the honest source-level
//! contract), and [`spmd`] analyzes generated SPMD code, where the
//! compiler's own placement arithmetic (`div`/`mod` of constants) is
//! normalized through [`canon`] and compared structurally.

pub mod ast;
pub mod canon;
pub mod spmd;

use canon::Canon;
use pdc_lang::span::Span;
use std::fmt;

/// What a dependence means for the two accesses involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Write then read: the sink consumes the source's value.
    Flow,
    /// Read then write: the sink overwrites what the source read.
    Anti,
    /// Write then write to the same element.
    Output,
}

impl DepKind {
    /// Stable lower-case identifier used in JSON and remark details.
    pub fn slug(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Direction of a dependence at one loop level: the relation between
/// the source and sink iteration numbers of that loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Source iteration strictly before the sink's (`<`).
    Lt,
    /// Same iteration (`=`).
    Eq,
    /// Source iteration strictly after the sink's (`>`).
    Gt,
    /// Unknown — any relation is possible (`*`). Consumers must treat
    /// this as blocking; it subsumes the reversed dependence of the
    /// complementary kind.
    Any,
}

impl Direction {
    /// The conventional one-character symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Any => "*",
        }
    }
}

/// One dependence between two accesses of the same array, over the
/// loops common to both accesses (outermost first).
#[derive(Debug, Clone, PartialEq)]
pub struct Dependence {
    /// Array both endpoints touch.
    pub array: String,
    /// Flow, anti, or output.
    pub kind: DepKind,
    /// Index of the source access in [`DependenceInfo::accesses`].
    pub src: usize,
    /// Index of the sink access in [`DependenceInfo::accesses`].
    pub dst: usize,
    /// Per-level iteration distance (sink minus source), `None` where
    /// the distance is not a single constant.
    pub distance: Vec<Option<i64>>,
    /// Per-level direction; always lexicographically non-negative
    /// (leading components are never `>`).
    pub direction: Vec<Direction>,
    /// Carrying level (1-based, outermost = 1); `None` for a
    /// loop-independent dependence.
    pub level: Option<usize>,
}

impl Dependence {
    /// Is the dependence carried by some loop (as opposed to staying
    /// within one iteration of the whole nest)?
    pub fn is_loop_carried(&self) -> bool {
        self.level.is_some()
    }

    /// `(<,=)`-style rendering of the direction vector.
    pub fn direction_string(&self) -> String {
        let parts: Vec<&str> = self.direction.iter().map(|d| d.symbol()).collect();
        format!("({})", parts.join(","))
    }

    /// `(1,0)`-style rendering of the distance vector; `*` marks a
    /// component that is not a single constant.
    pub fn distance_string(&self) -> String {
        let parts: Vec<String> = self
            .distance
            .iter()
            .map(|d| d.map_or_else(|| "*".to_string(), |v| v.to_string()))
            .collect();
        format!("({})", parts.join(","))
    }

    /// One-line human-readable summary, stable across runs.
    pub fn describe(&self) -> String {
        match self.level {
            Some(l) => format!(
                "{} on `{}` direction {} distance {} carried at level {l}",
                self.kind,
                self.array,
                self.direction_string(),
                self.distance_string()
            ),
            None => format!("{} on `{}` loop-independent", self.kind, self.array),
        }
    }

    /// Is every direction component known exactly (no `*`)?
    pub fn is_precise(&self) -> bool {
        !self.direction.contains(&Direction::Any)
    }
}

/// One array access inside a nest, as seen by a front-end.
#[derive(Debug, Clone)]
pub struct Access {
    /// Array name.
    pub array: String,
    /// Writes define an element; reads consume one.
    pub is_write: bool,
    /// Whether the access uses global (pre-placement) or local
    /// (post-placement) indices; accesses in different index spaces
    /// never pair.
    pub global: bool,
    /// Canonicalized subscripts, one per dimension; `None` when some
    /// subscript falls outside the supported theory (see `reason`).
    pub subs: Option<Vec<Canon>>,
    /// Why the access is opaque, when `subs` is `None`.
    pub reason: Option<String>,
    /// Ids (indices into [`DependenceInfo::loops`]) of the loops
    /// enclosing the access, outermost first.
    pub loops: Vec<usize>,
    /// Statement counter used to order accesses within one iteration;
    /// reads of a statement share the writing statement's position.
    pub pos: usize,
    /// Source span of the owning statement, when the front-end has one.
    pub span: Option<Span>,
}

/// One loop of the analyzed nest.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop variable name.
    pub var: String,
    /// Constant inclusive lower bound, when known.
    pub lo: Option<i64>,
    /// Constant inclusive upper bound, when known.
    pub hi: Option<i64>,
    /// Constant step, when known (`Some(1)` for the default).
    pub step: Option<i64>,
}

/// The result of analyzing one loop nest.
#[derive(Debug, Clone, Default)]
pub struct DependenceInfo {
    /// Loops of the nest in the order they were entered (a tree of
    /// loops is flattened; each access records its own loop stack).
    pub loops: Vec<LoopInfo>,
    /// Every array access found in the nest.
    pub accesses: Vec<Access>,
    /// All dependences, deterministic order (by access-pair index).
    pub deps: Vec<Dependence>,
    /// True when every access was affine and every subscript equation
    /// was solved within the theory; `verified`-grade answers require
    /// it. Inexact results still *over-approximate* (they never drop a
    /// dependence), so "no dependence" conclusions remain sound.
    pub exact: bool,
    /// Why exactness was lost (empty when `exact`).
    pub notes: Vec<String>,
}

impl DependenceInfo {
    /// Dependences touching `array`.
    pub fn deps_on<'a>(&'a self, array: &'a str) -> impl Iterator<Item = &'a Dependence> {
        self.deps.iter().filter(move |d| d.array == array)
    }

    /// Loop-carried dependences.
    pub fn loop_carried(&self) -> impl Iterator<Item = &Dependence> {
        self.deps.iter().filter(|d| d.is_loop_carried())
    }

    /// The first dependence blocking treatment of `array` as
    /// dependence-free, if any — either a real dependence on it or an
    /// opaque access that could alias one.
    pub fn blocking(&self, array: &str) -> Option<&Dependence> {
        self.deps.iter().find(|d| d.array == array)
    }

    /// Is interchanging the loops at (0-based) nest levels `a` and `b`
    /// legal for every dependence? Illegal iff some dependence's
    /// direction vector becomes lexicographically negative (or cannot
    /// be proven non-negative) after the swap.
    ///
    /// # Errors
    ///
    /// The first dependence that blocks the interchange.
    pub fn interchange_legal(&self, a: usize, b: usize) -> Result<(), &Dependence> {
        for dep in &self.deps {
            let get = |lvl: usize| -> Direction {
                // A vector too short to cover the swapped levels means
                // the pair is not enclosed by both loops; treat the
                // missing level as unknown.
                let swapped = if lvl == a {
                    b
                } else if lvl == b {
                    a
                } else {
                    lvl
                };
                dep.direction
                    .get(swapped)
                    .copied()
                    .unwrap_or(Direction::Any)
            };
            let len = dep.direction.len().max(a + 1).max(b + 1);
            let mut legal = true;
            for lvl in 0..len {
                match get(lvl) {
                    Direction::Lt => break,
                    Direction::Eq => continue,
                    Direction::Gt | Direction::Any => {
                        legal = false;
                        break;
                    }
                }
            }
            if !legal {
                return Err(dep);
            }
        }
        Ok(())
    }

    /// Dependences carried at (1-based) `level` on `array`.
    pub fn carried_on<'a>(
        &'a self,
        array: &'a str,
        level: usize,
    ) -> impl Iterator<Item = &'a Dependence> {
        self.deps_on(array).filter(move |d| d.level == Some(level))
    }

    fn note(&mut self, msg: String) {
        self.exact = false;
        if self.notes.len() < 32 && !self.notes.contains(&msg) {
            self.notes.push(msg);
        }
    }

    /// Run the subscript tests over every access pair and fill
    /// [`DependenceInfo::deps`]. Front-ends call this once after
    /// collecting loops and accesses.
    pub fn solve(&mut self) {
        for n in self
            .accesses
            .iter()
            .filter_map(|a| a.reason.clone())
            .collect::<Vec<_>>()
        {
            self.note(n);
        }
        let mut deps = Vec::new();
        let mut pair_notes = Vec::new();
        for i in 0..self.accesses.len() {
            for j in i..self.accesses.len() {
                let (a, b) = (&self.accesses[i], &self.accesses[j]);
                if a.array != b.array || a.global != b.global {
                    continue;
                }
                if !a.is_write && !b.is_write {
                    continue;
                }
                if let Some(dep) = test_pair(&self.loops, a, b, i, j, &mut pair_notes) {
                    deps.push(dep);
                }
            }
        }
        self.deps = deps;
        for n in pair_notes {
            self.note(n);
        }
    }
}

/// Per-level constraint on `δ = sink iteration − source iteration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Constraint {
    /// Unpinned: any value satisfies what we know.
    Free,
    /// Exactly this many iterations apart (iteration space, not value
    /// space).
    Exact(i64),
}

/// Outcome of testing one subscript dimension.
enum DimResult {
    /// The dimension's equation has no solution: the pair is
    /// independent.
    Independent,
    /// No information (trivially satisfiable or outside the theory
    /// without involving common loops).
    NoInfo,
    /// Per-level constraints to merge.
    Constrain(Vec<(usize, Constraint)>),
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Longest common prefix of two loop stacks.
fn common_prefix(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Is the common loop at prefix position `l` shadowed by a deeper loop
/// of the same variable name within `stack`?
fn shadowed(loops: &[LoopInfo], stack: &[usize], l: usize) -> bool {
    let name = &loops[stack[l]].var;
    stack[l + 1..].iter().any(|&id| loops[id].var == *name)
}

/// Substitute every unshadowed common-loop variable with 0, leaving
/// symbols and deeper-loop variables.
fn residual(
    loops: &[LoopInfo],
    stack: &[usize],
    common: usize,
    aff: &pdc_mapping::Affine,
) -> pdc_mapping::Affine {
    let mut out = aff.clone();
    for l in 0..common {
        if !shadowed(loops, stack, l) {
            out = out.substitute(&loops[stack[l]].var, &pdc_mapping::Affine::constant(0));
        }
    }
    out
}

/// Does `aff` mention a variable bound by a loop deeper than the
/// common prefix (including shadowed common names)?
fn mentions_deeper(
    loops: &[LoopInfo],
    stack: &[usize],
    common: usize,
    aff: &pdc_mapping::Affine,
) -> bool {
    aff.vars().any(|v| {
        stack[common..].iter().any(|&id| loops[id].var == v)
            || (0..common).any(|l| shadowed(loops, stack, l) && loops[stack[l]].var == v)
    })
}

/// Interval of `c * x` for `x ∈ [lo, hi]`.
fn term_range(c: i64, lo: i64, hi: i64) -> (i64, i64) {
    let (a, b) = (c.saturating_mul(lo), c.saturating_mul(hi));
    (a.min(b), a.max(b))
}

/// Test one all-affine dimension: `fa(x) = fb(y)` over the common
/// loops, where `x` is the source iteration vector and `y` the sink's.
#[allow(clippy::too_many_arguments)]
fn test_affine_dim(
    loops: &[LoopInfo],
    sa: &[usize],
    sb: &[usize],
    common: usize,
    fa: &pdc_mapping::Affine,
    fb: &pdc_mapping::Affine,
    notes: &mut Vec<String>,
) -> DimResult {
    if mentions_deeper(loops, sa, common, fa) || mentions_deeper(loops, sb, common, fb) {
        // A deeper loop variable is existentially quantified; we
        // cannot pin anything, but we also cannot prove independence.
        let involved: Vec<(usize, Constraint)> = (0..common)
            .filter(|&l| {
                let v = &loops[sa[l]].var;
                fa.coeff(v) != 0 || fb.coeff(v) != 0
            })
            .map(|l| (l, Constraint::Free))
            .collect();
        return if involved.is_empty() {
            DimResult::NoInfo
        } else {
            DimResult::Constrain(involved)
        };
    }

    // Effective per-level coefficients (0 where shadowed — but the
    // shadowed case was already routed to `mentions_deeper` above).
    let ca: Vec<i64> = (0..common).map(|l| fa.coeff(&loops[sa[l]].var)).collect();
    let cb: Vec<i64> = (0..common).map(|l| fb.coeff(&loops[sb[l]].var)).collect();
    let diff = residual(loops, sa, common, fa).sub(&residual(loops, sb, common, fb));
    let involved: Vec<usize> = (0..common).filter(|&l| ca[l] != 0 || cb[l] != 0).collect();

    let Some(d0) = diff.as_constant() else {
        // The subscript difference depends on a symbol (e.g. `n`); we
        // cannot decide equality, so the involved levels stay free.
        // Front-ends substitute the static environment first, so this
        // only fires for genuinely unknown symbols.
        let sym = diff.vars().next().unwrap_or("?").to_string();
        notes.push(format!("subscript difference depends on symbol `{sym}`"));
        return if involved.is_empty() {
            // Constant-vs-symbol in a dimension without loop vars:
            // cannot prove the elements distinct.
            DimResult::NoInfo
        } else {
            DimResult::Constrain(
                involved
                    .into_iter()
                    .map(|l| (l, Constraint::Free))
                    .collect(),
            )
        };
    };

    if involved.is_empty() {
        // ZIV: both subscripts are (symbolically identical) constants.
        return if d0 == 0 {
            DimResult::NoInfo
        } else {
            DimResult::Independent
        };
    }

    let bounds = |l: usize| -> Option<(i64, i64)> {
        let info = &loops[sa[l]];
        match (info.lo, info.hi) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    };
    let step = |l: usize| loops[sa[l]].step;

    if involved.iter().all(|&l| ca[l] == cb[l]) {
        // Equation reduces to Σ c_l · δ_l = d0 with δ = y − x.
        if involved.len() == 1 {
            // Strong SIV: δ is a single constant in value space.
            let l = involved[0];
            let c = ca[l];
            if d0 % c != 0 {
                return DimResult::Independent;
            }
            let dv = d0 / c;
            return match step(l) {
                Some(s) if s != 0 => {
                    if dv % s != 0 {
                        // The two iterations are never both visited.
                        DimResult::Independent
                    } else {
                        let it = dv / s;
                        if let Some((lo, hi)) = bounds(l) {
                            let span = ((hi - lo) / s.abs()).max(0);
                            if it.abs() > span {
                                return DimResult::Independent;
                            }
                        }
                        DimResult::Constrain(vec![(l, Constraint::Exact(it))])
                    }
                }
                _ => {
                    notes.push(format!(
                        "loop `{}` has a non-constant step; distance not pinned",
                        loops[sa[l]].var
                    ));
                    DimResult::Constrain(vec![(l, Constraint::Free)])
                }
            };
        }
        // MIV with matching coefficients: GCD then a Banerjee-style
        // bound over the δ ranges.
        let g = involved.iter().fold(0, |g, &l| gcd(g, ca[l]));
        if g != 0 && d0 % g != 0 {
            return DimResult::Independent;
        }
        if involved.iter().all(|&l| bounds(l).is_some()) {
            let (mut lo_sum, mut hi_sum) = (0i64, 0i64);
            for &l in &involved {
                let (lo, hi) = bounds(l).expect("checked above");
                let span = (hi - lo).max(0);
                let (tl, th) = term_range(ca[l], -span, span);
                lo_sum = lo_sum.saturating_add(tl);
                hi_sum = hi_sum.saturating_add(th);
            }
            if d0 < lo_sum || d0 > hi_sum {
                return DimResult::Independent;
            }
        }
        return DimResult::Constrain(
            involved
                .into_iter()
                .map(|l| (l, Constraint::Free))
                .collect(),
        );
    }

    // Coefficients differ somewhere: Σ ca_l·x_l − Σ cb_l·y_l + d0 = 0.
    let g = involved.iter().fold(0, |g, &l| gcd(gcd(g, ca[l]), cb[l]));
    if g != 0 && d0 % g != 0 {
        return DimResult::Independent;
    }
    if involved.len() == 1 {
        let l = involved[0];
        let (a, b) = (ca[l], cb[l]);
        if b == 0 || a == 0 {
            // Weak-zero SIV: one side's iteration is pinned to a
            // constant; check it lies inside the loop at all.
            let c = if b == 0 { a } else { b };
            // a·x + d0 = 0  (resp. −b·y + d0 = 0)
            let num = if b == 0 { -d0 } else { d0 };
            if num % c != 0 {
                return DimResult::Independent;
            }
            let fixed = num / c;
            if let Some((lo, hi)) = bounds(l) {
                if fixed < lo.min(hi) || fixed > hi.max(lo) {
                    return DimResult::Independent;
                }
            }
            return DimResult::Constrain(vec![(l, Constraint::Free)]);
        }
        if a == -b {
            // Weak-crossing SIV: x + y pinned; δ unconstrained.
            if d0 % a != 0 {
                return DimResult::Independent;
            }
            return DimResult::Constrain(vec![(l, Constraint::Free)]);
        }
    }
    // General Banerjee bound when every involved loop has constant
    // bounds.
    if involved.iter().all(|&l| bounds(l).is_some()) {
        let (mut lo_sum, mut hi_sum) = (d0, d0);
        for &l in &involved {
            let (lo, hi) = bounds(l).expect("checked above");
            let (tl, th) = term_range(ca[l], lo, hi);
            let (ul, uh) = term_range(-cb[l], lo, hi);
            lo_sum = lo_sum.saturating_add(tl).saturating_add(ul);
            hi_sum = hi_sum.saturating_add(th).saturating_add(uh);
        }
        if 0 < lo_sum || 0 > hi_sum {
            return DimResult::Independent;
        }
    }
    DimResult::Constrain(
        involved
            .into_iter()
            .map(|l| (l, Constraint::Free))
            .collect(),
    )
}

/// Test one dimension whose canonical forms are not both affine
/// (placement arithmetic like `(j−1) div 4`). Structural equality means
/// the subscripts are identical functions of the iteration vector; any
/// other shape yields no information for the common loops it mentions.
fn test_canon_dim(
    loops: &[LoopInfo],
    sa: &[usize],
    sb: &[usize],
    common: usize,
    a: &Canon,
    b: &Canon,
) -> DimResult {
    fn canon_vars<'c>(c: &'c Canon, out: &mut Vec<&'c str>) {
        match c {
            Canon::Aff(aff) => out.extend(aff.vars()),
            Canon::Div(inner, _) | Canon::Mod(inner, _) | Canon::Scale(_, inner) => {
                canon_vars(inner, out)
            }
            Canon::Add(x, y) => {
                canon_vars(x, out);
                canon_vars(y, out);
            }
        }
    }
    let mut vars = Vec::new();
    canon_vars(a, &mut vars);
    canon_vars(b, &mut vars);
    let involved: Vec<(usize, Constraint)> = (0..common)
        .filter(|&l| {
            !shadowed(loops, sa, l)
                && !shadowed(loops, sb, l)
                && vars.contains(&loops[sa[l]].var.as_str())
        })
        .map(|l| (l, Constraint::Free))
        .collect();
    if involved.is_empty() {
        // Loop-invariant on both sides; equal forms touch the same
        // element, different forms cannot be proven distinct.
        return DimResult::NoInfo;
    }
    if a == b {
        // Identical functions of the iteration vector: the dimension
        // is satisfied exactly when the mentioned loops agree.
        return DimResult::Constrain(
            involved
                .into_iter()
                .map(|(l, _)| (l, Constraint::Exact(0)))
                .collect(),
        );
    }
    // Try a constant shift: b[v := v+d] == a pins δ_v = d — but only
    // when the form is injective in v, which `div`/`mod` forms are
    // not; stay conservative and leave the levels free.
    DimResult::Constrain(involved)
}

/// Run the subscript tests for one pair of accesses; `None` means
/// proven independent (or the identical-instance case).
fn test_pair(
    loops: &[LoopInfo],
    a: &Access,
    b: &Access,
    ia: usize,
    ib: usize,
    out_notes: &mut Vec<String>,
) -> Option<Dependence> {
    let common = common_prefix(&a.loops, &b.loops);
    let mut constraints = vec![Constraint::Free; common];
    let mut notes = Vec::new();

    match (&a.subs, &b.subs) {
        (Some(sa), Some(sb)) => {
            if sa.len() != sb.len() {
                // Mixed-rank access to one array: outside the theory.
                return Some(opaque_dep(a, b, ia, ib, common));
            }
            for (da, db) in sa.iter().zip(sb.iter()) {
                let r = match (da, db) {
                    (Canon::Aff(fa), Canon::Aff(fb)) => {
                        test_affine_dim(loops, &a.loops, &b.loops, common, fa, fb, &mut notes)
                    }
                    _ => test_canon_dim(loops, &a.loops, &b.loops, common, da, db),
                };
                match r {
                    DimResult::Independent => return None,
                    DimResult::NoInfo => {}
                    DimResult::Constrain(cs) => {
                        for (l, c) in cs {
                            match (constraints[l], c) {
                                (Constraint::Exact(x), Constraint::Exact(y)) if x != y => {
                                    // Two dimensions demand different
                                    // distances: unsatisfiable.
                                    return None;
                                }
                                (Constraint::Free, Constraint::Exact(_)) => {
                                    constraints[l] = c;
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        _ => return Some(opaque_dep(a, b, ia, ib, common)),
    }

    // Identical instance (same access, all-zero distance) is not a
    // dependence.
    let all_zero = constraints
        .iter()
        .all(|c| matches!(c, Constraint::Exact(0)));
    if ia == ib && all_zero {
        return None;
    }
    // The pair yields a dependence; only now do any solver caveats
    // (symbolic differences, unknown steps) matter for exactness.
    out_notes.append(&mut notes);
    if ia == ib {
        return Some(classify_self(a, ia, &constraints, common));
    }
    Some(classify_pair(a, b, ia, ib, &constraints, all_zero))
}

/// A fully unknown dependence for a pair involving an opaque access.
fn opaque_dep(a: &Access, b: &Access, ia: usize, ib: usize, common: usize) -> Dependence {
    let kind = match (a.is_write, b.is_write) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        _ => DepKind::Anti,
    };
    Dependence {
        array: a.array.clone(),
        kind,
        src: ia,
        dst: ib,
        distance: vec![None; common],
        direction: vec![Direction::Any; common],
        level: (common > 0).then_some(1),
    }
}

/// Classify a write access against itself: the solution set is
/// symmetric under negation, so the leading unknown level can be
/// canonicalized to `<` only when everything after it is pinned to 0.
fn classify_self(a: &Access, ia: usize, constraints: &[Constraint], common: usize) -> Dependence {
    let mut direction = vec![Direction::Eq; common];
    let mut distance: Vec<Option<i64>> = vec![Some(0); common];
    let mut level = None;
    for l in 0..common {
        match constraints[l] {
            Constraint::Exact(0) => continue,
            Constraint::Exact(d) => {
                // Symmetric: take the positive orientation.
                let d = d.abs();
                direction[l] = Direction::Lt;
                distance[l] = Some(d);
                level = Some(l + 1);
                for m in l + 1..common {
                    match constraints[m] {
                        Constraint::Exact(e) => {
                            direction[m] = match e.cmp(&0) {
                                std::cmp::Ordering::Less => Direction::Gt,
                                std::cmp::Ordering::Equal => Direction::Eq,
                                std::cmp::Ordering::Greater => Direction::Lt,
                            };
                            distance[m] = Some(e);
                        }
                        Constraint::Free => {
                            direction[m] = Direction::Any;
                            distance[m] = None;
                        }
                    }
                }
                break;
            }
            Constraint::Free => {
                let rest_zero = constraints[l + 1..]
                    .iter()
                    .all(|c| matches!(c, Constraint::Exact(0)));
                direction[l] = if rest_zero {
                    Direction::Lt
                } else {
                    Direction::Any
                };
                distance[l] = None;
                level = Some(l + 1);
                for m in l + 1..common {
                    match constraints[m] {
                        Constraint::Exact(0) => {}
                        Constraint::Exact(e) => {
                            direction[m] = Direction::Any;
                            distance[m] = Some(e);
                        }
                        Constraint::Free => {
                            direction[m] = Direction::Any;
                            distance[m] = None;
                        }
                    }
                }
                break;
            }
        }
    }
    Dependence {
        array: a.array.clone(),
        kind: DepKind::Output,
        src: ia,
        dst: ia,
        distance,
        direction,
        level,
    }
}

/// Classify a cross pair from its per-level constraints. `a` is the
/// access collected first (its reads precede its writes in one
/// statement).
fn classify_pair(
    a: &Access,
    b: &Access,
    ia: usize,
    ib: usize,
    constraints: &[Constraint],
    all_zero: bool,
) -> Dependence {
    let common = constraints.len();
    let kind_for = |src_w: bool, dst_w: bool| match (src_w, dst_w) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        _ => DepKind::Anti,
    };

    if all_zero {
        // Loop-independent: execution order within the iteration
        // decides source and sink. Reads of a statement execute before
        // its write, so at equal positions the read is the source.
        let a_first = match a.pos.cmp(&b.pos) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => !a.is_write,
        };
        let (src, dst, sw, dw) = if a_first {
            (ia, ib, a.is_write, b.is_write)
        } else {
            (ib, ia, b.is_write, a.is_write)
        };
        return Dependence {
            array: a.array.clone(),
            kind: kind_for(sw, dw),
            src,
            dst,
            distance: vec![Some(0); common],
            direction: vec![Direction::Eq; common],
            level: None,
        };
    }

    // Determine the lexicographic sign of δ = (b's iteration − a's).
    let mut sign = 0i64; // 0 = zero so far, 2 = unknown
    let mut deciding = common;
    for (l, c) in constraints.iter().enumerate() {
        match c {
            Constraint::Exact(0) => continue,
            Constraint::Exact(d) => {
                sign = d.signum();
                deciding = l;
                break;
            }
            Constraint::Free => {
                sign = 2;
                deciding = l;
                break;
            }
        }
    }

    let (flip, unknown) = match sign {
        1 => (false, false),
        -1 => (true, false),
        _ => (false, true),
    };
    let (src, dst, sw, dw) = if flip {
        (ib, ia, b.is_write, a.is_write)
    } else {
        (ia, ib, a.is_write, b.is_write)
    };
    let mut direction = vec![Direction::Eq; common];
    let mut distance: Vec<Option<i64>> = vec![Some(0); common];
    for (l, c) in constraints.iter().enumerate() {
        let d = match c {
            Constraint::Exact(d) => {
                if flip {
                    Some(-d)
                } else {
                    Some(*d)
                }
            }
            Constraint::Free => None,
        };
        if l < deciding {
            continue; // Exact(0): already =/0
        }
        if unknown {
            // Sign undecided: every level from the deciding one on is
            // reported conservatively.
            direction[l] = match d {
                Some(0) => Direction::Eq,
                _ => Direction::Any,
            };
            distance[l] = d;
            continue;
        }
        match d {
            Some(v) => {
                direction[l] = match v.cmp(&0) {
                    std::cmp::Ordering::Less => Direction::Gt,
                    std::cmp::Ordering::Equal => Direction::Eq,
                    std::cmp::Ordering::Greater => Direction::Lt,
                };
                distance[l] = Some(v);
            }
            None => {
                direction[l] = Direction::Any;
                distance[l] = None;
            }
        }
    }
    Dependence {
        array: a.array.clone(),
        kind: kind_for(sw, dw),
        src,
        dst,
        distance,
        direction,
        level: Some(deciding + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_mapping::Affine;

    fn aff(c: &Canon) -> Canon {
        c.clone()
    }

    fn sub(v: &str, off: i64) -> Canon {
        Canon::Aff(Affine::var(v).offset(off))
    }

    fn nest2() -> Vec<LoopInfo> {
        vec![
            LoopInfo {
                var: "i".into(),
                lo: Some(2),
                hi: Some(7),
                step: Some(1),
            },
            LoopInfo {
                var: "j".into(),
                lo: Some(2),
                hi: Some(7),
                step: Some(1),
            },
        ]
    }

    fn access(array: &str, is_write: bool, subs: Vec<Canon>, pos: usize) -> Access {
        Access {
            array: array.into(),
            is_write,
            global: true,
            subs: Some(subs),
            reason: None,
            loops: vec![0, 1],
            pos,
            span: None,
        }
    }

    fn info(loops: Vec<LoopInfo>, accesses: Vec<Access>) -> DependenceInfo {
        let mut d = DependenceInfo {
            loops,
            accesses,
            exact: true,
            ..DependenceInfo::default()
        };
        d.solve();
        d
    }

    #[test]
    fn wavefront_flow_dependences() {
        // New[i,j] = … New[i-1,j] … New[i,j-1] …  under an (i,j) nest.
        let d = info(
            nest2(),
            vec![
                access("New", false, vec![sub("i", -1), sub("j", 0)], 0),
                access("New", false, vec![sub("i", 0), sub("j", -1)], 0),
                access("New", true, vec![sub("i", 0), sub("j", 0)], 0),
            ],
        );
        assert!(d.exact, "{:?}", d.notes);
        assert_eq!(d.deps.len(), 2);
        let row = d.deps.iter().find(|x| x.distance == [Some(1), Some(0)]);
        let col = d.deps.iter().find(|x| x.distance == [Some(0), Some(1)]);
        let row = row.expect("row-carried dep");
        let col = col.expect("column-carried dep");
        assert_eq!(row.kind, DepKind::Flow);
        assert_eq!(row.direction_string(), "(<,=)");
        assert_eq!(row.level, Some(1));
        assert_eq!(col.direction_string(), "(=,<)");
        assert_eq!(col.level, Some(2));
    }

    #[test]
    fn anti_dependence_is_normalized() {
        // a[i,j] = … a[i+1,j-1] …: the read at (i,j) touches the
        // element written at (i+1,j-1), which executes later — an anti
        // dependence with distance (1,-1), direction (<,>).
        let d = info(
            nest2(),
            vec![
                access("a", false, vec![sub("i", 1), sub("j", -1)], 0),
                access("a", true, vec![sub("i", 0), sub("j", 0)], 0),
            ],
        );
        assert_eq!(d.deps.len(), 1);
        let dep = &d.deps[0];
        assert_eq!(dep.kind, DepKind::Anti);
        assert_eq!(dep.distance, vec![Some(1), Some(-1)]);
        assert_eq!(dep.direction_string(), "(<,>)");
        // Interchanging the two loops is illegal.
        assert!(d.interchange_legal(0, 1).is_err());
    }

    #[test]
    fn wavefront_interchange_is_legal() {
        let d = info(
            nest2(),
            vec![
                access("New", false, vec![sub("i", -1), sub("j", 0)], 0),
                access("New", true, vec![sub("i", 0), sub("j", 0)], 0),
            ],
        );
        assert!(d.interchange_legal(0, 1).is_ok());
    }

    #[test]
    fn distinct_constant_columns_are_independent() {
        let w = Access {
            loops: vec![0],
            ..access(
                "a",
                true,
                vec![sub("i", 0), Canon::Aff(Affine::constant(1))],
                0,
            )
        };
        let r = Access {
            loops: vec![0],
            ..access(
                "a",
                false,
                vec![sub("i", 0), Canon::Aff(Affine::constant(2))],
                1,
            )
        };
        let d = info(nest2(), vec![w, r]);
        assert!(d.deps.is_empty(), "{:?}", d.deps);
    }

    #[test]
    fn loop_independent_dependence_orders_by_statement() {
        // a[i,j] written at pos 0, read at pos 1: loop-independent flow.
        let d = info(
            nest2(),
            vec![
                access("a", true, vec![sub("i", 0), sub("j", 0)], 0),
                access("a", false, vec![sub("i", 0), sub("j", 0)], 1),
            ],
        );
        assert_eq!(d.deps.len(), 1);
        let dep = &d.deps[0];
        assert_eq!(dep.kind, DepKind::Flow);
        assert_eq!(dep.level, None);
        assert!(!dep.is_loop_carried());
        assert_eq!(dep.direction_string(), "(=,=)");
    }

    #[test]
    fn same_statement_read_is_anti_source() {
        // a[i,j] = a[i,j] + 1 would double-write an I-structure, but
        // the dependence algebra still classifies it: read before
        // write in one instance is a loop-independent anti dep.
        let d = info(
            nest2(),
            vec![
                access("a", false, vec![sub("i", 0), sub("j", 0)], 0),
                access("a", true, vec![sub("i", 0), sub("j", 0)], 0),
            ],
        );
        assert_eq!(d.deps.len(), 1);
        assert_eq!(d.deps[0].kind, DepKind::Anti);
        assert_eq!(d.deps[0].level, None);
    }

    #[test]
    fn constant_subscript_self_output_dep() {
        // a[5] written every (i,j) iteration: output dependence on
        // itself, carried at the outermost level.
        let d = info(
            nest2(),
            vec![access("a", true, vec![Canon::Aff(Affine::constant(5))], 0)],
        );
        assert_eq!(d.deps.len(), 1);
        let dep = &d.deps[0];
        assert_eq!(dep.kind, DepKind::Output);
        assert_eq!(dep.level, Some(1));
        assert_eq!(dep.direction[0], Direction::Any);
    }

    #[test]
    fn row_only_self_write_is_carried_by_inner_loop() {
        // a[i] written under (i,j): same element at equal i, any j.
        let d = info(nest2(), vec![access("a", true, vec![sub("i", 0)], 0)]);
        assert_eq!(d.deps.len(), 1);
        let dep = &d.deps[0];
        assert_eq!(dep.direction_string(), "(=,<)");
        assert_eq!(dep.level, Some(2));
    }

    #[test]
    fn gcd_test_proves_independence() {
        // a[2i] vs a[2i+1]: even vs odd elements never meet.
        let w = Access {
            loops: vec![0],
            ..access("a", true, vec![Canon::Aff(Affine::var("i").scale(2))], 0)
        };
        let r = Access {
            loops: vec![0],
            ..access(
                "a",
                false,
                vec![Canon::Aff(Affine::var("i").scale(2).offset(1))],
                1,
            )
        };
        let d = info(nest2(), vec![w, r]);
        assert!(d.deps.is_empty(), "{:?}", d.deps);
    }

    #[test]
    fn banerjee_bounds_prove_independence() {
        // a[i] vs a[i+100] with i ∈ [2,7]: distance 100 exceeds the
        // iteration span.
        let w = Access {
            loops: vec![0],
            ..access("a", true, vec![sub("i", 0)], 0)
        };
        let r = Access {
            loops: vec![0],
            ..access("a", false, vec![sub("i", 100)], 1)
        };
        let d = info(nest2(), vec![w, r]);
        assert!(d.deps.is_empty(), "{:?}", d.deps);
    }

    #[test]
    fn opaque_access_degrades_honestly() {
        let mut acc = access("a", true, vec![], 0);
        acc.subs = None;
        acc.reason = Some("indirect subscript `b[i]` in `a`".into());
        let d = info(
            nest2(),
            vec![acc, access("a", false, vec![sub("i", 0), sub("j", 0)], 1)],
        );
        assert!(!d.exact);
        assert!(d.notes.iter().any(|n| n.contains("indirect")));
        assert_eq!(d.deps.len(), 2, "{:?}", d.deps); // self + pair
        assert!(d
            .deps
            .iter()
            .all(|dep| dep.direction.iter().all(|x| *x == Direction::Any)));
        assert!(d.interchange_legal(0, 1).is_err());
    }

    #[test]
    fn symbolic_difference_stays_conservative() {
        // a[i] vs a[i+n]: without knowing n, keep a dependence with an
        // unknown direction but remain honest about why.
        let d = info(
            nest2(),
            vec![
                access("a", true, vec![sub("i", 0)], 0),
                access(
                    "a",
                    false,
                    vec![Canon::Aff(Affine::var("i").add(&Affine::var("n")))],
                    1,
                ),
            ],
        );
        assert!(!d.exact);
        assert_eq!(d.deps.len(), 2); // the pair plus a[i]'s (=,<) self dep
        let pair = d.deps.iter().find(|p| p.src != p.dst).unwrap();
        assert_eq!(pair.direction[0], Direction::Any);
    }

    #[test]
    fn strided_loops_divide_distances() {
        // Under `for j = 0 by 4`, a write of a[j] and a read of a[j-8]
        // are two *iterations* apart; a read of a[j-2] never aligns.
        let loops = vec![LoopInfo {
            var: "j".into(),
            lo: Some(0),
            hi: Some(40),
            step: Some(4),
        }];
        let w = Access {
            loops: vec![0],
            ..access("a", true, vec![sub("j", 0)], 0)
        };
        let r8 = Access {
            loops: vec![0],
            ..access("a", false, vec![sub("j", -8)], 1)
        };
        let r2 = Access {
            loops: vec![0],
            ..access("a", false, vec![sub("j", -2)], 2)
        };
        let d = info(loops, vec![w, r8, r2]);
        assert_eq!(d.deps.len(), 1, "{:?}", d.deps);
        assert_eq!(d.deps[0].distance, vec![Some(2)]);
        assert_eq!(d.deps[0].kind, DepKind::Flow);
    }

    #[test]
    fn matching_div_forms_pin_mentioned_loops() {
        // is_write(New, [i, 1+(j-1) div 4]) vs is_read(New, [i-1,
        // 1+(j-1) div 4]): the second dimension is the same function of
        // j on both sides, so the row dimension decides: flow (<,=).
        let col = Canon::Add(
            Box::new(Canon::Aff(Affine::constant(1))),
            Box::new(Canon::Div(
                Box::new(Canon::Aff(Affine::var("j").offset(-1))),
                4,
            )),
        );
        let d = info(
            nest2(),
            vec![
                access("New", true, vec![sub("i", 0), aff(&col)], 0),
                access("New", false, vec![sub("i", -1), aff(&col)], 0),
            ],
        );
        assert!(d.exact, "{:?}", d.notes);
        assert_eq!(d.deps.len(), 1);
        assert_eq!(d.deps[0].distance, vec![Some(1), Some(0)]);
        assert_eq!(d.deps[0].direction_string(), "(<,=)");
    }

    #[test]
    fn differing_div_forms_stay_conservative() {
        let ca = Canon::Div(Box::new(Canon::Aff(Affine::var("j").offset(-1))), 4);
        let cb = Canon::Div(Box::new(Canon::Aff(Affine::var("j").offset(-2))), 4);
        let d = info(
            nest2(),
            vec![
                access("a", true, vec![sub("i", 0), aff(&ca)], 0),
                access("a", false, vec![sub("i", 0), aff(&cb)], 1),
            ],
        );
        assert_eq!(d.deps.len(), 1);
        assert_eq!(d.deps[0].direction[1], Direction::Any);
    }

    #[test]
    fn interchange_legality_matrix() {
        let mk = |dirs: Vec<Direction>| Dependence {
            array: "a".into(),
            kind: DepKind::Flow,
            src: 0,
            dst: 1,
            distance: vec![None; dirs.len()],
            direction: dirs,
            level: Some(1),
        };
        let mut d = DependenceInfo {
            deps: vec![mk(vec![Direction::Lt, Direction::Gt])],
            ..DependenceInfo::default()
        };
        assert!(d.interchange_legal(0, 1).is_err());
        d.deps = vec![mk(vec![Direction::Lt, Direction::Eq])];
        assert!(d.interchange_legal(0, 1).is_ok());
        d.deps = vec![mk(vec![Direction::Eq, Direction::Lt])];
        assert!(d.interchange_legal(0, 1).is_ok());
        d.deps = vec![mk(vec![Direction::Lt, Direction::Any])];
        assert!(d.interchange_legal(0, 1).is_err());
        d.deps = vec![mk(vec![Direction::Eq, Direction::Eq])];
        assert!(d.interchange_legal(0, 1).is_ok());
    }
}
