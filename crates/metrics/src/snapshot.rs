//! Plain-data snapshots of a registry, with deterministic exports: a
//! Prometheus-style text exposition and a stable JSON document. Both
//! are byte-deterministic for a given snapshot (BTree ordering, no
//! floats), so goldens and self-validating benches can diff them.

use crate::flight::FlightEvent;
use crate::hist::HistSnapshot;
use crate::registry::{Ctr, N_CTRS};

/// Everything one processor recorded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcMetrics {
    /// Counter values indexed by [`Ctr`] discriminant.
    pub ctrs: Vec<u64>,
    /// Payload words per program-level frame.
    pub frame_words: HistSnapshot,
    /// Ring occupancy (words queued) sampled at each enqueue
    /// (threaded backend only; empty on the simulator).
    pub ring_occupancy: HistSnapshot,
    /// Outgoing channels as `(dst, tag, frames, words)`.
    pub out_channels: Vec<(u64, u64, u64, u64)>,
    /// Incoming channels as `(src, tag, frames, words)`.
    pub in_channels: Vec<(u64, u64, u64, u64)>,
    /// Frames whose per-channel split was lost to table overflow.
    pub channel_overflow: u64,
    /// The retained flight-recorder events, oldest first.
    pub flight: Vec<FlightEvent>,
    /// Total flight events ever recorded (≥ `flight.len()`).
    pub flight_recorded: u64,
}

impl ProcMetrics {
    /// Counter value by name.
    pub fn get(&self, c: Ctr) -> u64 {
        self.ctrs.get(c as usize).copied().unwrap_or(0)
    }
}

/// A point-in-time copy of a [`MetricsRegistry`](crate::MetricsRegistry).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Was the registry recording full metrics (vs flight-recorder
    /// only)?
    pub full: bool,
    /// Per-processor shards.
    pub procs: Vec<ProcMetrics>,
}

/// The backend-independent projection of a snapshot: logical counters,
/// the frame-size histogram, and the per-channel tables. Two runs of
/// the same program on the simulator and the threaded backend must
/// compare equal here (fault-free runs; physical metrics — parks,
/// stalls, retransmits, ring occupancy — are excluded by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalMetrics {
    /// One entry per processor.
    pub procs: Vec<LogicalProc>,
}

/// One processor's logical projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalProc {
    /// Logical `(counter name, value)` pairs in [`Ctr::ALL`] order.
    pub ctrs: Vec<(&'static str, u64)>,
    /// Payload words per program-level frame.
    pub frame_words: HistSnapshot,
    /// Outgoing channels as `(dst, tag, frames, words)`.
    pub out_channels: Vec<(u64, u64, u64, u64)>,
    /// Incoming channels as `(src, tag, frames, words)`.
    pub in_channels: Vec<(u64, u64, u64, u64)>,
}

/// Aggregated per-channel totals: `((src, dst, tag), (frames, words))`,
/// sorted by the triple.
pub type TripleTotals = Vec<((u64, u64, u64), (u64, u64))>;

impl MetricsSnapshot {
    /// Sum a counter over all processors.
    pub fn total(&self, c: Ctr) -> u64 {
        self.procs.iter().map(|p| p.get(c)).sum()
    }

    /// Aggregate per-channel outgoing traffic over all processors as
    /// `(src, dst, tag) → (frames, words)`, sorted.
    pub fn out_by_triple(&self) -> TripleTotals {
        let mut v: Vec<_> = self
            .procs
            .iter()
            .enumerate()
            .flat_map(|(src, p)| {
                p.out_channels
                    .iter()
                    .map(move |&(dst, tag, frames, words)| {
                        ((src as u64, dst, tag), (frames, words))
                    })
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// The backend-parity projection (see [`LogicalMetrics`]).
    pub fn logical(&self) -> LogicalMetrics {
        LogicalMetrics {
            procs: self
                .procs
                .iter()
                .map(|p| LogicalProc {
                    ctrs: Ctr::ALL
                        .into_iter()
                        .filter(|c| c.is_logical())
                        .map(|c| (c.name(), p.get(c)))
                        .collect(),
                    frame_words: p.frame_words.clone(),
                    out_channels: p.out_channels.clone(),
                    in_channels: p.in_channels.clone(),
                })
                .collect(),
        }
    }

    /// Prometheus-style text exposition: one `pdc_*` family per
    /// counter with a `proc` label, plus histogram families with
    /// cumulative `le` buckets. Deterministic byte-for-byte.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for c in Ctr::ALL {
            out.push_str(&format!("# TYPE pdc_{} counter\n", c.name()));
            for (p, pm) in self.procs.iter().enumerate() {
                out.push_str(&format!("pdc_{}{{proc=\"{p}\"}} {}\n", c.name(), pm.get(c)));
            }
        }
        for (family, pick) in [
            (
                "frame_words",
                (|pm: &ProcMetrics| &pm.frame_words) as fn(&ProcMetrics) -> &HistSnapshot,
            ),
            ("ring_occupancy", |pm: &ProcMetrics| &pm.ring_occupancy),
        ] {
            out.push_str(&format!("# TYPE pdc_{family} histogram\n"));
            for (p, pm) in self.procs.iter().enumerate() {
                let h = pick(pm);
                let mut cum = 0;
                for &(lo, n) in &h.buckets {
                    cum += n;
                    out.push_str(&format!(
                        "pdc_{family}_bucket{{proc=\"{p}\",le=\"{lo}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "pdc_{family}_bucket{{proc=\"{p}\",le=\"+Inf\"}} {}\n",
                    h.count
                ));
                out.push_str(&format!("pdc_{family}_sum{{proc=\"{p}\"}} {}\n", h.sum));
                out.push_str(&format!("pdc_{family}_count{{proc=\"{p}\"}} {}\n", h.count));
            }
        }
        out
    }

    /// Deterministic JSON document of the whole snapshot.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"full\":{},\"n_procs\":{},\"procs\":[",
            self.full,
            self.procs.len()
        ));
        for (p, pm) in self.procs.iter().enumerate() {
            if p > 0 {
                out.push(',');
            }
            out.push_str("{\"ctrs\":{");
            for (i, c) in Ctr::ALL.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", c.name(), pm.get(c)));
            }
            out.push_str("},");
            out.push_str(&format!(
                "\"frame_words\":{},\"ring_occupancy\":{},",
                hist_json(&pm.frame_words),
                hist_json(&pm.ring_occupancy)
            ));
            out.push_str(&format!(
                "\"out\":{},\"in\":{},\"channel_overflow\":{},",
                channels_json(&pm.out_channels),
                channels_json(&pm.in_channels),
                pm.channel_overflow
            ));
            out.push_str(&format!(
                "\"flight_recorded\":{},\"flight\":[",
                pm.flight_recorded
            ));
            for (i, ev) in pm.flight.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kind\":\"{}\",\"peer\":{},\"tag\":{},\"value\":{},\"time\":{}}}",
                    ev.kind.name(),
                    ev.peer.map_or("null".to_string(), |p| p.to_string()),
                    ev.tag,
                    ev.value,
                    ev.time
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn hist_json(h: &HistSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|&(lo, n)| format!("[{lo},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        buckets.join(",")
    )
}

fn channels_json(chans: &[(u64, u64, u64, u64)]) -> String {
    let items: Vec<String> = chans
        .iter()
        .map(|&(peer, tag, frames, words)| format!("[{peer},{tag},{frames},{words}]"))
        .collect();
    format!("[{}]", items.join(","))
}

/// Compile-time guard that `ctrs` vectors are sized right.
pub(crate) fn ctrs_vec() -> Vec<u64> {
    vec![0; N_CTRS]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_are_deterministic_and_wellformed() {
        let mut snap = MetricsSnapshot {
            full: true,
            procs: vec![ProcMetrics::default(), ProcMetrics::default()],
        };
        snap.procs[0].ctrs = ctrs_vec();
        snap.procs[0].ctrs[Ctr::FramesSent as usize] = 3;
        snap.procs[0].out_channels = vec![(1, 7, 3, 12)];
        let text = snap.prometheus_text();
        assert!(text.contains("pdc_frames_sent{proc=\"0\"} 3"));
        assert!(text.contains("# TYPE pdc_frame_words histogram"));
        let json = snap.metrics_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"frames_sent\":3"));
        assert_eq!(json, snap.metrics_json(), "export must be deterministic");
        assert_eq!(
            snap.out_by_triple(),
            vec![((0, 1, 7), (3, 12))],
            "triple aggregation"
        );
    }
}
