//! The flight recorder: a bounded per-processor ring of recent coarse
//! events (sends, receives, parks, stalls, protocol actions) that is
//! *always on*. One record is a cursor `fetch_add` plus three relaxed
//! stores — O(ns) — so even metrics-off runs carry enough history to
//! explain a deadlock or crash without a rerun under tracing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Events retained per processor (power of two).
pub const FLIGHT_SLOTS: usize = 64;

/// Sentinel `peer` for events without one (parks, checkpoints): the
/// all-ones 24-bit field decodes back to `None` in [`FlightEvent`].
pub const NO_PEER: u64 = 0xFF_FFFF;

/// What kind of event a flight-recorder slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FlightKind {
    /// A program-level send; `value` is the payload word count.
    Send = 1,
    /// A program-level receive; `value` is the payload word count.
    Recv = 2,
    /// The thread parked waiting for a doorbell.
    Park = 3,
    /// A full ring stalled an enqueue.
    Stall = 4,
    /// The reliable layer retransmitted a frame.
    Retransmit = 5,
    /// A checkpoint was taken; `value` is the image size in bytes.
    Checkpoint = 6,
    /// A crash was survived by restoring a checkpoint.
    Restore = 7,
}

impl FlightKind {
    /// All kinds, for decoding and export.
    pub const ALL: [FlightKind; 7] = [
        FlightKind::Send,
        FlightKind::Recv,
        FlightKind::Park,
        FlightKind::Stall,
        FlightKind::Retransmit,
        FlightKind::Checkpoint,
        FlightKind::Restore,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Send => "send",
            FlightKind::Recv => "recv",
            FlightKind::Park => "park",
            FlightKind::Stall => "stall",
            FlightKind::Retransmit => "retransmit",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Restore => "restore",
        }
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        FlightKind::ALL.into_iter().find(|k| *k as u64 == code)
    }
}

#[derive(Debug)]
struct Slot {
    /// `kind << 56 | (peer + 1) << 32 | tag`; zero means never written.
    meta: AtomicU64,
    value: AtomicU64,
    time: AtomicU64,
}

/// The per-processor ring. Writes come from the owning processor only;
/// reads may race (the live sampler) and tolerate seeing a slot
/// mid-overwrite — every field is monotone garbage at worst, and the
/// post-run snapshot is quiescent and exact.
#[derive(Debug)]
pub struct FlightRecorder {
    cursor: AtomicU64,
    slots: [Slot; FLIGHT_SLOTS],
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            cursor: AtomicU64::new(0),
            slots: std::array::from_fn(|_| Slot {
                meta: AtomicU64::new(0),
                value: AtomicU64::new(0),
                time: AtomicU64::new(0),
            }),
        }
    }
}

impl FlightRecorder {
    /// Record one event. `peer`/`tag` are zero for events without a
    /// channel (parks).
    #[inline]
    pub fn record(&self, kind: FlightKind, peer: u64, tag: u64, value: u64, time: u64) {
        let i = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) & (FLIGHT_SLOTS - 1);
        let slot = &self.slots[i];
        let meta = ((kind as u64) << 56) | (((peer + 1) & 0xFF_FFFF) << 32) | (tag & 0xFFFF_FFFF);
        slot.value.store(value, Ordering::Relaxed);
        slot.time.store(time, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Release);
    }

    /// Events recorded in total (may exceed [`FLIGHT_SLOTS`]).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let start = cursor.saturating_sub(FLIGHT_SLOTS as u64);
        (start..cursor)
            .filter_map(|seq| {
                let slot = &self.slots[(seq as usize) & (FLIGHT_SLOTS - 1)];
                let meta = slot.meta.load(Ordering::Acquire);
                let kind = FlightKind::from_code(meta >> 56)?;
                let peer_plus1 = (meta >> 32) & 0xFF_FFFF;
                Some(FlightEvent {
                    kind,
                    peer: peer_plus1.checked_sub(1),
                    tag: meta & 0xFFFF_FFFF,
                    value: slot.value.load(Ordering::Relaxed),
                    time: slot.time.load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightKind,
    /// The other endpoint, when the event has one.
    pub peer: Option<u64>,
    /// Message tag, zero when not applicable.
    pub tag: u64,
    /// Kind-specific magnitude (words, bytes, occupancy).
    pub value: u64,
    /// Logical-clock timestamp at the recording processor.
    pub time: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_wraps_keeping_newest() {
        let f = FlightRecorder::default();
        for i in 0..(FLIGHT_SLOTS as u64 + 5) {
            f.record(FlightKind::Send, 1, 2, i, i * 10);
        }
        let snap = f.snapshot();
        assert_eq!(snap.len(), FLIGHT_SLOTS);
        assert_eq!(snap.first().unwrap().value, 5);
        assert_eq!(snap.last().unwrap().value, FLIGHT_SLOTS as u64 + 4);
        assert_eq!(f.recorded(), FLIGHT_SLOTS as u64 + 5);
    }

    #[test]
    fn peer_and_tag_roundtrip() {
        let f = FlightRecorder::default();
        f.record(FlightKind::Park, 0, 0, 0, 7);
        f.record(FlightKind::Recv, 3, 41, 9, 8);
        let snap = f.snapshot();
        assert_eq!(snap[0].kind, FlightKind::Park);
        assert_eq!(snap[0].peer, Some(0));
        assert_eq!(snap[1].peer, Some(3));
        assert_eq!(snap[1].tag, 41);
        assert_eq!(snap[1].value, 9);
        assert_eq!(snap[1].time, 8);
    }
}
