//! Lock-free runtime metrics for the PDC runtime: cache-line-padded
//! per-processor shards of counters, log-linear histograms, and
//! per-channel traffic tables behind a [`MetricsRegistry`], plus an
//! always-on bounded [`FlightRecorder`] of recent coarse events.
//!
//! Design constraints, in order:
//!
//! 1. **The record path never allocates, never locks, and never blocks**
//!    — a counter bump is one relaxed `fetch_add` on a shard owned by
//!    the recording processor, so the threaded backend's hot send path
//!    keeps its cache lines to itself.
//! 2. **Reads may race.** A live sampler (the `monitor` bench) reads
//!    shards while their owners write; every exported quantity is
//!    monotone, so samples are usable mid-run and exact after the run
//!    quiesces.
//! 3. **Logical vs physical.** Counters that depend only on the program
//!    ([`Ctr::is_logical`]) must agree between the deterministic
//!    simulator and the threaded backend, which makes backend parity
//!    mechanically checkable ([`MetricsSnapshot::logical`]). Physical
//!    counters (parks, stalls, retransmission races, ring pressure)
//!    describe one backend's execution and are excluded from parity.
//! 4. **Always-on crash visibility.** The [`FlightRecorder`] records
//!    even when full metrics are off (one cursor bump + three relaxed
//!    stores), so a deadlocked or crashed run can explain its recent
//!    history without a rerun under tracing.
//!
//! This crate is std-only and has no dependencies; the machine layer
//! re-exports the types its clients need.

mod channels;
mod flight;
mod hist;
mod registry;
mod snapshot;

pub use channels::{ChannelTable, CHANNEL_SLOTS};
pub use flight::{FlightEvent, FlightKind, FlightRecorder, FLIGHT_SLOTS, NO_PEER};
pub use hist::{bucket_lo, bucket_of, Hist, HistSnapshot, N_BUCKETS};
pub use registry::{CachePadded, Ctr, MetricsRegistry, N_CTRS};
pub use snapshot::{LogicalMetrics, LogicalProc, MetricsSnapshot, ProcMetrics, TripleTotals};
