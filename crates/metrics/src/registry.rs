//! The registry: one cache-line-padded shard per processor, written
//! only by that processor's thread and readable concurrently by a live
//! sampler. Every record method takes `&self` and is lock-free; a
//! flight-only registry (the always-on default) skips everything but
//! the flight recorder, which is the metrics-off baseline the <2%
//! overhead bound is measured against.

use crate::channels::ChannelTable;
use crate::flight::{FlightKind, FlightRecorder};
use crate::hist::Hist;
use crate::snapshot::{ctrs_vec, MetricsSnapshot, ProcMetrics};
use std::sync::atomic::{AtomicU64, Ordering};

/// Every counter the runtime records. *Logical* counters depend only on
/// the program and must agree across backends; *physical* counters
/// describe how one backend executed (retransmission races, parks,
/// ring pressure) and are backend- and timing-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Ctr {
    // -- logical: identical on both backends for fault-free runs --
    /// Program instructions executed (`Fabric::tick` calls).
    Ops,
    /// Program-level frames sent.
    FramesSent,
    /// Program-level payload words sent.
    WordsSent,
    /// Program-level frames received.
    FramesRecvd,
    /// Program-level payload words received.
    WordsRecvd,
    /// Encode/decode scratch buffers reused without growing.
    ScratchReuse,
    /// Encode/decode scratch buffers that had to grow.
    ScratchGrow,
    // -- physical: backend- and timing-specific --
    /// Frames that actually hit the transport (protocol overhead
    /// included).
    WireFrames,
    /// Words that actually hit the transport.
    WireWords,
    /// Frames the (faulty) transport lost.
    FramesLost,
    /// Enqueues that found the ring full and had to stall.
    EnqueueStalls,
    /// Times a thread parked on its doorbell.
    Parks,
    /// Blocked waits resolved by spinning, without a park.
    SpinWakes,
    /// Doorbell wakeups observed while blocked.
    Wakes,
    /// Reliable-layer retransmissions.
    Retransmits,
    /// Acknowledgement frames sent.
    AcksSent,
    /// Acknowledgement frames processed.
    AcksRecvd,
    /// Duplicate frames dropped by the sequence window.
    DupFramesDropped,
    /// Checkpoints taken.
    CheckpointsTaken,
    /// Bytes snapshotted into checkpoints.
    CheckpointBytes,
    /// Crashes survived by restoring a checkpoint.
    CrashesSurvived,
    /// Frames replayed from checkpoint windows during recovery.
    ReplayFrames,
}

/// Number of counters (array size of a shard's counter block).
pub const N_CTRS: usize = 22;

impl Ctr {
    /// All counters in declaration (export) order.
    pub const ALL: [Ctr; N_CTRS] = [
        Ctr::Ops,
        Ctr::FramesSent,
        Ctr::WordsSent,
        Ctr::FramesRecvd,
        Ctr::WordsRecvd,
        Ctr::ScratchReuse,
        Ctr::ScratchGrow,
        Ctr::WireFrames,
        Ctr::WireWords,
        Ctr::FramesLost,
        Ctr::EnqueueStalls,
        Ctr::Parks,
        Ctr::SpinWakes,
        Ctr::Wakes,
        Ctr::Retransmits,
        Ctr::AcksSent,
        Ctr::AcksRecvd,
        Ctr::DupFramesDropped,
        Ctr::CheckpointsTaken,
        Ctr::CheckpointBytes,
        Ctr::CrashesSurvived,
        Ctr::ReplayFrames,
    ];

    /// Stable snake-case name for export.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::Ops => "ops",
            Ctr::FramesSent => "frames_sent",
            Ctr::WordsSent => "words_sent",
            Ctr::FramesRecvd => "frames_recvd",
            Ctr::WordsRecvd => "words_recvd",
            Ctr::ScratchReuse => "scratch_reuse",
            Ctr::ScratchGrow => "scratch_grow",
            Ctr::WireFrames => "wire_frames",
            Ctr::WireWords => "wire_words",
            Ctr::FramesLost => "frames_lost",
            Ctr::EnqueueStalls => "enqueue_stalls",
            Ctr::Parks => "parks",
            Ctr::SpinWakes => "spin_wakes",
            Ctr::Wakes => "wakes",
            Ctr::Retransmits => "retransmits",
            Ctr::AcksSent => "acks_sent",
            Ctr::AcksRecvd => "acks_recvd",
            Ctr::DupFramesDropped => "dup_frames_dropped",
            Ctr::CheckpointsTaken => "checkpoints_taken",
            Ctr::CheckpointBytes => "checkpoint_bytes",
            Ctr::CrashesSurvived => "crashes_survived",
            Ctr::ReplayFrames => "replay_frames",
        }
    }

    /// Must this counter agree across backends on fault-free runs?
    pub fn is_logical(self) -> bool {
        matches!(
            self,
            Ctr::Ops
                | Ctr::FramesSent
                | Ctr::WordsSent
                | Ctr::FramesRecvd
                | Ctr::WordsRecvd
                | Ctr::ScratchReuse
                | Ctr::ScratchGrow
        )
    }
}

/// Pads (and aligns) a shard to two cache lines so two processors'
/// counters never share a line — the whole point of sharding.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

#[derive(Debug)]
struct Shard {
    ctrs: [AtomicU64; N_CTRS],
    frame_words: Hist,
    ring_occupancy: Hist,
    out: ChannelTable,
    inn: ChannelTable,
    flight: FlightRecorder,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            ctrs: std::array::from_fn(|_| AtomicU64::new(0)),
            frame_words: Hist::default(),
            ring_occupancy: Hist::default(),
            out: ChannelTable::default(),
            inn: ChannelTable::default(),
            flight: FlightRecorder::default(),
        }
    }
}

/// The per-run metrics registry both backends populate.
#[derive(Debug)]
pub struct MetricsRegistry {
    full: bool,
    shards: Box<[CachePadded<Shard>]>,
}

impl MetricsRegistry {
    /// A registry recording everything, one shard per processor.
    pub fn new(n: usize) -> Self {
        MetricsRegistry {
            full: true,
            shards: (0..n).map(|_| CachePadded::default()).collect(),
        }
    }

    /// The always-on default: only the flight recorder records; every
    /// other record call is a branch on a cold bool and returns.
    pub fn flight_only(n: usize) -> Self {
        MetricsRegistry {
            full: false,
            shards: (0..n).map(|_| CachePadded::default()).collect(),
        }
    }

    /// Is full recording enabled?
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Number of processor shards.
    pub fn n_procs(&self) -> usize {
        self.shards.len()
    }

    /// Add `v` to counter `c` of processor `p`.
    #[inline]
    pub fn count(&self, p: usize, c: Ctr, v: u64) {
        if self.full {
            self.shards[p].0.ctrs[c as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record one program-level send of `words` payload words from `p`
    /// to `dst` on `tag` at logical time `time`: frames/words counters,
    /// the frame-size histogram, the outgoing channel table, and a
    /// flight-recorder event.
    #[inline]
    pub fn logical_send(&self, p: usize, dst: u64, tag: u64, words: u64, time: u64) {
        let shard = &self.shards[p].0;
        shard.flight.record(FlightKind::Send, dst, tag, words, time);
        if self.full {
            shard.ctrs[Ctr::FramesSent as usize].fetch_add(1, Ordering::Relaxed);
            shard.ctrs[Ctr::WordsSent as usize].fetch_add(words, Ordering::Relaxed);
            shard.frame_words.observe(words);
            shard.out.bump(dst, tag, words);
        }
    }

    /// Record one program-level receive: the mirror of
    /// [`logical_send`](Self::logical_send) at the destination.
    #[inline]
    pub fn logical_recv(&self, p: usize, src: u64, tag: u64, words: u64, time: u64) {
        let shard = &self.shards[p].0;
        shard.flight.record(FlightKind::Recv, src, tag, words, time);
        if self.full {
            shard.ctrs[Ctr::FramesRecvd as usize].fetch_add(1, Ordering::Relaxed);
            shard.ctrs[Ctr::WordsRecvd as usize].fetch_add(words, Ordering::Relaxed);
            shard.inn.bump(src, tag, words);
        }
    }

    /// Sample the occupancy (words queued) of `p`'s outgoing ring at an
    /// enqueue. The histogram's `max` is the high-water mark.
    #[inline]
    pub fn ring_depth(&self, p: usize, words: u64) {
        if self.full {
            self.shards[p].0.ring_occupancy.observe(words);
        }
    }

    /// Record a flight-recorder event (always on, full or not).
    #[inline]
    pub fn flight(&self, p: usize, kind: FlightKind, peer: u64, tag: u64, value: u64, time: u64) {
        self.shards[p].0.flight.record(kind, peer, tag, value, time);
    }

    /// Copy everything out. Exact after the run quiesces; during a run
    /// the live sampler sees monotone per-counter values that may be
    /// mutually skewed by in-flight records.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            full: self.full,
            procs: self
                .shards
                .iter()
                .map(|s| {
                    let s = &s.0;
                    let mut ctrs = ctrs_vec();
                    for (i, c) in ctrs.iter_mut().enumerate() {
                        *c = s.ctrs[i].load(Ordering::Relaxed);
                    }
                    ProcMetrics {
                        ctrs,
                        frame_words: s.frame_words.snapshot(),
                        ring_occupancy: s.ring_occupancy.snapshot(),
                        out_channels: s.out.snapshot(),
                        in_channels: s.inn.snapshot(),
                        channel_overflow: s.out.overflow() + s.inn.overflow(),
                        flight: s.flight.snapshot(),
                        flight_recorded: s.flight.recorded(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctr_discriminants_match_all_order() {
        for (i, c) in Ctr::ALL.into_iter().enumerate() {
            assert_eq!(c as usize, i, "{} out of order", c.name());
        }
    }

    #[test]
    fn shards_are_cache_line_separated() {
        assert!(std::mem::align_of::<CachePadded<Shard>>() >= 128);
        assert_eq!(std::mem::size_of::<CachePadded<Shard>>() % 128, 0);
    }

    #[test]
    fn flight_only_skips_counters_but_keeps_flight() {
        let r = MetricsRegistry::flight_only(2);
        r.logical_send(0, 1, 7, 3, 10);
        r.count(0, Ctr::Parks, 5);
        let s = r.snapshot();
        assert!(!s.full);
        assert_eq!(s.procs[0].get(Ctr::FramesSent), 0);
        assert_eq!(s.procs[0].get(Ctr::Parks), 0);
        assert_eq!(s.procs[0].flight.len(), 1);
    }

    #[test]
    fn full_registry_records_everything() {
        let r = MetricsRegistry::new(2);
        r.logical_send(0, 1, 7, 3, 10);
        r.logical_recv(1, 0, 7, 3, 20);
        r.ring_depth(0, 5);
        r.count(0, Ctr::Retransmits, 2);
        let s = r.snapshot();
        assert_eq!(s.procs[0].get(Ctr::FramesSent), 1);
        assert_eq!(s.procs[0].get(Ctr::WordsSent), 3);
        assert_eq!(s.procs[0].get(Ctr::Retransmits), 2);
        assert_eq!(s.procs[0].out_channels, vec![(1, 7, 1, 3)]);
        assert_eq!(s.procs[1].in_channels, vec![(0, 7, 1, 3)]);
        assert_eq!(s.procs[0].ring_occupancy.max, 5);
        assert_eq!(s.total(Ctr::FramesSent), 1);
        // Logical projections of identical recordings compare equal.
        let r2 = MetricsRegistry::new(2);
        r2.logical_send(0, 1, 7, 3, 99); // different time: flight differs,
        r2.logical_recv(1, 0, 7, 3, 99); // logical view must not
        r2.ring_depth(0, 1000); // physical: excluded from logical view
        r2.count(0, Ctr::Retransmits, 7);
        assert_eq!(s.logical(), r2.snapshot().logical());
    }
}
