//! A fixed-bucket log-linear histogram in the HDR style: exact buckets
//! for small values, then eight linear sub-buckets per power-of-two
//! octave. Recording is one relaxed `fetch_add` plus a relaxed
//! `fetch_max` — no allocation, no locks — so it is safe on the hot
//! path of a send or a park.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values `0..=15` get one bucket each; every octave above that is cut
/// into 8 linear sub-buckets keyed by the top four bits of the value.
/// 16 exact + 60 octaves × 8 = 496 buckets covering the full `u64`
/// range with ≤ 12.5% relative error.
pub const N_BUCKETS: usize = 16 + 60 * 8;

/// Bucket index of `v` (total order, monotone in `v`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 3)) & 7) as usize;
    16 + (msb - 4) * 8 + sub
}

/// Smallest value that lands in bucket `idx` (for labels and export).
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let rel = idx - 16;
    let msb = rel / 8 + 4;
    let sub = (rel % 8) as u64;
    (1u64 << msb) | (sub << (msb - 3))
}

/// The concurrent histogram: per-bucket counts plus count/sum/max.
#[derive(Debug)]
pub struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64; N_BUCKETS]>,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl Hist {
    /// Record one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for export: buckets are read after the
    /// aggregates, so a racing `observe` can make the bucket total
    /// exceed `count` by the in-flight records, never undercount them.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_lo(i), n))
            })
            .collect();
        HistSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

/// Plain-data snapshot of a [`Hist`]: sparse `(bucket_lo, count)` pairs
/// in increasing bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty buckets as `(lowest value in bucket, observations)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the lower bound of the bucket
    /// holding the `⌈q·count⌉`-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lo;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut samples: Vec<u64> = (0..64)
            .flat_map(|shift| {
                let base = 1u64 << shift;
                [
                    base.saturating_sub(1),
                    base,
                    base.saturating_add(base >> 2),
                    base.saturating_add(base - 1),
                ]
            })
            .chain([0, u64::MAX])
            .collect();
        samples.sort_unstable();
        let mut prev = 0;
        for v in samples {
            let b = bucket_of(v);
            assert!(b < N_BUCKETS, "bucket {b} out of range for {v}");
            assert!(b >= prev, "non-monotone at {v}: {b} < {prev}");
            prev = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_lo_inverts_bucket_of() {
        for idx in 0..N_BUCKETS {
            let lo = bucket_lo(idx);
            assert_eq!(bucket_of(lo), idx, "lo {lo} of bucket {idx}");
            if lo > 0 {
                assert!(bucket_of(lo - 1) < idx, "lo {lo} is not the least of {idx}");
            }
        }
    }

    #[test]
    fn observe_and_snapshot_roundtrip() {
        let h = Hist::default();
        for v in [0u64, 1, 7, 16, 17, 1000, 1 << 40] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1041 + (1u64 << 40));
        assert_eq!(s.max, 1 << 40);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 7);
        // Exact buckets keep exact values.
        assert!(s.buckets.contains(&(0, 1)));
        assert!(s.buckets.contains(&(7, 1)));
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), bucket_lo(bucket_of(1 << 40)));
    }
}
