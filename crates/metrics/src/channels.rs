//! Per-channel traffic tables: frames and words per `(peer, tag)` pair,
//! recorded with a fixed-capacity open-addressed atomic table so the
//! record path never allocates. Each table has exactly one writer (the
//! owning processor's thread) and any number of concurrent readers (the
//! live sampler), so publication needs only a release store of the key.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slots per table. A processor talks to at most a handful of peers
/// over at most a few hundred tags in the paper's programs; 4096 slots
/// keep the load factor tiny. Overflow is counted, flagged, and never
/// corrupts existing entries.
pub const CHANNEL_SLOTS: usize = 4096;

const EMPTY: u64 = 0;

#[derive(Debug)]
struct Entry {
    /// `encode(peer, tag)`, or [`EMPTY`].
    key: AtomicU64,
    frames: AtomicU64,
    words: AtomicU64,
}

/// One direction of a processor's channel traffic (outgoing keyed by
/// `(dst, tag)`, incoming keyed by `(src, tag)`).
#[derive(Debug)]
pub struct ChannelTable {
    entries: Box<[Entry]>,
    /// Frames that found the table full (the per-channel split is lost
    /// for them; the aggregate counters still see everything).
    overflow: AtomicU64,
}

#[inline]
fn encode(peer: u64, tag: u64) -> u64 {
    // +1 keeps the code distinct from EMPTY while staying injective:
    // peer and tag each fit in 32 bits by construction.
    ((peer << 32) | (tag & 0xFFFF_FFFF)) + 1
}

#[inline]
fn decode(key: u64) -> (u64, u64) {
    let raw = key - 1;
    (raw >> 32, raw & 0xFFFF_FFFF)
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for ChannelTable {
    fn default() -> Self {
        ChannelTable {
            entries: (0..CHANNEL_SLOTS)
                .map(|_| Entry {
                    key: AtomicU64::new(EMPTY),
                    frames: AtomicU64::new(0),
                    words: AtomicU64::new(0),
                })
                .collect(),
            overflow: AtomicU64::new(0),
        }
    }
}

impl ChannelTable {
    /// Record one frame of `words` payload words on channel
    /// `(peer, tag)`. Single-writer: only the owning processor calls
    /// this, so an empty slot can be claimed with a plain release store.
    pub fn bump(&self, peer: u64, tag: u64, words: u64) {
        let key = encode(peer, tag);
        let mask = CHANNEL_SLOTS - 1;
        let mut i = (splitmix(key) as usize) & mask;
        for _ in 0..CHANNEL_SLOTS {
            let e = &self.entries[i];
            let k = e.key.load(Ordering::Acquire);
            if k == key {
                e.frames.fetch_add(1, Ordering::Relaxed);
                e.words.fetch_add(words, Ordering::Relaxed);
                return;
            }
            if k == EMPTY {
                // Claim: counters first, then publish the key, so a
                // reader that sees the key sees at least this frame.
                e.frames.store(1, Ordering::Relaxed);
                e.words.store(words, Ordering::Relaxed);
                e.key.store(key, Ordering::Release);
                return;
            }
            i = (i + 1) & mask;
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// All live channels as `(peer, tag, frames, words)`, sorted by
    /// `(peer, tag)` for deterministic export.
    pub fn snapshot(&self) -> Vec<(u64, u64, u64, u64)> {
        let mut out: Vec<_> = self
            .entries
            .iter()
            .filter_map(|e| {
                let k = e.key.load(Ordering::Acquire);
                (k != EMPTY).then(|| {
                    let (peer, tag) = decode(k);
                    (
                        peer,
                        tag,
                        e.frames.load(Ordering::Relaxed),
                        e.words.load(Ordering::Relaxed),
                    )
                })
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Frames dropped from the per-channel split because the table
    /// filled up.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let t = ChannelTable::default();
        t.bump(1, 7, 3);
        t.bump(1, 7, 4);
        t.bump(2, 7, 1);
        assert_eq!(t.snapshot(), vec![(1, 7, 2, 7), (2, 7, 1, 1)]);
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn distinct_keys_never_alias() {
        let t = ChannelTable::default();
        // Force many distinct channels through the probe sequence.
        for peer in 0..16u64 {
            for tag in 0..64u64 {
                t.bump(peer, tag, peer + tag);
            }
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 16 * 64);
        for (peer, tag, frames, words) in snap {
            assert_eq!(frames, 1);
            assert_eq!(words, peer + tag);
        }
    }

    #[test]
    fn overflow_is_counted_not_corrupting() {
        let t = ChannelTable::default();
        for k in 0..(CHANNEL_SLOTS as u64 + 10) {
            t.bump(k, 0, 1);
        }
        assert_eq!(t.overflow(), 10);
        assert_eq!(t.snapshot().len(), CHANNEL_SLOTS);
    }
}
