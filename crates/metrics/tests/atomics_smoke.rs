//! Loom-free concurrency smoke over the sharded atomic registry.
//!
//! Real threads hammer their own shards while a reader snapshots the
//! registry concurrently; afterwards the totals must account for every
//! recorded event exactly. Two properties are checked without any
//! synchronization beyond the registry's own atomics:
//!
//! * **losslessness** — `n × OPS` increments per counter survive the
//!   concurrent snapshots bit-for-bit (relaxed increments on sharded
//!   `AtomicU64`s never drop);
//! * **monotonic reads** — a concurrent reader's per-counter totals
//!   never decrease between snapshots (per-location coherence).
//!
//! The test is deliberately `cargo miri test`-friendly: iteration
//! counts shrink under Miri so the interpreter finishes in seconds
//! while still interleaving genuinely racing accesses. CI runs it both
//! natively and under Miri next to the ring-fabric unsafe code.

use pdc_metrics::{Ctr, MetricsRegistry};
use std::sync::Arc;
use std::thread;

#[cfg(miri)]
const OPS: u64 = 64;
#[cfg(not(miri))]
const OPS: u64 = 20_000;

#[cfg(miri)]
const SNAPSHOTS: usize = 16;
#[cfg(not(miri))]
const SNAPSHOTS: usize = 200;

const WORDS: u64 = 3;

#[test]
fn sharded_counters_are_lossless_under_concurrent_snapshots() {
    let n = 4usize;
    let reg = Arc::new(MetricsRegistry::new(n));

    let writers: Vec<_> = (0..n)
        .map(|p| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..OPS {
                    reg.count(p, Ctr::Ops, 1);
                    reg.logical_send(p, ((p + 1) % 4) as u64, 7, WORDS, i);
                    reg.logical_recv(p, ((p + 3) % 4) as u64, 7, WORDS, i);
                }
            })
        })
        .collect();

    let reader = {
        let reg = Arc::clone(&reg);
        thread::spawn(move || {
            let mut last = [0u64; 3];
            for _ in 0..SNAPSHOTS {
                let snap = reg.snapshot();
                let now = [
                    snap.total(Ctr::Ops),
                    snap.total(Ctr::FramesSent),
                    snap.total(Ctr::WordsSent),
                ];
                for (l, c) in last.iter().zip(now) {
                    assert!(c >= *l, "counter total moved backwards");
                }
                last = now;
                thread::yield_now();
            }
        })
    };

    for w in writers {
        w.join().expect("writer");
    }
    reader.join().expect("reader");

    let snap = reg.snapshot();
    let per = OPS * n as u64;
    assert_eq!(snap.total(Ctr::Ops), per);
    assert_eq!(snap.total(Ctr::FramesSent), per);
    assert_eq!(snap.total(Ctr::FramesRecvd), per);
    assert_eq!(snap.total(Ctr::WordsSent), WORDS * per);
    assert_eq!(snap.total(Ctr::WordsRecvd), WORDS * per);
}

/// The flight-only registry must drop counter traffic (that is its
/// contract) while still recording flight events race-free.
#[test]
fn flight_only_registry_ignores_counters() {
    let reg = Arc::new(MetricsRegistry::flight_only(2));
    let writers: Vec<_> = (0..2)
        .map(|p| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..OPS.min(512) {
                    reg.count(p, Ctr::Ops, 1);
                    reg.logical_send(p, 1, 9, 1, i);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    let snap = reg.snapshot();
    assert_eq!(snap.total(Ctr::Ops), 0);
    assert_eq!(snap.total(Ctr::FramesSent), 0);
}
