//! Property tests of the canonicalization machinery the optimization
//! passes rely on: canonical equality is sound (equal canon ⇒ equal
//! values) and variable shifts mean what they say. (Deterministic
//! `pdc-testkit` cases; a failing case prints its seed for replay.)

use pdc_opt::canon::{canon, canon_eq, shift_sexpr, solve_shift, uncanon};
use pdc_spmd::ir::{SBinOp, SExpr, SUnOp};
use pdc_testkit::{cases, Rng};

fn leaf(rng: &mut Rng) -> SExpr {
    match rng.range_usize(0, 3) {
        0 => SExpr::Int(rng.range_i64(-20, 20)),
        1 => SExpr::var("j"),
        _ => SExpr::var("k"),
    }
}

/// Index-shaped expressions: affine combinations with div/mod by
/// positive constants — what subscripts look like after codegen.
fn index_expr(rng: &mut Rng, depth: usize) -> SExpr {
    if depth == 0 || rng.chance(1, 4) {
        return leaf(rng);
    }
    match rng.range_usize(0, 6) {
        0 => SExpr::Bin(
            SBinOp::Add,
            Box::new(index_expr(rng, depth - 1)),
            Box::new(index_expr(rng, depth - 1)),
        ),
        1 => SExpr::Bin(
            SBinOp::Sub,
            Box::new(index_expr(rng, depth - 1)),
            Box::new(index_expr(rng, depth - 1)),
        ),
        2 => index_expr(rng, depth - 1).idiv(SExpr::Int(rng.range_i64(1, 6))),
        3 => index_expr(rng, depth - 1).imod(SExpr::Int(rng.range_i64(1, 6))),
        4 => SExpr::Int(rng.range_i64(-3, 4)).mul(index_expr(rng, depth - 1)),
        _ => SExpr::Un(SUnOp::Neg, Box::new(index_expr(rng, depth - 1))),
    }
}

fn eval(e: &SExpr, j: i64, k: i64) -> i64 {
    match e {
        SExpr::Int(v) => *v,
        SExpr::Var(v) if v == "j" => j,
        SExpr::Var(v) if v == "k" => k,
        SExpr::Un(SUnOp::Neg, a) => -eval(a, j, k),
        SExpr::Bin(op, a, b) => {
            let (l, r) = (eval(a, j, k), eval(b, j, k));
            match op {
                SBinOp::Add => l + r,
                SBinOp::Sub => l - r,
                SBinOp::Mul => l * r,
                SBinOp::FloorDiv => l.div_euclid(r),
                SBinOp::Mod => l.rem_euclid(r),
                other => panic!("unexpected op {other:?}"),
            }
        }
        other => panic!("unexpected node {other:?}"),
    }
}

/// uncanon(canon(e)) preserves the value everywhere.
#[test]
fn canon_round_trip_preserves_value() {
    cases(256, "canon_round_trip_preserves_value", |rng| {
        let e = index_expr(rng, 3);
        let j = rng.range_i64(-10, 10);
        let k = rng.range_i64(-10, 10);
        if let Some(c) = canon(&e) {
            let back = uncanon(&c);
            assert_eq!(eval(&e, j, k), eval(&back, j, k));
        }
    });
}

/// canon_eq is sound: expressions it calls equal evaluate equal.
#[test]
fn canon_eq_is_sound() {
    cases(256, "canon_eq_is_sound", |rng| {
        let a = index_expr(rng, 3);
        let b = index_expr(rng, 3);
        let j = rng.range_i64(-10, 10);
        let k = rng.range_i64(-10, 10);
        if canon_eq(&a, &b) {
            assert_eq!(eval(&a, j, k), eval(&b, j, k));
        }
    });
}

/// shift_sexpr(e, j, d) evaluated at j equals e evaluated at j + d.
#[test]
fn shift_means_substitution() {
    cases(256, "shift_means_substitution", |rng| {
        let e = index_expr(rng, 3);
        let d = rng.range_i64(-4, 5);
        let j = rng.range_i64(-10, 10);
        let k = rng.range_i64(-10, 10);
        let shifted = shift_sexpr(&e, "j", d);
        assert_eq!(eval(&shifted, j, k), eval(&e, j + d, k));
    });
}

/// solve_shift really aligns the expressions it claims to align.
#[test]
fn solved_shifts_align() {
    cases(256, "solved_shifts_align", |rng| {
        let e = index_expr(rng, 3);
        let d = rng.range_i64(-4, 5);
        let j = rng.range_i64(-10, 10);
        let k = rng.range_i64(-10, 10);
        // Build b = e[j := j - d]; then solve_shift(canon e, canon b, j)
        // should recover d (or any d' that also aligns them).
        let b = shift_sexpr(&e, "j", -d);
        let (Some(ca), Some(cb)) = (canon(&e), canon(&b)) else {
            return;
        };
        if let Some(found) = solve_shift(&ca, &cb, "j") {
            let realigned = shift_sexpr(&b, "j", found);
            assert_eq!(
                eval(&realigned, j, k),
                eval(&e, j, k),
                "claimed shift {found} does not align"
            );
        }
    });
}
