//! Property tests of the canonicalization machinery the optimization
//! passes rely on: canonical equality is sound (equal canon ⇒ equal
//! values) and variable shifts mean what they say.

use pdc_opt::canon::{canon, canon_eq, shift_sexpr, solve_shift, uncanon};
use pdc_spmd::ir::{SBinOp, SExpr, SUnOp};
use proptest::prelude::*;

fn leaf() -> impl Strategy<Value = SExpr> {
    prop_oneof![
        (-20i64..20).prop_map(SExpr::Int),
        Just(SExpr::var("j")),
        Just(SExpr::var("k")),
    ]
}

/// Index-shaped expressions: affine combinations with div/mod by
/// positive constants — what subscripts look like after codegen.
fn index_expr() -> impl Strategy<Value = SExpr> {
    leaf().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Bin(
                SBinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Bin(
                SBinOp::Sub,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), 1i64..6).prop_map(|(a, k)| a.idiv(SExpr::Int(k))),
            (inner.clone(), 1i64..6).prop_map(|(a, k)| a.imod(SExpr::Int(k))),
            (inner.clone(), -3i64..4).prop_map(|(a, k)| SExpr::Int(k).mul(a)),
            inner
                .clone()
                .prop_map(|a| SExpr::Un(SUnOp::Neg, Box::new(a))),
        ]
    })
}

fn eval(e: &SExpr, j: i64, k: i64) -> i64 {
    match e {
        SExpr::Int(v) => *v,
        SExpr::Var(v) if v == "j" => j,
        SExpr::Var(v) if v == "k" => k,
        SExpr::Un(SUnOp::Neg, a) => -eval(a, j, k),
        SExpr::Bin(op, a, b) => {
            let (l, r) = (eval(a, j, k), eval(b, j, k));
            match op {
                SBinOp::Add => l + r,
                SBinOp::Sub => l - r,
                SBinOp::Mul => l * r,
                SBinOp::FloorDiv => l.div_euclid(r),
                SBinOp::Mod => l.rem_euclid(r),
                other => panic!("unexpected op {other:?}"),
            }
        }
        other => panic!("unexpected node {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// uncanon(canon(e)) preserves the value everywhere.
    #[test]
    fn canon_round_trip_preserves_value(e in index_expr(), j in -10i64..10, k in -10i64..10) {
        if let Some(c) = canon(&e) {
            let back = uncanon(&c);
            prop_assert_eq!(eval(&e, j, k), eval(&back, j, k));
        }
    }

    /// canon_eq is sound: expressions it calls equal evaluate equal.
    #[test]
    fn canon_eq_is_sound(
        a in index_expr(),
        b in index_expr(),
        j in -10i64..10,
        k in -10i64..10,
    ) {
        if canon_eq(&a, &b) {
            prop_assert_eq!(eval(&a, j, k), eval(&b, j, k));
        }
    }

    /// shift_sexpr(e, j, d) evaluated at j equals e evaluated at j + d.
    #[test]
    fn shift_means_substitution(
        e in index_expr(),
        d in -4i64..5,
        j in -10i64..10,
        k in -10i64..10,
    ) {
        let shifted = shift_sexpr(&e, "j", d);
        prop_assert_eq!(eval(&shifted, j, k), eval(&e, j + d, k));
    }

    /// solve_shift really aligns the expressions it claims to align.
    #[test]
    fn solved_shifts_align(
        e in index_expr(),
        d in -4i64..5,
        j in -10i64..10,
        k in -10i64..10,
    ) {
        // Build b = e[j := j - d]; then solve_shift(canon e, canon b, j)
        // should recover d (or any d' that also aligns them).
        let b = shift_sexpr(&e, "j", -d);
        let (Some(ca), Some(cb)) = (canon(&e), canon(&b)) else {
            return Ok(());
        };
        if let Some(found) = solve_shift(&ca, &cb, "j") {
            let realigned = shift_sexpr(&b, "j", found);
            prop_assert_eq!(
                eval(&realigned, j, k),
                eval(&e, j, k),
                "claimed shift {} does not align", found
            );
        }
    }
}
