//! Strip mining (Appendix A.4, *Optimized III*): block element-wise value
//! streams.
//!
//! After jamming, new values travel one element per message — maximal
//! parallelism, maximal message count. Strip mining blocks every loop
//! that sends or receives a qualifying stream: the loop is split into an
//! outer block loop and an inner element loop; receives of a whole block
//! arrive before the inner loop, sends of a whole block leave after it.
//! Because the pass transforms *every* occurrence of a tag across all
//! processors with the same block size and the same element range, both
//! ends of every stream stay in protocol.
//!
//! Qualification per tag (conservative):
//!
//! * every `csend` of the tag is a single-value send at the top level of
//!   a unit-step loop — or directly under one `if` whose condition does
//!   not depend on the loop variable — with a destination independent of
//!   the loop variable;
//! * every `crecv` is a single-variable receive at the top level of such
//!   a loop with a source independent of the loop variable;
//! * all occurrences agree on the loop bounds.

use crate::canon::{canon_eq, mentions};
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use std::collections::{BTreeMap, HashSet};

#[derive(Debug, Clone)]
enum TagState {
    Ok { lo: SExpr, hi: SExpr },
    Bad(&'static str),
}

/// Apply strip mining with the given block size. Returns the rewritten
/// program and the number of loops blocked.
///
/// # Panics
///
/// Panics if `blksize == 0`.
pub fn strip_mine(prog: &SpmdProgram, blksize: usize) -> (SpmdProgram, usize) {
    strip_mine_with_remarks(prog, blksize, &mut RemarkSink::new())
}

/// [`strip_mine`], additionally emitting one Applied or Missed remark per
/// message tag considered.
///
/// # Panics
///
/// Panics if `blksize == 0`.
pub fn strip_mine_with_remarks(
    prog: &SpmdProgram,
    blksize: usize,
    sink: &mut RemarkSink,
) -> (SpmdProgram, usize) {
    assert!(blksize > 0, "block size must be positive");
    let mut tags: BTreeMap<u32, TagState> = BTreeMap::new();
    for body in prog.bodies() {
        qualify(body, None, &mut tags);
    }
    let good: HashSet<u32> = tags
        .iter()
        .filter_map(|(t, s)| match s {
            TagState::Ok { .. } => Some(*t),
            TagState::Bad(_) => None,
        })
        .collect();
    for (tag, state) in &tags {
        match state {
            TagState::Ok { .. } => sink.emit(
                Remark::new(
                    Phase::Strip,
                    RemarkKind::Applied,
                    "blocked element stream into strip-mined block transfers",
                )
                .with_tag(*tag)
                .detail("blksize", blksize),
            ),
            TagState::Bad(reason) => {
                sink.emit(Remark::new(Phase::Strip, RemarkKind::Missed, *reason).with_tag(*tag))
            }
        }
    }
    if good.is_empty() {
        return (prog.clone(), 0);
    }
    let mut out = prog.clone();
    let mut count = 0;
    for body in out.bodies_mut() {
        let (b, c) = rewrite(std::mem::take(body), &good, blksize as i64, &mut 0);
        *body = b;
        count += c;
    }
    (out, count)
}

struct LoopCtx<'a> {
    var: &'a str,
    lo: &'a SExpr,
    hi: &'a SExpr,
    unit_step: bool,
}

fn note(tags: &mut BTreeMap<u32, TagState>, tag: u32, ctx: Option<&LoopCtx<'_>>, dep: &SExpr) {
    let Some(ctx) = ctx else {
        tags.insert(
            tag,
            TagState::Bad("communication is not at the top level of an element loop"),
        );
        return;
    };
    if !ctx.unit_step {
        tags.insert(tag, TagState::Bad("enclosing loop step is not 1"));
        return;
    }
    if mentions(dep, ctx.var) {
        tags.insert(
            tag,
            TagState::Bad("peer processor depends on the loop variable"),
        );
        return;
    }
    match tags.get(&tag) {
        None => {
            tags.insert(
                tag,
                TagState::Ok {
                    lo: ctx.lo.clone(),
                    hi: ctx.hi.clone(),
                },
            );
        }
        Some(TagState::Ok { lo, hi }) => {
            if !canon_eq(lo, ctx.lo) || !canon_eq(hi, ctx.hi) {
                tags.insert(
                    tag,
                    TagState::Bad("occurrences disagree on the loop bounds"),
                );
            }
        }
        Some(TagState::Bad(_)) => {}
    }
}

fn qualify(body: &[SStmt], ctx: Option<&LoopCtx<'_>>, tags: &mut BTreeMap<u32, TagState>) {
    for s in body {
        match s {
            SStmt::Send { to, tag, values } => {
                if values.len() == 1 {
                    note(tags, *tag, ctx, to);
                } else {
                    tags.insert(*tag, TagState::Bad("send carries more than one value"));
                }
            }
            SStmt::Recv { from, tag, into } => {
                if into.len() == 1 && matches!(into[0], RecvTarget::Var(_)) {
                    note(tags, *tag, ctx, from);
                } else {
                    tags.insert(
                        *tag,
                        TagState::Bad("receive does not target a single scalar variable"),
                    );
                }
            }
            SStmt::SendBuf { tag, .. } | SStmt::RecvBuf { tag, .. } => {
                tags.insert(*tag, TagState::Bad("stream is already a block transfer"));
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                let inner_ctx = LoopCtx {
                    var,
                    lo,
                    hi,
                    unit_step: *step == SExpr::int(1),
                };
                for st in inner {
                    match st {
                        // Direct children qualify against this loop.
                        SStmt::Send { .. } | SStmt::Recv { .. } => {
                            qualify(std::slice::from_ref(st), Some(&inner_ctx), tags)
                        }
                        // One guard level is allowed for sends when the
                        // condition is loop-invariant.
                        SStmt::If { cond, then, els }
                            if els.is_empty()
                                && !mentions(cond, var)
                                && then.iter().all(|x| {
                                    matches!(x, SStmt::Send { .. } | SStmt::Let { .. })
                                }) =>
                        {
                            qualify(then, Some(&inner_ctx), tags)
                        }
                        other => qualify(std::slice::from_ref(other), None, tags),
                    }
                }
            }
            SStmt::If { then, els, .. } => {
                qualify(then, None, tags);
                qualify(els, None, tags);
            }
            _ => {}
        }
    }
}

/// Does a loop body contain (at the allowed positions) any comm op with a
/// qualifying tag?
fn loop_has_good_comm(inner: &[SStmt], var: &str, good: &HashSet<u32>) -> bool {
    inner.iter().any(|s| match s {
        SStmt::Send { tag, .. } | SStmt::Recv { tag, .. } => good.contains(tag),
        SStmt::If { cond, then, els } if els.is_empty() && !mentions(cond, var) => then
            .iter()
            .any(|x| matches!(x, SStmt::Send { tag, .. } if good.contains(tag))),
        _ => false,
    })
}

fn rewrite(
    body: Vec<SStmt>,
    good: &HashSet<u32>,
    blk: i64,
    fresh: &mut u32,
) -> (Vec<SStmt>, usize) {
    let mut out = Vec::new();
    let mut count = 0;
    for s in body {
        match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } if step == SExpr::int(1) && loop_has_good_comm(&inner, &var, good) => {
                let (blocked, c) = block_loop(var, lo, hi, inner, good, blk, fresh);
                count += 1 + c;
                out.extend(blocked);
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                let (b, c) = rewrite(inner, good, blk, fresh);
                count += c;
                out.push(SStmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body: b,
                });
            }
            SStmt::If { cond, then, els } => {
                let (t, c1) = rewrite(then, good, blk, fresh);
                let (e, c2) = rewrite(els, good, blk, fresh);
                count += c1 + c2;
                out.push(SStmt::If {
                    cond,
                    then: t,
                    els: e,
                });
            }
            other => out.push(other),
        }
    }
    (out, count)
}

/// The core transformation of one element loop into a block loop.
#[allow(clippy::too_many_arguments)]
fn block_loop(
    var: String,
    lo: SExpr,
    hi: SExpr,
    inner: Vec<SStmt>,
    good: &HashSet<u32>,
    blk: i64,
    fresh: &mut u32,
) -> (Vec<SStmt>, usize) {
    *fresh += 1;
    let id = *fresh;
    let k = format!("$k{id}");
    let klo = format!("$klo{id}");
    let khi = format!("$khi{id}");
    let blk_len = || SExpr::var(khi.clone()).sub(SExpr::var(klo.clone()));

    // Collect the tags this loop receives and sends (in order).
    let mut recv_tags: Vec<(u32, SExpr)> = Vec::new(); // (tag, from)
    let mut send_tags: Vec<(u32, SExpr, Option<SExpr>)> = Vec::new(); // (tag, to, guard)
    for s in &inner {
        match s {
            SStmt::Recv { from, tag, .. }
                if good.contains(tag) && !recv_tags.iter().any(|(t, _)| t == tag) =>
            {
                recv_tags.push((*tag, from.clone()));
            }
            SStmt::Send { to, tag, .. }
                if good.contains(tag) && !send_tags.iter().any(|(t, _, _)| t == tag) =>
            {
                send_tags.push((*tag, to.clone(), None));
            }
            SStmt::If { cond, then, els } if els.is_empty() => {
                for x in then {
                    if let SStmt::Send { to, tag, .. } = x {
                        if good.contains(tag) && !send_tags.iter().any(|(t, _, _)| t == tag) {
                            send_tags.push((*tag, to.clone(), Some(cond.clone())));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Rewrite the element body: receives become buffer reads, sends
    // become buffer writes.
    let new_inner: Vec<SStmt> = inner
        .into_iter()
        .map(|s| rewrite_element(s, good, &var, &klo))
        .collect();

    let mut pre: Vec<SStmt> = Vec::new();
    for (tag, _) in &recv_tags {
        pre.push(SStmt::AllocBuf {
            buf: format!("$sb{tag}"),
            len: SExpr::int(blk),
        });
    }
    for (tag, _, _) in &send_tags {
        pre.push(SStmt::AllocBuf {
            buf: format!("$ss{tag}"),
            len: SExpr::int(blk),
        });
    }

    let mut kbody: Vec<SStmt> = vec![
        SStmt::Let {
            var: klo.clone(),
            value: lo.clone().add(SExpr::var(k.clone()).mul(SExpr::int(blk))),
        },
        SStmt::Let {
            var: khi.clone(),
            value: SExpr::var(klo.clone())
                .add(SExpr::int(blk - 1))
                .min(hi.clone()),
        },
    ];
    for (tag, from) in &recv_tags {
        kbody.push(SStmt::RecvBuf {
            from: from.clone(),
            tag: *tag,
            buf: format!("$sb{tag}"),
            lo: SExpr::int(0),
            hi: blk_len(),
        });
    }
    kbody.push(SStmt::For {
        var: var.clone(),
        lo: SExpr::var(klo.clone()),
        hi: SExpr::var(khi.clone()),
        step: SExpr::int(1),
        body: new_inner,
    });
    for (tag, to, guard) in &send_tags {
        let send = SStmt::SendBuf {
            to: to.clone(),
            tag: *tag,
            buf: format!("$ss{tag}"),
            lo: SExpr::int(0),
            hi: blk_len(),
        };
        kbody.push(match guard {
            Some(g) => SStmt::If {
                cond: g.clone(),
                then: vec![send],
                els: vec![],
            },
            None => send,
        });
    }

    pre.push(SStmt::For {
        var: k,
        lo: SExpr::int(0),
        hi: hi.clone().sub(lo.clone()).idiv(SExpr::int(blk)),
        step: SExpr::int(1),
        body: kbody,
    });
    (pre, 0)
}

fn rewrite_element(s: SStmt, good: &HashSet<u32>, var: &str, klo: &str) -> SStmt {
    match s {
        SStmt::Recv { from, tag, into } if good.contains(&tag) => {
            let RecvTarget::Var(t) = &into[0] else {
                unreachable!("qualified recv targets a var");
            };
            let _ = from;
            SStmt::Let {
                var: t.clone(),
                value: SExpr::BufRead {
                    buf: format!("$sb{tag}"),
                    idx: Box::new(SExpr::var(var).sub(SExpr::var(klo))),
                },
            }
        }
        SStmt::Send { to, tag, values } if good.contains(&tag) => {
            let _ = to;
            SStmt::BufWrite {
                buf: format!("$ss{tag}"),
                idx: SExpr::var(var).sub(SExpr::var(klo)),
                value: values.into_iter().next().expect("single-value send"),
            }
        }
        SStmt::If { cond, then, els } if els.is_empty() => SStmt::If {
            cond,
            then: then
                .into_iter()
                .map(|x| rewrite_element(x, good, var, klo))
                .collect(),
            els: vec![],
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_machine::CostModel;
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    /// P0 streams f(i) to P1 element-wise; P1 folds the stream.
    fn stream_program(n: i64) -> SpmdProgram {
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(n),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 9,
                values: vec![SExpr::var("i").mul(SExpr::var("i"))],
            }],
        }];
        let p1 = vec![
            SStmt::Let {
                var: "acc".into(),
                value: SExpr::int(0),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(n),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Recv {
                        from: SExpr::int(0),
                        tag: 9,
                        into: vec![RecvTarget::Var("x".into())],
                    },
                    SStmt::Let {
                        var: "acc".into(),
                        value: SExpr::var("acc").add(SExpr::var("x")),
                    },
                ],
            },
        ];
        SpmdProgram::new(vec![p0, p1])
    }

    fn run(prog: &SpmdProgram) -> (u64, Scalar) {
        let mut m = SpmdMachine::new(prog, CostModel::ipsc2()).unwrap();
        let out = m.run().unwrap();
        (
            out.report.stats.network.messages,
            m.vm(1).var("acc").unwrap(),
        )
    }

    #[test]
    fn blocks_reduce_messages_and_preserve_results() {
        let n = 10i64;
        let prog = stream_program(n);
        let (msgs0, acc0) = run(&prog);
        assert_eq!(msgs0, n as u64);
        for blk in [1usize, 2, 3, 4, 10, 16] {
            let (opt, loops) = strip_mine(&prog, blk);
            assert_eq!(loops, 2, "blk={blk}");
            let (msgs, acc) = run(&opt);
            assert_eq!(acc, acc0, "blk={blk}");
            assert_eq!(msgs, (n as u64).div_ceil(blk as u64), "blk={blk}");
        }
    }

    #[test]
    fn mismatched_ranges_disqualify() {
        let mut prog = stream_program(8);
        if let SStmt::For { hi, .. } = &mut prog.body_mut(1)[1] {
            *hi = SExpr::int(7);
        }
        let (opt, loops) = strip_mine(&prog, 4);
        assert_eq!(loops, 0);
        assert_eq!(opt, prog);
    }

    #[test]
    fn multi_value_sends_disqualify() {
        let mut prog = stream_program(8);
        if let SStmt::For { body, .. } = &mut prog.body_mut(0)[0] {
            if let SStmt::Send { values, .. } = &mut body[0] {
                values.push(SExpr::int(0));
            }
        }
        // Receiver shape no longer matters; the tag is poisoned.
        let (_, loops) = strip_mine(&prog, 4);
        assert_eq!(loops, 0);
    }
}
