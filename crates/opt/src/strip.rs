//! Strip mining (Appendix A.4, *Optimized III*): block element-wise value
//! streams.
//!
//! After jamming, new values travel one element per message — maximal
//! parallelism, maximal message count. Strip mining blocks every loop
//! that sends or receives a qualifying stream: the loop is split into an
//! outer block loop and an inner element loop; receives of a whole block
//! arrive before the inner loop, sends of a whole block leave after it.
//! Because the pass transforms *every* occurrence of a tag across all
//! processors with the same block size and the same element range, both
//! ends of every stream stay in protocol.
//!
//! Qualification per tag (conservative):
//!
//! * every `csend` of the tag is a single-value send at the top level of
//!   a unit-step loop — or directly under one `if` whose condition does
//!   not depend on the loop variable — with a destination independent of
//!   the loop variable;
//! * every `crecv` is a single-variable receive at the top level of such
//!   a loop with a source independent of the loop variable;
//! * all occurrences agree on the loop bounds;
//! * the element loop passes the dependence gate: blocking postpones the
//!   loop's sends to the end of each block and hoists its receives in
//!   front, so every dependence the loop carries must run strictly
//!   forward (direction `<`). A backward or unknown-direction carried
//!   dependence — or an inexact analysis — disqualifies every tag the
//!   loop communicates, with the blocking dependence in the Missed
//!   remark.

use crate::canon::{canon_eq, mentions};
use pdc_depend::spmd::analyze_for;
use pdc_depend::Direction;
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use std::collections::{BTreeMap, HashSet};

#[derive(Debug, Clone)]
enum TagState {
    Ok { lo: SExpr, hi: SExpr },
    Bad(String),
}

/// Apply strip mining with the given block size. Returns the rewritten
/// program and the number of loops blocked.
///
/// # Panics
///
/// Panics if `blksize == 0`.
pub fn strip_mine(prog: &SpmdProgram, blksize: usize) -> (SpmdProgram, usize) {
    strip_mine_with_remarks(prog, blksize, &mut RemarkSink::new())
}

/// [`strip_mine`], additionally emitting one Applied or Missed remark per
/// message tag considered.
///
/// # Panics
///
/// Panics if `blksize == 0`.
pub fn strip_mine_with_remarks(
    prog: &SpmdProgram,
    blksize: usize,
    sink: &mut RemarkSink,
) -> (SpmdProgram, usize) {
    assert!(blksize > 0, "block size must be positive");
    let mut tags: BTreeMap<u32, TagState> = BTreeMap::new();
    let mut witnesses: BTreeMap<u32, String> = BTreeMap::new();
    for body in prog.bodies() {
        qualify(body, None, &mut tags, &mut witnesses);
    }
    let good: HashSet<u32> = tags
        .iter()
        .filter_map(|(t, s)| match s {
            TagState::Ok { .. } => Some(*t),
            TagState::Bad(_) => None,
        })
        .collect();
    for (tag, state) in &tags {
        match state {
            TagState::Ok { .. } => {
                let mut r = Remark::new(
                    Phase::Strip,
                    RemarkKind::Applied,
                    "blocked element stream into strip-mined block transfers",
                )
                .with_tag(*tag)
                .detail("blksize", blksize);
                if let Some(w) = witnesses.get(tag) {
                    r = r.detail("witness", w.clone());
                }
                sink.emit(r);
            }
            TagState::Bad(reason) => sink
                .emit(Remark::new(Phase::Strip, RemarkKind::Missed, reason.clone()).with_tag(*tag)),
        }
    }
    if good.is_empty() {
        return (prog.clone(), 0);
    }
    let mut out = prog.clone();
    let mut count = 0;
    for body in out.bodies_mut() {
        let (b, c) = rewrite(std::mem::take(body), &good, blksize as i64, &mut 0);
        *body = b;
        count += c;
    }
    (out, count)
}

struct LoopCtx<'a> {
    var: &'a str,
    lo: &'a SExpr,
    hi: &'a SExpr,
    unit_step: bool,
}

fn note(tags: &mut BTreeMap<u32, TagState>, tag: u32, ctx: Option<&LoopCtx<'_>>, dep: &SExpr) {
    let Some(ctx) = ctx else {
        tags.insert(
            tag,
            TagState::Bad("communication is not at the top level of an element loop".into()),
        );
        return;
    };
    if !ctx.unit_step {
        tags.insert(tag, TagState::Bad("enclosing loop step is not 1".into()));
        return;
    }
    if mentions(dep, ctx.var) {
        tags.insert(
            tag,
            TagState::Bad("peer processor depends on the loop variable".into()),
        );
        return;
    }
    match tags.get(&tag) {
        None => {
            tags.insert(
                tag,
                TagState::Ok {
                    lo: ctx.lo.clone(),
                    hi: ctx.hi.clone(),
                },
            );
        }
        Some(TagState::Ok { lo, hi }) => {
            if !canon_eq(lo, ctx.lo) || !canon_eq(hi, ctx.hi) {
                tags.insert(
                    tag,
                    TagState::Bad("occurrences disagree on the loop bounds".into()),
                );
            }
        }
        Some(TagState::Bad(_)) => {}
    }
}

/// Does the loop body communicate at one of the positions `qualify`
/// accepts (direct child, or send under one guard)?
fn has_direct_comm(inner: &[SStmt]) -> bool {
    inner.iter().any(|s| match s {
        SStmt::Send { .. } | SStmt::Recv { .. } => true,
        SStmt::If { then, els, .. } if els.is_empty() => {
            then.iter().any(|x| matches!(x, SStmt::Send { .. }))
        }
        _ => false,
    })
}

/// The tag of a direct communication statement.
fn comm_tag(s: &SStmt) -> Option<u32> {
    match s {
        SStmt::Send { tag, .. } | SStmt::Recv { tag, .. } => Some(*tag),
        _ => None,
    }
}

/// The dependence gate for one element loop. Blocking keeps the
/// iteration order of the loop but batches its communication into
/// whole-block transfers, so it is legal exactly when every dependence
/// the loop carries runs strictly forward (`<`): a backward or
/// unknown-direction dependence could need a value from a later
/// iteration before the block completes. Returns the legality witness,
/// or the blocking reason.
fn dependence_gate(element_loop: &SStmt) -> Result<String, String> {
    let info = analyze_for(element_loop);
    if !info.exact {
        let why = info
            .notes
            .first()
            .cloned()
            .unwrap_or_else(|| "subscripts outside the analyzable grammar".into());
        return Err(format!("dependence analysis inexact: {why}"));
    }
    if let Some(d) = info.deps.iter().find(|d| {
        d.is_loop_carried() && matches!(d.direction.first(), Some(Direction::Gt | Direction::Any))
    }) {
        return Err(format!(
            "loop-carried dependence blocks strip mining: {}",
            d.describe()
        ));
    }
    let carried: Vec<String> = info
        .deps
        .iter()
        .filter(|d| d.is_loop_carried())
        .map(|d| d.describe())
        .collect();
    if carried.is_empty() {
        Ok("element loop carries no dependence".into())
    } else {
        Ok(format!(
            "all carried dependences run forward (<): {}",
            carried.join("; ")
        ))
    }
}

fn qualify(
    body: &[SStmt],
    ctx: Option<&LoopCtx<'_>>,
    tags: &mut BTreeMap<u32, TagState>,
    witnesses: &mut BTreeMap<u32, String>,
) {
    for s in body {
        match s {
            SStmt::Send { to, tag, values } => {
                if values.len() == 1 {
                    note(tags, *tag, ctx, to);
                } else {
                    tags.insert(
                        *tag,
                        TagState::Bad("send carries more than one value".into()),
                    );
                }
            }
            SStmt::Recv { from, tag, into } => {
                if into.len() == 1 && matches!(into[0], RecvTarget::Var(_)) {
                    note(tags, *tag, ctx, from);
                } else {
                    tags.insert(
                        *tag,
                        TagState::Bad("receive does not target a single scalar variable".into()),
                    );
                }
            }
            SStmt::SendBuf { tag, .. } | SStmt::RecvBuf { tag, .. } => {
                tags.insert(
                    *tag,
                    TagState::Bad("stream is already a block transfer".into()),
                );
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                let inner_ctx = LoopCtx {
                    var,
                    lo,
                    hi,
                    unit_step: *step == SExpr::int(1),
                };
                // A loop that communicates must pass the dependence gate
                // before any of its tags can qualify.
                let gate = has_direct_comm(inner).then(|| dependence_gate(s));
                for st in inner {
                    match st {
                        // Direct children qualify against this loop.
                        SStmt::Send { .. } | SStmt::Recv { .. } => match &gate {
                            Some(Err(reason)) => {
                                if let Some(t) = comm_tag(st) {
                                    tags.insert(t, TagState::Bad(reason.clone()));
                                }
                            }
                            _ => {
                                qualify(
                                    std::slice::from_ref(st),
                                    Some(&inner_ctx),
                                    tags,
                                    witnesses,
                                );
                                if let (Some(Ok(w)), Some(t)) = (&gate, comm_tag(st)) {
                                    witnesses.entry(t).or_insert_with(|| w.clone());
                                }
                            }
                        },
                        // One guard level is allowed for sends when the
                        // condition is loop-invariant.
                        SStmt::If { cond, then, els }
                            if els.is_empty()
                                && !mentions(cond, var)
                                && then.iter().all(|x| {
                                    matches!(x, SStmt::Send { .. } | SStmt::Let { .. })
                                }) =>
                        {
                            match &gate {
                                Some(Err(reason)) => {
                                    for x in then {
                                        if let Some(t) = comm_tag(x) {
                                            tags.insert(t, TagState::Bad(reason.clone()));
                                        }
                                    }
                                }
                                _ => {
                                    qualify(then, Some(&inner_ctx), tags, witnesses);
                                    if let Some(Ok(w)) = &gate {
                                        for x in then {
                                            if let Some(t) = comm_tag(x) {
                                                witnesses.entry(t).or_insert_with(|| w.clone());
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        other => qualify(std::slice::from_ref(other), None, tags, witnesses),
                    }
                }
            }
            SStmt::If { then, els, .. } => {
                qualify(then, None, tags, witnesses);
                qualify(els, None, tags, witnesses);
            }
            _ => {}
        }
    }
}

/// Does a loop body contain (at the allowed positions) any comm op with a
/// qualifying tag?
fn loop_has_good_comm(inner: &[SStmt], var: &str, good: &HashSet<u32>) -> bool {
    inner.iter().any(|s| match s {
        SStmt::Send { tag, .. } | SStmt::Recv { tag, .. } => good.contains(tag),
        SStmt::If { cond, then, els } if els.is_empty() && !mentions(cond, var) => then
            .iter()
            .any(|x| matches!(x, SStmt::Send { tag, .. } if good.contains(tag))),
        _ => false,
    })
}

fn rewrite(
    body: Vec<SStmt>,
    good: &HashSet<u32>,
    blk: i64,
    fresh: &mut u32,
) -> (Vec<SStmt>, usize) {
    let mut out = Vec::new();
    let mut count = 0;
    for s in body {
        match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } if step == SExpr::int(1) && loop_has_good_comm(&inner, &var, good) => {
                let (blocked, c) = block_loop(var, lo, hi, inner, good, blk, fresh);
                count += 1 + c;
                out.extend(blocked);
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                let (b, c) = rewrite(inner, good, blk, fresh);
                count += c;
                out.push(SStmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body: b,
                });
            }
            SStmt::If { cond, then, els } => {
                let (t, c1) = rewrite(then, good, blk, fresh);
                let (e, c2) = rewrite(els, good, blk, fresh);
                count += c1 + c2;
                out.push(SStmt::If {
                    cond,
                    then: t,
                    els: e,
                });
            }
            other => out.push(other),
        }
    }
    (out, count)
}

/// The core transformation of one element loop into a block loop.
#[allow(clippy::too_many_arguments)]
fn block_loop(
    var: String,
    lo: SExpr,
    hi: SExpr,
    inner: Vec<SStmt>,
    good: &HashSet<u32>,
    blk: i64,
    fresh: &mut u32,
) -> (Vec<SStmt>, usize) {
    *fresh += 1;
    let id = *fresh;
    let k = format!("$k{id}");
    let klo = format!("$klo{id}");
    let khi = format!("$khi{id}");
    let blk_len = || SExpr::var(khi.clone()).sub(SExpr::var(klo.clone()));

    // Collect the tags this loop receives and sends (in order).
    let mut recv_tags: Vec<(u32, SExpr)> = Vec::new(); // (tag, from)
    let mut send_tags: Vec<(u32, SExpr, Option<SExpr>)> = Vec::new(); // (tag, to, guard)
    for s in &inner {
        match s {
            SStmt::Recv { from, tag, .. }
                if good.contains(tag) && !recv_tags.iter().any(|(t, _)| t == tag) =>
            {
                recv_tags.push((*tag, from.clone()));
            }
            SStmt::Send { to, tag, .. }
                if good.contains(tag) && !send_tags.iter().any(|(t, _, _)| t == tag) =>
            {
                send_tags.push((*tag, to.clone(), None));
            }
            SStmt::If { cond, then, els } if els.is_empty() => {
                for x in then {
                    if let SStmt::Send { to, tag, .. } = x {
                        if good.contains(tag) && !send_tags.iter().any(|(t, _, _)| t == tag) {
                            send_tags.push((*tag, to.clone(), Some(cond.clone())));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Rewrite the element body: receives become buffer reads, sends
    // become buffer writes.
    let new_inner: Vec<SStmt> = inner
        .into_iter()
        .map(|s| rewrite_element(s, good, &var, &klo))
        .collect();

    let mut pre: Vec<SStmt> = Vec::new();
    for (tag, _) in &recv_tags {
        pre.push(SStmt::AllocBuf {
            buf: format!("$sb{tag}"),
            len: SExpr::int(blk),
        });
    }
    for (tag, _, _) in &send_tags {
        pre.push(SStmt::AllocBuf {
            buf: format!("$ss{tag}"),
            len: SExpr::int(blk),
        });
    }

    let mut kbody: Vec<SStmt> = vec![
        SStmt::Let {
            var: klo.clone(),
            value: lo.clone().add(SExpr::var(k.clone()).mul(SExpr::int(blk))),
        },
        SStmt::Let {
            var: khi.clone(),
            value: SExpr::var(klo.clone())
                .add(SExpr::int(blk - 1))
                .min(hi.clone()),
        },
    ];
    for (tag, from) in &recv_tags {
        kbody.push(SStmt::RecvBuf {
            from: from.clone(),
            tag: *tag,
            buf: format!("$sb{tag}"),
            lo: SExpr::int(0),
            hi: blk_len(),
        });
    }
    kbody.push(SStmt::For {
        var: var.clone(),
        lo: SExpr::var(klo.clone()),
        hi: SExpr::var(khi.clone()),
        step: SExpr::int(1),
        body: new_inner,
    });
    for (tag, to, guard) in &send_tags {
        let send = SStmt::SendBuf {
            to: to.clone(),
            tag: *tag,
            buf: format!("$ss{tag}"),
            lo: SExpr::int(0),
            hi: blk_len(),
        };
        kbody.push(match guard {
            Some(g) => SStmt::If {
                cond: g.clone(),
                then: vec![send],
                els: vec![],
            },
            None => send,
        });
    }

    pre.push(SStmt::For {
        var: k,
        lo: SExpr::int(0),
        hi: hi.clone().sub(lo.clone()).idiv(SExpr::int(blk)),
        step: SExpr::int(1),
        body: kbody,
    });
    (pre, 0)
}

fn rewrite_element(s: SStmt, good: &HashSet<u32>, var: &str, klo: &str) -> SStmt {
    match s {
        SStmt::Recv { from, tag, into } if good.contains(&tag) => {
            let RecvTarget::Var(t) = &into[0] else {
                unreachable!("qualified recv targets a var");
            };
            let _ = from;
            SStmt::Let {
                var: t.clone(),
                value: SExpr::BufRead {
                    buf: format!("$sb{tag}"),
                    idx: Box::new(SExpr::var(var).sub(SExpr::var(klo))),
                },
            }
        }
        SStmt::Send { to, tag, values } if good.contains(&tag) => {
            let _ = to;
            SStmt::BufWrite {
                buf: format!("$ss{tag}"),
                idx: SExpr::var(var).sub(SExpr::var(klo)),
                value: values.into_iter().next().expect("single-value send"),
            }
        }
        SStmt::If { cond, then, els } if els.is_empty() => SStmt::If {
            cond,
            then: then
                .into_iter()
                .map(|x| rewrite_element(x, good, var, klo))
                .collect(),
            els: vec![],
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_machine::CostModel;
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    /// P0 streams f(i) to P1 element-wise; P1 folds the stream.
    fn stream_program(n: i64) -> SpmdProgram {
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(n),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 9,
                values: vec![SExpr::var("i").mul(SExpr::var("i"))],
            }],
        }];
        let p1 = vec![
            SStmt::Let {
                var: "acc".into(),
                value: SExpr::int(0),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(n),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Recv {
                        from: SExpr::int(0),
                        tag: 9,
                        into: vec![RecvTarget::Var("x".into())],
                    },
                    SStmt::Let {
                        var: "acc".into(),
                        value: SExpr::var("acc").add(SExpr::var("x")),
                    },
                ],
            },
        ];
        SpmdProgram::new(vec![p0, p1])
    }

    fn run(prog: &SpmdProgram) -> (u64, Scalar) {
        let mut m = SpmdMachine::new(prog, CostModel::ipsc2()).unwrap();
        let out = m.run().unwrap();
        (
            out.report.stats.network.messages,
            m.vm(1).var("acc").unwrap(),
        )
    }

    #[test]
    fn blocks_reduce_messages_and_preserve_results() {
        let n = 10i64;
        let prog = stream_program(n);
        let (msgs0, acc0) = run(&prog);
        assert_eq!(msgs0, n as u64);
        for blk in [1usize, 2, 3, 4, 10, 16] {
            let (opt, loops) = strip_mine(&prog, blk);
            assert_eq!(loops, 2, "blk={blk}");
            let (msgs, acc) = run(&opt);
            assert_eq!(acc, acc0, "blk={blk}");
            assert_eq!(msgs, (n as u64).div_ceil(blk as u64), "blk={blk}");
        }
    }

    #[test]
    fn mismatched_ranges_disqualify() {
        let mut prog = stream_program(8);
        if let SStmt::For { hi, .. } = &mut prog.body_mut(1)[1] {
            *hi = SExpr::int(7);
        }
        let (opt, loops) = strip_mine(&prog, 4);
        assert_eq!(loops, 0);
        assert_eq!(opt, prog);
    }

    #[test]
    fn carried_dependence_without_forward_direction_blocks_blocking() {
        // P0's element loop carries a dependence whose distance is not a
        // fixed forward shift (write a[2j] against read a[j]): the
        // dependence gate must refuse to block the loop even though the
        // stream shape itself qualifies.
        let p0 = vec![SStmt::For {
            var: "j".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(8),
            step: SExpr::int(1),
            body: vec![
                SStmt::Let {
                    var: "w".into(),
                    value: SExpr::ARead {
                        array: "a".into(),
                        idx: vec![SExpr::var("j")],
                    },
                },
                SStmt::AWrite {
                    array: "a".into(),
                    idx: vec![SExpr::var("j").mul(SExpr::int(2))],
                    value: SExpr::var("w"),
                },
                SStmt::Send {
                    to: SExpr::int(1),
                    tag: 9,
                    values: vec![SExpr::var("w")],
                },
            ],
        }];
        let p1 = vec![SStmt::For {
            var: "j".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(8),
            step: SExpr::int(1),
            body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 9,
                into: vec![RecvTarget::Var("x".into())],
            }],
        }];
        let prog = SpmdProgram::new(vec![p0, p1]);
        let mut sink = RemarkSink::new();
        let (opt, loops) = strip_mine_with_remarks(&prog, 4, &mut sink);
        assert_eq!(loops, 0);
        assert_eq!(opt, prog);
        let missed: Vec<_> = sink
            .remarks()
            .iter()
            .filter(|r| r.kind == RemarkKind::Missed)
            .collect();
        assert_eq!(missed.len(), 1);
        assert!(
            missed[0].message.contains("dependence"),
            "reason should name the blocking dependence: {}",
            missed[0].message
        );
    }

    #[test]
    fn multi_value_sends_disqualify() {
        let mut prog = stream_program(8);
        if let SStmt::For { body, .. } = &mut prog.body_mut(0)[0] {
            if let SStmt::Send { values, .. } = &mut body[0] {
                values.push(SExpr::int(0));
            }
        }
        // Receiver shape no longer matters; the tag is poisoned.
        let (_, loops) = strip_mine(&prog, 4);
        assert_eq!(loops, 0);
    }
}
