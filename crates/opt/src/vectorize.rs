//! Message vectorization (Appendix A.2, *Optimized I*).
//!
//! An element-wise send loop of a **read-only** array — "it is
//! straightforward to recognize that these sends may be vectorized, since
//! the `Old` values do not change during the computation" — becomes a
//! buffer fill plus a single block send; every matching element receive
//! becomes one block receive before its loop plus buffer reads inside.
//!
//! Legality, checked per message tag across *all* processors:
//!
//! * every send of the tag has the shape
//!   `for w = lo to hi { t = is_read(B, idx); csend(tag, t, dst) }` with
//!   `B` never written anywhere in the program, unit step, and `dst`
//!   independent of `w`;
//! * every receive of the tag sits at the top level of a unit-step loop
//!   with the *same* `lo`/`hi` and a `w`-independent source;
//! * a tag that appears in any other position is left untouched.
//!
//! The read-only fact comes from the dependence framework
//! ([`pdc_depend::spmd::read_only_arrays`]): an array with no writes has
//! no dependences at all, so no ordering constraint can reach the
//! combined transfer. Applied remarks carry that witness.

use crate::canon::{canon_eq, mentions};
use pdc_depend::spmd::read_only_arrays;
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Per-tag qualification state.
#[derive(Debug, Clone)]
enum TagState {
    /// All occurrences so far fit the pattern with these loop bounds;
    /// `array` is the read-only array the send side streams (filled in
    /// once a send of the tag is seen).
    Ok {
        lo: SExpr,
        hi: SExpr,
        array: Option<String>,
    },
    /// Some occurrence disqualifies the tag (the reason why).
    Bad(&'static str),
}

/// Apply vectorization to every body; returns the rewritten program and
/// the number of send loops combined.
pub fn vectorize(prog: &SpmdProgram) -> (SpmdProgram, usize) {
    vectorize_with_remarks(prog, &mut RemarkSink::new())
}

/// [`vectorize`], additionally emitting one Applied or Missed remark per
/// message tag considered (remarks carry the tag; the driver resolves
/// tags to source spans).
pub fn vectorize_with_remarks(prog: &SpmdProgram, sink: &mut RemarkSink) -> (SpmdProgram, usize) {
    let read_only = read_only_arrays(prog);
    // Phase 1: qualify tags.
    let mut tags: BTreeMap<u32, TagState> = BTreeMap::new();
    for body in prog.bodies() {
        qualify(body, &read_only, &mut tags);
    }
    let good: HashSet<u32> = tags
        .iter()
        .filter_map(|(t, s)| match s {
            TagState::Ok { .. } => Some(*t),
            TagState::Bad(_) => None,
        })
        .collect();
    for (tag, state) in &tags {
        match state {
            TagState::Ok { array, .. } => {
                let mut r = Remark::new(
                    Phase::Vectorize,
                    RemarkKind::Applied,
                    "combined element-wise sends of a read-only array into one block transfer",
                )
                .with_tag(*tag);
                if let Some(a) = array {
                    r = r.detail("array", a.clone()).detail(
                        "witness",
                        format!("`{a}` is never written: no dependence reaches the stream"),
                    );
                }
                sink.emit(r);
            }
            TagState::Bad(reason) => {
                sink.emit(Remark::new(Phase::Vectorize, RemarkKind::Missed, *reason).with_tag(*tag))
            }
        }
    }
    if good.is_empty() {
        return (prog.clone(), 0);
    }
    // Phase 2: rewrite.
    let mut out = prog.clone();
    let mut count = 0;
    for body in out.bodies_mut() {
        let (new_body, c) = rewrite(std::mem::take(body), &read_only, &good);
        *body = new_body;
        count += c;
    }
    (out, count)
}

/// Positions `i` such that `body[i] = let t = is_read(B, …)` and
/// `body[i+1] = csend(tag, t, dst)` with `B` read-only and `dst`
/// independent of the loop variable. Returns `(position, tag, array)`
/// triples; the array name is the legality witness for the remark.
fn send_pairs(
    var: &str,
    body: &[SStmt],
    read_only: &BTreeSet<String>,
) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for i in 0..body.len().saturating_sub(1) {
        let SStmt::Let { var: t, value } = &body[i] else {
            continue;
        };
        let SExpr::ARead { array, .. } = value else {
            continue;
        };
        if !read_only.contains(array) {
            continue;
        }
        let SStmt::Send { to, tag, values } = &body[i + 1] else {
            continue;
        };
        if values.len() != 1 || values[0] != SExpr::var(t.clone()) || mentions(to, var) {
            continue;
        }
        out.push((i, *tag, array.clone()));
    }
    out
}

fn note(tags: &mut BTreeMap<u32, TagState>, tag: u32, lo: &SExpr, hi: &SExpr, array: Option<&str>) {
    match tags.get_mut(&tag) {
        None => {
            tags.insert(
                tag,
                TagState::Ok {
                    lo: lo.clone(),
                    hi: hi.clone(),
                    array: array.map(str::to_owned),
                },
            );
        }
        Some(TagState::Ok {
            lo: l0,
            hi: h0,
            array: a0,
        }) => {
            if a0.is_none() {
                *a0 = array.map(str::to_owned);
            }
            let (l0, h0) = (l0.clone(), h0.clone());
            if !canon_eq(&l0, lo) || !canon_eq(&h0, hi) {
                poison(tags, tag, "send and receive loop bounds differ");
            }
        }
        Some(TagState::Bad(_)) => {}
    }
}

fn poison(tags: &mut BTreeMap<u32, TagState>, tag: u32, reason: &'static str) {
    tags.insert(tag, TagState::Bad(reason));
}

fn qualify(body: &[SStmt], read_only: &BTreeSet<String>, tags: &mut BTreeMap<u32, TagState>) {
    for s in body {
        match s {
            SStmt::Send { tag, .. } => {
                poison(tags, *tag, "send is not inside a unit-step element loop")
            }
            SStmt::SendBuf { tag, .. } | SStmt::RecvBuf { tag, .. } => {
                poison(tags, *tag, "stream is already a block transfer")
            }
            SStmt::Recv { tag, .. } => {
                // A receive outside any loop.
                poison(tags, *tag, "receive is not inside a unit-step element loop")
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                // Qualifying (read; send) pairs of this loop.
                let pairs = if *step == SExpr::int(1) {
                    send_pairs(var, inner, read_only)
                } else {
                    Vec::new()
                };
                for (_, tag, array) in &pairs {
                    note(tags, *tag, lo, hi, Some(array));
                }
                let send_positions: HashSet<usize> = pairs.iter().map(|(i, _, _)| i + 1).collect();
                // Direct-child receives of this loop qualify.
                for (pos, st) in inner.iter().enumerate() {
                    match st {
                        SStmt::Recv { from, tag, into } => {
                            let shape_ok = *step == SExpr::int(1)
                                && into.len() == 1
                                && matches!(into[0], RecvTarget::Var(_))
                                && !mentions(from, var);
                            if shape_ok {
                                note(tags, *tag, lo, hi, None);
                            } else {
                                poison(
                                    tags,
                                    *tag,
                                    "receive shape not vectorizable (non-unit step, \
                                     multiple targets, or source depends on the loop variable)",
                                );
                            }
                        }
                        SStmt::Send { tag, .. } if !send_positions.contains(&pos) => poison(
                            tags,
                            *tag,
                            "send is not a (read-only array read; send) pair with a \
                             loop-independent destination",
                        ),
                        SStmt::Send { .. } => {}
                        other => qualify(std::slice::from_ref(other), read_only, tags),
                    }
                }
            }
            SStmt::If { then, els, .. } => {
                qualify(then, read_only, tags);
                qualify(els, read_only, tags);
            }
            _ => {}
        }
    }
}

fn rewrite(
    body: Vec<SStmt>,
    read_only: &BTreeSet<String>,
    good: &HashSet<u32>,
) -> (Vec<SStmt>, usize) {
    let mut out = Vec::new();
    let mut count = 0;
    for s in body {
        match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                // Replace qualifying (read; send) pairs with buffer fills;
                // block sends follow the loop.
                let pairs: Vec<(usize, u32, String)> = if step == SExpr::int(1) {
                    send_pairs(&var, &inner, read_only)
                        .into_iter()
                        .filter(|(_, t, _)| good.contains(t))
                        .collect()
                } else {
                    Vec::new()
                };
                let mut inner = inner;
                let mut post = Vec::new();
                // Apply back to front so positions stay valid.
                for (i, tag, _) in pairs.into_iter().rev() {
                    let SStmt::Let { value, .. } = inner[i].clone() else {
                        unreachable!("pair shape");
                    };
                    let SStmt::Send { to, .. } = inner[i + 1].clone() else {
                        unreachable!("pair shape");
                    };
                    let buf = format!("$vb{tag}");
                    out.push(SStmt::AllocBuf {
                        buf: buf.clone(),
                        len: hi.clone().sub(lo.clone()).add(SExpr::int(1)),
                    });
                    inner.splice(
                        i..=i + 1,
                        [SStmt::BufWrite {
                            buf: buf.clone(),
                            idx: SExpr::var(var.clone()).sub(lo.clone()),
                            value,
                        }],
                    );
                    post.insert(
                        0,
                        SStmt::SendBuf {
                            to,
                            tag,
                            buf,
                            lo: SExpr::int(0),
                            hi: hi.clone().sub(lo.clone()),
                        },
                    );
                    count += 1;
                }
                // Pull qualifying direct-child receives out of the loop.
                let mut pre = Vec::new();
                let mut new_inner = Vec::new();
                for st in inner {
                    match st {
                        SStmt::Recv { from, tag, into } if good.contains(&tag) => {
                            let RecvTarget::Var(t) = &into[0] else {
                                unreachable!("qualified recv has a var target");
                            };
                            let buf = format!("$rb{tag}");
                            if !pre
                                .iter()
                                .any(|p| matches!(p, SStmt::AllocBuf { buf: b, .. } if *b == buf))
                            {
                                pre.push(SStmt::AllocBuf {
                                    buf: buf.clone(),
                                    len: hi.clone().sub(lo.clone()).add(SExpr::int(1)),
                                });
                                pre.push(SStmt::RecvBuf {
                                    from: from.clone(),
                                    tag,
                                    buf: buf.clone(),
                                    lo: SExpr::int(0),
                                    hi: hi.clone().sub(lo.clone()),
                                });
                            }
                            new_inner.push(SStmt::Let {
                                var: t.clone(),
                                value: SExpr::BufRead {
                                    buf,
                                    idx: Box::new(SExpr::var(var.clone()).sub(lo.clone())),
                                },
                            });
                        }
                        other => {
                            let (rewritten, c) = rewrite(vec![other], read_only, good);
                            count += c;
                            new_inner.extend(rewritten);
                        }
                    }
                }
                out.extend(pre);
                out.push(SStmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body: new_inner,
                });
                out.extend(post);
            }
            SStmt::If { cond, then, els } => {
                let (t, c1) = rewrite(then, read_only, good);
                let (e, c2) = rewrite(els, read_only, good);
                count += c1 + c2;
                out.push(SStmt::If {
                    cond,
                    then: t,
                    els: e,
                });
            }
            other => out.push(other),
        }
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_machine::CostModel;
    use pdc_mapping::Dist;
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    /// P0 owns a read-only vector and sends 1..=n to P1 element-wise.
    fn element_program(n: i64) -> SpmdProgram {
        let p0 = vec![
            SStmt::AllocDist {
                array: "B".into(),
                rows: SExpr::int(1),
                cols: SExpr::int(n),
                dist: Dist::Replicated,
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(n),
                step: SExpr::int(1),
                body: vec![SStmt::AWrite {
                    array: "B".into(),
                    idx: vec![SExpr::var("i")],
                    value: SExpr::var("i").mul(SExpr::int(3)),
                }],
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(n),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Let {
                        var: "t".into(),
                        value: SExpr::ARead {
                            array: "B".into(),
                            idx: vec![SExpr::var("i")],
                        },
                    },
                    SStmt::Send {
                        to: SExpr::int(1),
                        tag: 5,
                        values: vec![SExpr::var("t")],
                    },
                ],
            },
        ];
        let p1 = vec![
            SStmt::Let {
                var: "acc".into(),
                value: SExpr::int(0),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(n),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Recv {
                        from: SExpr::int(0),
                        tag: 5,
                        into: vec![RecvTarget::Var("x".into())],
                    },
                    SStmt::Let {
                        var: "acc".into(),
                        value: SExpr::var("acc").add(SExpr::var("x")),
                    },
                ],
            },
        ];
        SpmdProgram::new(vec![p0, p1])
    }

    #[test]
    fn writer_array_blocks_vectorization() {
        // B is written in the same program (the fill loop) — but "read
        // only" means never the target of a write *after* we classify…
        // our conservative rule: any write anywhere disqualifies. So this
        // program must be left untouched.
        let prog = element_program(6);
        let (opt, n) = vectorize(&prog);
        assert_eq!(n, 0);
        assert_eq!(opt, prog);
    }

    /// Same as `element_program` but B is preloaded (never written in
    /// code) — the genuine `Old` situation.
    fn preloaded_program(n: i64) -> (SpmdProgram, pdc_istructure::IMatrix<Scalar>) {
        let mut prog = element_program(n);
        // Drop the alloc and fill from P0; B comes preloaded instead.
        let body0 = prog.body_mut(0);
        body0.drain(0..2);
        let mut data = pdc_istructure::IMatrix::new(1, n as usize);
        for j in 1..=n {
            data.write(1, j, Scalar::Int(j * 3)).unwrap();
        }
        (prog, data)
    }

    fn run_preloaded(prog: &SpmdProgram, data: &pdc_istructure::IMatrix<Scalar>) -> (u64, Scalar) {
        let mut m = SpmdMachine::new(prog, CostModel::ipsc2()).unwrap();
        m.preload_array("B", Dist::Replicated, data);
        let out = m.run().unwrap();
        (
            out.report.stats.network.messages,
            m.vm(1).var("acc").unwrap(),
        )
    }

    #[test]
    fn vectorize_combines_messages_and_preserves_result() {
        let n = 8i64;
        let (prog, data) = preloaded_program(n);
        let (base_msgs, base_acc) = run_preloaded(&prog, &data);
        assert_eq!(base_msgs, n as u64);
        let (opt, count) = vectorize(&prog);
        assert_eq!(count, 1);
        let (opt_msgs, opt_acc) = run_preloaded(&opt, &data);
        assert_eq!(opt_msgs, 1);
        assert_eq!(opt_acc, base_acc);
    }

    #[test]
    fn mismatched_bounds_disqualify() {
        let (mut prog, data) = preloaded_program(6);
        // Make the receiver loop run 1..=5 instead of 1..=6: tags no
        // longer align; the pass must leave everything alone.
        if let SStmt::For { hi, .. } = &mut prog.body_mut(1)[1] {
            *hi = SExpr::int(5);
        }
        let (opt, count) = vectorize(&prog);
        assert_eq!(count, 0);
        assert_eq!(opt, prog);
        let _ = data;
    }
}
