//! The optimization pipeline: the paper's Optimized I / II / III levels.

use crate::jam::jam_with_remarks;
use crate::strip::strip_mine_with_remarks;
use crate::vectorize::vectorize_with_remarks;
use pdc_report::RemarkSink;
use pdc_spmd::ir::SpmdProgram;
use std::fmt;

/// How far to optimize compile-time-resolution output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization: raw compile-time resolution.
    O0,
    /// *Optimized I*: vectorize read-only value streams (A.2).
    O1,
    /// *Optimized II*: + loop jamming — pipeline compute and send (A.3).
    O2,
    /// *Optimized III*: + strip mining with this block size (A.4).
    O3 {
        /// Rows per block of the pipelined new-value streams.
        blksize: usize,
    },
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "compile-time"),
            OptLevel::O1 => write!(f, "optimized I (vectorized)"),
            OptLevel::O2 => write!(f, "optimized II (jammed)"),
            OptLevel::O3 { blksize } => write!(f, "optimized III (blocked, b={blksize})"),
        }
    }
}

/// What the pipeline did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Send loops combined by vectorization.
    pub vectorized: usize,
    /// Producer/sender pairs fused by jamming.
    pub jammed: usize,
    /// Loops blocked by strip mining.
    pub stripped: usize,
}

/// Run the pipeline at the requested level.
pub fn optimize(prog: &SpmdProgram, level: OptLevel) -> (SpmdProgram, OptReport) {
    optimize_with_remarks(prog, level, &mut RemarkSink::new())
}

/// [`optimize`], additionally collecting each pass's Applied/Missed
/// remarks into `sink` (vectorize, then jam, then strip, as far as the
/// level runs them).
pub fn optimize_with_remarks(
    prog: &SpmdProgram,
    level: OptLevel,
    sink: &mut RemarkSink,
) -> (SpmdProgram, OptReport) {
    let mut report = OptReport::default();
    let mut out = prog.clone();
    if level == OptLevel::O0 {
        return (out, report);
    }
    let (v, n) = vectorize_with_remarks(&out, sink);
    out = v;
    report.vectorized = n;
    if level == OptLevel::O1 {
        return (out, report);
    }
    let (j, n) = jam_with_remarks(&out, sink);
    out = j;
    report.jammed = n;
    if level == OptLevel::O2 {
        return (out, report);
    }
    if let OptLevel::O3 { blksize } = level {
        let (s, n) = strip_mine_with_remarks(&out, blksize, sink);
        out = s;
        report.stripped = n;
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::driver::{self, Inputs, Job, Strategy};
    use pdc_core::programs;
    use pdc_machine::CostModel;
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    struct Run {
        msgs: u64,
        makespan: u64,
        ok: bool,
    }

    fn run_level(n: usize, s: usize, level: OptLevel) -> Run {
        let program = programs::gauss_seidel();
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let (opt, _) = optimize(&compiled.spmd, level);
        let mut m = SpmdMachine::new(&opt, CostModel::ipsc2()).unwrap();
        m.preset_var("n", Scalar::Int(n as i64));
        m.preload_array(
            "Old",
            pdc_mapping::Dist::ColumnCyclic,
            &driver::standard_input(n, n),
        );
        let out = m.run().unwrap();
        let gathered = m.gather("New").unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let seq = driver::run_sequential(&program, "gs_iteration", &inputs).unwrap();
        Run {
            msgs: out.report.stats.network.messages,
            makespan: out.report.stats.makespan().0,
            ok: driver::first_mismatch(&gathered, &seq).is_none() && out.report.undelivered == 0,
        }
    }

    #[test]
    fn all_levels_compute_the_right_answer() {
        for s in [2usize, 3, 4] {
            for level in [
                OptLevel::O0,
                OptLevel::O1,
                OptLevel::O2,
                OptLevel::O3 { blksize: 3 },
            ] {
                let r = run_level(10, s, level);
                assert!(r.ok, "wrong result at s={s}, {level}");
            }
        }
    }

    #[test]
    fn each_level_reduces_messages_or_time() {
        let n = 16usize;
        let s = 4usize;
        let o0 = run_level(n, s, OptLevel::O0);
        let o1 = run_level(n, s, OptLevel::O1);
        let o2 = run_level(n, s, OptLevel::O2);
        let o3 = run_level(n, s, OptLevel::O3 { blksize: 4 });
        // Vectorizing the old columns removes many messages.
        assert!(o1.msgs < o0.msgs, "O1 {} vs O0 {}", o1.msgs, o0.msgs);
        assert!(o1.makespan < o0.makespan);
        // Jamming keeps message count but improves the pipeline.
        assert_eq!(o2.msgs, o1.msgs);
        assert!(
            o2.makespan < o1.makespan,
            "O2 {} vs O1 {}",
            o2.makespan,
            o1.makespan
        );
        // Blocking trades a few pipeline stalls for far fewer messages.
        assert!(o3.msgs < o2.msgs);
        assert!(
            o3.makespan < o2.makespan,
            "O3 {} vs O2 {}",
            o3.makespan,
            o2.makespan
        );
    }
}
