//! Loop interchange (§4, closing paragraph).
//!
//! *"If the sequential version of Gauss-Seidel had had the i and j-loops
//! reversed then generated code would not have shown any parallelism, so
//! loop interchange would be required."*
//!
//! This pass operates on the *source* AST, before process decomposition:
//! it swaps perfectly nested counted loops so the iteration order aligns
//! with the data distribution (outer loop over the distributed
//! dimension).
//!
//! Legality is decided by the dependence framework
//! ([`pdc_depend::ast::analyze_for`]): a pair may be swapped only when
//! the analysis is *exact* and every dependence's direction vector stays
//! lexicographically positive after exchanging its two components —
//! a `(<, >)` dependence (e.g. `a[i, j] = a[i+1, j-1]`) blocks the
//! swap, and the Missed remark names that witnessing dependence. Under
//! strict sequential evaluation an illegal swap would read an array cell
//! before it is written; under Id Nouveau's dataflow semantics it would
//! deadlock. Header independence (the inner bounds do not mention the
//! outer variable, and vice versa) is additionally required so the
//! bounds themselves can move.

use pdc_lang::ast::{Block, Expr, ExprKind, Program, Stmt};
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};

/// Swap every outermost perfectly nested loop pair whose headers are
/// independent and whose dependences permit the exchange. Returns the
/// transformed program and the number of pairs swapped.
pub fn interchange(program: &Program) -> (Program, usize) {
    interchange_with_remarks(program, &mut RemarkSink::new())
}

/// [`interchange`], additionally emitting one Applied or Missed remark
/// per perfectly nested loop pair considered. This pass runs on the
/// source AST, so its remarks carry source spans directly.
pub fn interchange_with_remarks(program: &Program, sink: &mut RemarkSink) -> (Program, usize) {
    let mut count = 0;
    let mut out = program.clone();
    for proc in &mut out.procs {
        proc.body = interchange_block(std::mem::take(&mut proc.body), &mut count, sink);
    }
    (out, count)
}

fn expr_mentions(e: &Expr, v: &str) -> bool {
    match &e.kind {
        ExprKind::Var(w) => w == v,
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) => false,
        ExprKind::ArrayRead { indices, .. } => indices.iter().any(|i| expr_mentions(i, v)),
        ExprKind::Binary { lhs, rhs, .. } => expr_mentions(lhs, v) || expr_mentions(rhs, v),
        ExprKind::Unary { operand, .. } => expr_mentions(operand, v),
        ExprKind::Call { args, .. } => args.iter().any(|a| expr_mentions(a, v)),
        ExprKind::Alloc { dims } => dims.iter().any(|d| expr_mentions(d, v)),
    }
}

fn interchange_block(block: Block, count: &mut usize, sink: &mut RemarkSink) -> Block {
    let stmts = block
        .stmts
        .into_iter()
        .map(|s| interchange_stmt(s, count, sink))
        .collect();
    Block { stmts }
}

fn interchange_stmt(s: Stmt, count: &mut usize, sink: &mut RemarkSink) -> Stmt {
    match s {
        Stmt::For {
            var: v1,
            lo: lo1,
            hi: hi1,
            step: st1,
            body: b1,
            span: sp1,
        } => {
            // Perfect nest with independent headers?
            if b1.stmts.len() == 1 {
                if let Stmt::For {
                    var: v2,
                    lo: lo2,
                    hi: hi2,
                    step: st2,
                    body: b2,
                    span: sp2,
                } = b1.stmts[0].clone()
                {
                    let inner_independent = !expr_mentions(&lo2, &v1)
                        && !expr_mentions(&hi2, &v1)
                        && st2.as_ref().is_none_or(|e| !expr_mentions(e, &v1))
                        && !expr_mentions(&lo1, &v2)
                        && !expr_mentions(&hi1, &v2)
                        && st1.as_ref().is_none_or(|e| !expr_mentions(e, &v2));
                    if inner_independent {
                        // Headers can move; now ask the dependence
                        // framework whether the iteration reorder is
                        // legal for the values computed.
                        let nest = Stmt::For {
                            var: v1.clone(),
                            lo: lo1.clone(),
                            hi: hi1.clone(),
                            step: st1.clone(),
                            body: b1.clone(),
                            span: sp1,
                        };
                        let info = pdc_depend::ast::analyze_for(&nest);
                        if !info.exact {
                            let why = info
                                .notes
                                .first()
                                .cloned()
                                .unwrap_or_else(|| "subscripts are not analyzable".into());
                            sink.emit(
                                Remark::new(
                                    Phase::Interchange,
                                    RemarkKind::Missed,
                                    format!(
                                        "interchange of `{v1}`/`{v2}` not proven legal: \
                                         dependence analysis inexact"
                                    ),
                                )
                                .with_span(sp1)
                                .detail("reason", why),
                            );
                        } else if let Err(dep) = info.interchange_legal(0, 1) {
                            sink.emit(
                                Remark::new(
                                    Phase::Interchange,
                                    RemarkKind::Missed,
                                    format!(
                                        "interchange of `{v1}`/`{v2}` is illegal: \
                                         a dependence would be reversed"
                                    ),
                                )
                                .with_span(sp1)
                                .detail("blocking", dep.describe()),
                            );
                        } else {
                            *count += 1;
                            let witness = if info.deps.is_empty() {
                                "the nest carries no dependence".to_string()
                            } else {
                                let dirs: Vec<String> =
                                    info.deps.iter().map(|d| d.describe()).collect();
                                format!(
                                    "all direction vectors stay lexicographically positive \
                                     after the swap: {}",
                                    dirs.join("; ")
                                )
                            };
                            sink.emit(
                                Remark::new(
                                    Phase::Interchange,
                                    RemarkKind::Applied,
                                    format!("interchanged perfectly nested loops `{v1}`/`{v2}`"),
                                )
                                .with_span(sp1)
                                .detail("witness", witness),
                            );
                            // Do not recurse into the swapped pair (that
                            // would swap it back); only transform the body.
                            let body = interchange_block(b2, count, sink);
                            return Stmt::For {
                                var: v2,
                                lo: lo2,
                                hi: hi2,
                                step: st2,
                                body: Block {
                                    stmts: vec![Stmt::For {
                                        var: v1,
                                        lo: lo1,
                                        hi: hi1,
                                        step: st1,
                                        body,
                                        span: sp1,
                                    }],
                                },
                                span: sp2,
                            };
                        }
                    } else {
                        sink.emit(
                            Remark::new(
                                Phase::Interchange,
                                RemarkKind::Missed,
                                format!("loop headers of `{v1}`/`{v2}` are interdependent"),
                            )
                            .with_span(sp1),
                        );
                    }
                }
            }
            Stmt::For {
                var: v1,
                lo: lo1,
                hi: hi1,
                step: st1,
                body: interchange_block(b1, count, sink),
                span: sp1,
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        } => Stmt::If {
            cond,
            then_blk: interchange_block(then_blk, count, sink),
            else_blk: else_blk.map(|b| interchange_block(b, count, sink)),
            span,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_lang::interp::Interpreter;
    use pdc_lang::value::Value;
    use pdc_lang::{parse, pretty};

    #[test]
    fn swaps_perfect_nest() {
        let p = parse(
            "procedure f(n) {
                let a = matrix(n, n);
                for i = 2 to n do {
                    for j = 1 to n do { a[i, j] = i * 100 + j; }
                }
                return a[2, 1];
            }",
        )
        .unwrap();
        let (q, count) = interchange(&p);
        assert_eq!(count, 1);
        let printed = pretty::program(&q);
        let i_pos = printed.find("for j").unwrap();
        let j_pos = printed.find("for i").unwrap();
        assert!(i_pos < j_pos, "j loop should now be outermost:\n{printed}");
        // Same values either way.
        let a = Interpreter::new(&p).run("f", &[Value::Int(4)]).unwrap();
        let b = Interpreter::new(&q).run("f", &[Value::Int(4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dependent_headers_are_left_alone() {
        let p = parse(
            "procedure f(n) {
                let a = matrix(n, n);
                for i = 1 to n do {
                    for j = i to n do { a[i, j] = 1; }
                }
                return a[1, 1];
            }",
        )
        .unwrap();
        let (_, count) = interchange(&p);
        assert_eq!(count, 0);
    }

    #[test]
    fn imperfect_nests_are_left_alone() {
        let p = parse(
            "procedure f(n) {
                let a = vector(n);
                for i = 1 to n do {
                    a[i] = i;
                    for j = 1 to 0 do { }
                }
                return a[1];
            }",
        )
        .unwrap();
        let (_, count) = interchange(&p);
        assert_eq!(count, 0);
    }

    #[test]
    fn carried_anti_dependence_blocks_interchange() {
        // The headers are independent, so the old syntactic test would
        // have swapped this nest — but a[i, j] = a[i+1, j-1] carries an
        // anti dependence with direction (<, >): after a swap the write
        // to a[i+1, j-1] would happen before the read of the original
        // value. The dependence gate must refuse and name the witness.
        let p = parse(
            "procedure f(a, n) {
                for i = 1 to n - 1 do {
                    for j = 2 to n do { a[i, j] = a[i + 1, j - 1] + 1; }
                }
                return a[1, 2];
            }",
        )
        .unwrap();
        let mut sink = RemarkSink::new();
        let (q, count) = interchange_with_remarks(&p, &mut sink);
        assert_eq!(count, 0);
        assert_eq!(pretty::program(&q), pretty::program(&p));
        let blocking = sink
            .remarks()
            .iter()
            .find_map(|r| {
                r.details
                    .iter()
                    .find(|(k, _)| k == "blocking")
                    .map(|(_, v)| v.clone())
            })
            .expect("a Missed remark carries the blocking dependence");
        assert!(
            blocking.contains("anti") && blocking.contains("(<,>)"),
            "witness should be the (<,>) anti dependence: {blocking}"
        );
    }

    #[test]
    fn refused_interchange_is_load_bearing_under_strict_evaluation() {
        // a[i, j] = a[i-1, j+1] carries a flow dependence (<, >). The
        // original order runs clean on the strict interpreter; the
        // manually swapped order reads cells not yet written. The pass
        // refusing the swap is therefore observable behaviour, not
        // conservatism.
        let src = |outer: &str, inner: &str| {
            format!(
                "procedure f(n) {{
                    let a = matrix(n, n);
                    for k = 1 to n do {{ a[1, k] = k; }}
                    for k = 2 to n do {{ a[k, n] = k * 7; }}
                    for {outer} do {{
                        for {inner} do {{ a[i, j] = a[i - 1, j + 1]; }}
                    }}
                    return a[n, 1];
                }}"
            )
        };
        let orig = parse(&src("i = 2 to n", "j = 1 to n - 1")).unwrap();
        let swapped = parse(&src("j = 1 to n - 1", "i = 2 to n")).unwrap();
        let (_, count) = interchange(&orig);
        assert_eq!(count, 0, "the (<,>) flow dependence must block the swap");
        assert!(Interpreter::new(&orig).run("f", &[Value::Int(6)]).is_ok());
        assert!(
            Interpreter::new(&swapped)
                .run("f", &[Value::Int(6)])
                .is_err(),
            "swapped order must read an unwritten cell"
        );
    }

    #[test]
    fn applied_interchange_carries_its_witness() {
        let p = parse(
            "procedure f(n) {
                let a = matrix(n, n);
                for i = 2 to n do {
                    for j = 1 to n do { a[i, j] = i * 100 + j; }
                }
                return a[2, 1];
            }",
        )
        .unwrap();
        let mut sink = RemarkSink::new();
        let (_, count) = interchange_with_remarks(&p, &mut sink);
        assert_eq!(count, 1);
        let applied = sink
            .remarks()
            .iter()
            .find(|r| r.kind == RemarkKind::Applied)
            .unwrap();
        assert!(
            applied.details.iter().any(|(k, _)| k == "witness"),
            "applied remark must carry the legality witness"
        );
    }

    #[test]
    fn reversed_gauss_seidel_becomes_normal_order() {
        let (fixed, count) = interchange(&pdc_core::programs::gauss_seidel_interchanged());
        assert_eq!(count, 1);
        // Semantically identical to the original (both strict orders are
        // valid for this kernel).
        let inputs = |n: usize| {
            let m = Value::new_matrix(n, n);
            if let Value::Matrix(h) = &m {
                let mut h = h.borrow_mut();
                for i in 1..=n as i64 {
                    for j in 1..=n as i64 {
                        h.write(i, j, Value::Int(i + j)).unwrap();
                    }
                }
            }
            m
        };
        let a = Interpreter::new(&fixed)
            .run("gs_iteration", &[inputs(6), Value::Int(6)])
            .unwrap();
        let b = Interpreter::new(&pdc_core::programs::gauss_seidel())
            .run("gs_iteration", &[inputs(6), Value::Int(6)])
            .unwrap();
        assert_eq!(a, b);
    }
}
