//! Loop jamming (Appendix A.3, *Optimized II*): fuse the send of freshly
//! computed values into the loop that computes them.
//!
//! Compile-time resolution leaves the producer and the sender of a value
//! stream in *different* residue classes of the outer loop: the owner of
//! column `c` computes it at iteration `j = c` and ships it to the right
//! neighbour only at iteration `j = c + 1`. Jamming recognizes the pair
//!
//! ```text
//! if (j mod S == r₁) { for i { …; is_write(X, [i, e₁(j)], …); } }   // producer
//! if (j mod S == r₂) { for i { t = is_read(X, [i, e₂(j)]); csend(t, d); } }
//! ```
//!
//! solves `e₂(j+δ) = e₁(j)` for the constant shift `δ` — the flow
//! dependence distance computed by [`pdc_depend::spmd::flow_shift`] —
//! (and checks the residues agree under the same shift), then moves the
//! send into the producer loop — "new values are sent off as soon as they are computed"
//! — keeping a *remainder* copy of the original sender for the iterations
//! (boundary columns) whose values were produced elsewhere.

use crate::canon::{canon, shift_sexpr};
use pdc_depend::spmd::flow_shift;
use pdc_mapping::Affine;
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{SBinOp, SExpr, SStmt, SpmdProgram};
use std::collections::BTreeSet;

/// One successful fusion: tag, iteration shift, residue modulus.
type Fused = (u32, i64, i64);

/// Apply jamming to every body; returns the rewritten program and the
/// number of streams fused.
pub fn jam(prog: &SpmdProgram) -> (SpmdProgram, usize) {
    jam_with_remarks(prog, &mut RemarkSink::new())
}

/// [`jam`], additionally emitting an Applied remark per fused stream
/// (with the solved shift and residue modulus) and a Missed remark per
/// sender-shaped candidate that found no compatible producer.
pub fn jam_with_remarks(prog: &SpmdProgram, sink: &mut RemarkSink) -> (SpmdProgram, usize) {
    let mut out = prog.clone();
    let mut count = 0;
    let mut fused: Vec<Fused> = Vec::new();
    for body in out.bodies_mut() {
        let (b, c) = jam_body(std::mem::take(body), &mut fused);
        *body = b;
        count += c;
    }
    fused.sort_unstable();
    fused.dedup();
    let fused_tags: BTreeSet<u32> = fused.iter().map(|(t, _, _)| *t).collect();
    for (tag, delta, modulus) in &fused {
        sink.emit(
            Remark::new(
                Phase::Jam,
                RemarkKind::Applied,
                "fused value send into its producing loop (sent as soon as computed)",
            )
            .with_tag(*tag)
            .detail("shift", delta)
            .detail("modulus", modulus)
            .detail(
                "witness",
                format!(
                    "flow dependence with distance {delta} along the jammed loop \
                     links the producing write to the streamed read"
                ),
            ),
        );
    }
    // Sender-shaped candidates in the *input* that no fusion consumed.
    let mut missed: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    for body in prog.bodies() {
        scan_missed(body, &fused_tags, &mut missed);
    }
    for (tag, reason) in missed {
        sink.emit(Remark::new(Phase::Jam, RemarkKind::Missed, reason).with_tag(tag));
    }
    (out, count)
}

/// Collect sender-shaped blocks (direct children of loop bodies, where
/// `jam_loop` looks) whose tags were never fused, with a diagnosis.
fn scan_missed(body: &[SStmt], fused: &BTreeSet<u32>, out: &mut BTreeSet<(u32, &'static str)>) {
    for s in body {
        match s {
            SStmt::For { body: inner, .. } => {
                for st in inner {
                    if let Some(sender) = as_sender(st) {
                        if !fused.contains(&sender.tag) {
                            let reason = if parse_residue(&sender.guard).is_none() {
                                "sender guard is not a residue test"
                            } else {
                                "no producer computes the sent values in the same loop \
                                 body with an agreeing guard and constant shift"
                            };
                            out.insert((sender.tag, reason));
                        }
                    }
                }
                scan_missed(inner, fused, out);
            }
            SStmt::If { then, els, .. } => {
                scan_missed(then, fused, out);
                scan_missed(els, fused, out);
            }
            _ => {}
        }
    }
}

fn jam_body(body: Vec<SStmt>, fused: &mut Vec<Fused>) -> (Vec<SStmt>, usize) {
    let mut count = 0;
    let body = body
        .into_iter()
        .map(|s| match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body: inner,
            } => {
                let (inner, c1) = jam_body(inner, fused);
                let (inner, c2) = jam_loop(&var, &lo, &hi, inner, fused);
                count += c1 + c2;
                SStmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner,
                }
            }
            SStmt::If { cond, then, els } => {
                let (t, c1) = jam_body(then, fused);
                let (e, c2) = jam_body(els, fused);
                count += c1 + c2;
                SStmt::If {
                    cond,
                    then: t,
                    els: e,
                }
            }
            other => other,
        })
        .collect();
    (body, count)
}

/// A residue guard `base ≡ r (mod m)` in normalized form: the base affine
/// with its constant folded into the residue.
fn parse_residue(e: &SExpr) -> Option<(Affine, i64, i64)> {
    let SExpr::Bin(SBinOp::Eq, lhs, rhs) = e else {
        return None;
    };
    let SExpr::Bin(SBinOp::Mod, base, m) = &**lhs else {
        return None;
    };
    let SExpr::Int(m) = &**m else {
        return None;
    };
    let SExpr::Int(r) = &**rhs else {
        return None;
    };
    let crate::canon::Canon::Aff(a) = canon(base)? else {
        return None;
    };
    let c = a.constant_part();
    Some((a.offset(-c), *m, (r - c).rem_euclid(*m)))
}

/// Identify a producer block: `if g { for w { … is_write(X, idx, …) … } }`
/// with exactly one write. Returns (guard, inner loop index info).
struct Producer {
    guard: SExpr,
    inner_var: String,
    write_array: String,
    write_idx: Vec<SExpr>,
    /// Position of the write in the inner body.
    write_pos: usize,
    /// Position of the loop within the guarded block.
    for_pos: usize,
}

fn as_producer(s: &SStmt) -> Option<Producer> {
    let SStmt::If { cond, then, els } = s else {
        return None;
    };
    if !els.is_empty() {
        return None;
    }
    // The block may carry preludes inserted by vectorization (buffer
    // allocation, block receive); it must contain exactly one loop.
    let fors: Vec<(usize, &SStmt)> = then
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st, SStmt::For { .. }))
        .collect();
    let [(
        for_pos,
        SStmt::For {
            var, body: inner, ..
        },
    )] = fors.as_slice()
    else {
        return None;
    };
    let for_pos = *for_pos;
    let writes: Vec<(usize, &SStmt)> = inner
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st, SStmt::AWrite { .. }))
        .collect();
    let [(write_pos, SStmt::AWrite { array, idx, .. })] = writes.as_slice() else {
        return None;
    };
    Some(Producer {
        guard: cond.clone(),
        inner_var: var.clone(),
        write_array: array.clone(),
        write_idx: idx.clone(),
        write_pos: *write_pos,
        for_pos,
    })
}

/// Identify a sender block: `if g { … for w { …; t = is_read(X, idx);
/// csend(tag, t, to); … } … }` — the (read; send) pair may sit among
/// other statements (e.g. a vectorized buffer fill sharing the loop).
struct Sender {
    guard: SExpr,
    inner_var: String,
    inner_lo: SExpr,
    inner_hi: SExpr,
    array: String,
    idx: Vec<SExpr>,
    to: SExpr,
    tag: u32,
    /// Position of the loop within the guarded block.
    for_pos: usize,
    /// Position of the `let` within the loop body (the send follows).
    pair_pos: usize,
}

fn as_sender(s: &SStmt) -> Option<Sender> {
    let SStmt::If { cond, then, els } = s else {
        return None;
    };
    if !els.is_empty() {
        return None;
    }
    let fors: Vec<(usize, &SStmt)> = then
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st, SStmt::For { .. }))
        .collect();
    let [(
        for_pos,
        SStmt::For {
            var,
            lo,
            hi,
            step,
            body: inner,
        },
    )] = fors.as_slice()
    else {
        return None;
    };
    if *step != SExpr::int(1) {
        return None;
    }
    for i in 0..inner.len().saturating_sub(1) {
        let SStmt::Let { var: t, value } = &inner[i] else {
            continue;
        };
        let SExpr::ARead { array, idx } = value else {
            continue;
        };
        let SStmt::Send { to, tag, values } = &inner[i + 1] else {
            continue;
        };
        if values.len() != 1 || values[0] != SExpr::var(t.clone()) {
            continue;
        }
        return Some(Sender {
            guard: cond.clone(),
            inner_var: var.clone(),
            inner_lo: lo.clone(),
            inner_hi: hi.clone(),
            array: array.clone(),
            idx: idx.clone(),
            to: to.clone(),
            tag: *tag,
            for_pos: *for_pos,
            pair_pos: i,
        });
    }
    None
}

/// Try to fuse producer/sender pairs among the top-level statements of
/// one outer loop body.
fn jam_loop(
    v: &str,
    olo: &SExpr,
    ohi: &SExpr,
    body: Vec<SStmt>,
    fused_info: &mut Vec<Fused>,
) -> (Vec<SStmt>, usize) {
    // Find one (producer, sender) pair; apply; repeat.
    let mut body = body;
    let mut fused = 0;
    'retry: loop {
        for si in 0..body.len() {
            let Some(sender) = as_sender(&body[si]) else {
                continue;
            };
            for pi in 0..body.len() {
                if pi == si {
                    continue;
                }
                let Some(prod) = as_producer(&body[pi]) else {
                    continue;
                };
                if prod.write_array != sender.array
                    || prod.inner_var != sender.inner_var
                    || prod.write_idx.len() != sender.idx.len()
                {
                    continue;
                }
                // Solve for the shift on every index dimension. The
                // dependence framework owns this computation: the shift
                // is the flow-dependence distance (in `v` iterations)
                // from the write feeding the stream to the read the
                // sender streams from.
                let Some(delta) = flow_shift(&prod.write_idx, &sender.idx, v) else {
                    continue;
                };
                if delta == 0 {
                    continue; // same iteration: nothing to pipeline
                }
                // Guards must agree under the shift.
                let (Some((ga, ma, ra)), Some((gb, mb, rb))) =
                    (parse_residue(&prod.guard), parse_residue(&sender.guard))
                else {
                    continue;
                };
                let shifted_base = gb.substitute(v, &Affine::var(v).offset(delta));
                let cb = shifted_base.constant_part();
                if ga != shifted_base.offset(-cb) || ma != mb || ra != (rb - cb).rem_euclid(ma) {
                    continue;
                }
                // All checks passed: fuse.
                apply_fusion(&mut body, pi, si, v, olo, ohi, delta, &prod, &sender);
                fused_info.push((sender.tag, delta, ma));
                fused += 1;
                continue 'retry;
            }
        }
        break;
    }
    (body, fused)
}

#[allow(clippy::too_many_arguments)]
fn apply_fusion(
    body: &mut [SStmt],
    pi: usize,
    si: usize,
    v: &str,
    olo: &SExpr,
    ohi: &SExpr,
    delta: i64,
    prod: &Producer,
    sender: &Sender,
) {
    // 1. Insert the send into the producer loop, right after the write,
    //    guarded so only iterations with an original counterpart send.
    let jam_var = format!("$jam{}", sender.tag);
    let send_now = vec![
        SStmt::Let {
            var: jam_var.clone(),
            value: SExpr::ARead {
                array: prod.write_array.clone(),
                idx: prod.write_idx.clone(),
            },
        },
        SStmt::Send {
            to: shift_sexpr(&sender.to, v, delta),
            tag: sender.tag,
            values: vec![SExpr::var(jam_var)],
        },
    ];
    // Original sender ran for v_s ∈ [olo, ohi]; producer iteration v
    // corresponds to v_s = v + delta.
    let validity = if delta > 0 {
        Some(SExpr::var(v).le(ohi.clone().sub(SExpr::int(delta))))
    } else {
        Some(SExpr::var(v).ge(olo.clone().sub(SExpr::int(delta))))
    };
    let send_now = match validity {
        Some(g) => vec![SStmt::If {
            cond: g,
            then: send_now,
            els: vec![],
        }],
        None => send_now,
    };
    if let SStmt::If { then, .. } = &mut body[pi] {
        if let SStmt::For { body: inner, .. } = &mut then[prod.for_pos] {
            let at = prod.write_pos + 1;
            for (k, stmt) in send_now.into_iter().enumerate() {
                inner.insert(at + k, stmt);
            }
        }
    }
    // 2. Restrict the original sender to the remainder iterations whose
    //    producing iteration v - delta falls outside the outer loop: the
    //    pair is removed from its loop and re-emitted in its own loop
    //    under a remainder guard (boundary columns produced elsewhere).
    let remainder_guard = if delta > 0 {
        SExpr::var(v).lt(olo.clone().add(SExpr::int(delta)))
    } else {
        SExpr::var(v).gt(ohi.clone().add(SExpr::int(delta)))
    };
    if let SStmt::If { then, .. } = &mut body[si] {
        let SStmt::For { body: inner, .. } = &mut then[sender.for_pos] else {
            unreachable!("sender loop position");
        };
        let pair: Vec<SStmt> = inner.drain(sender.pair_pos..=sender.pair_pos + 1).collect();
        let loop_now_empty = inner.is_empty();
        let remainder = SStmt::If {
            cond: remainder_guard,
            then: vec![SStmt::For {
                var: sender.inner_var.clone(),
                lo: sender.inner_lo.clone(),
                hi: sender.inner_hi.clone(),
                step: SExpr::int(1),
                body: pair,
            }],
            els: vec![],
        };
        if loop_now_empty {
            then[sender.for_pos] = remainder;
        } else {
            then.insert(sender.for_pos + 1, remainder);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> SExpr {
        SExpr::var("j")
    }

    #[test]
    fn parse_residue_normalizes_constants() {
        // (j - 1) mod 4 == 2  ≡  j mod 4 == 3
        let a =
            parse_residue(&j().sub(SExpr::int(1)).imod(SExpr::int(4)).eq(SExpr::int(2))).unwrap();
        let b = parse_residue(&j().imod(SExpr::int(4)).eq(SExpr::int(3))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_residue_guards_are_rejected() {
        assert!(parse_residue(&j().le(SExpr::int(3))).is_none());
        assert!(parse_residue(&j().imod(SExpr::int(4)).le(SExpr::int(2))).is_none());
    }

    // End-to-end behaviour of jamming on real compiled programs is
    // covered by the integration tests and the pipeline tests, which
    // verify both result equality and strictly improved makespan.
}
