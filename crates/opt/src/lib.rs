//! The message-passing optimizations of §4 and Appendix A.
//!
//! Compile-time resolution produces code that is specialized but
//! communicates one element per message; on an iPSC/2-class machine,
//! where message start-up dominates, that is disastrous. The paper
//! obtains the handwritten program's performance by applying three
//! classical transformations to the generated code:
//!
//! * **vectorization** ([`vectorize`]) — Appendix A.2, *Optimized I*:
//!   element-wise sends of a *read-only* array (the `Old` values, which
//!   "are not changed during the execution of the loop") combine into one
//!   message per column; the matching receives become one block receive;
//! * **loop jamming** ([`jam`]) — Appendix A.3, *Optimized II*: the
//!   send loop for freshly computed values fuses into the loop that
//!   computes them, so "new values are sent off as soon as they are
//!   computed" — this is what releases the wavefront parallelism;
//! * **strip mining** ([`strip_mine`]) — Appendix A.4, *Optimized III*:
//!   the fused compute/send loop is blocked so new values travel in
//!   blocks of `blksize`, "a compromise between decreasing the number of
//!   messages and exploiting parallelism";
//! * **loop interchange** ([`interchange`]) — §4's closing remark: a
//!   source program whose loops run against the distribution is
//!   interchanged so the iteration order aligns with the mapping.
//!
//! The first three are IR-to-IR passes applied *uniformly* to every
//! processor's code, which keeps both sides of each tagged communication
//! stream consistent. Each pass consults the exact dependence framework
//! in [`pdc_depend`] for its legality conditions and leaves non-matching
//! code untouched; [`OptReport`] records what fired, and every Applied or
//! Missed remark carries the witnessing legality fact (a direction
//! vector, a read-only proof, or the blocking dependence).

/// Canonical-form subscript algebra, re-exported from the dependence
/// framework so existing `pdc_opt::canon::…` paths keep working.
pub use pdc_depend::canon;
pub mod interchange;
pub mod jam;
pub mod pipeline;
pub mod strip;
pub mod vectorize;

pub use interchange::{interchange, interchange_with_remarks};
pub use jam::{jam, jam_with_remarks};
pub use pipeline::{optimize, optimize_with_remarks, OptLevel, OptReport};
pub use strip::{strip_mine, strip_mine_with_remarks};
pub use vectorize::{vectorize, vectorize_with_remarks};
