//! Property test: the pretty-printer emits source that re-parses to a
//! structurally identical AST, for *randomly generated* programs — far
//! beyond the hand-picked cases in the unit tests. (Deterministic
//! `pdc-testkit` cases; a failing case prints its seed for replay.)

use pdc_lang::ast::{BinOp, Block, Expr, ExprKind, Proc, Program, Stmt, UnOp};
use pdc_lang::{parse, pretty, Span};
use pdc_testkit::{cases, Rng};

fn leaf_expr(rng: &mut Rng) -> Expr {
    match rng.range_usize(0, 5) {
        0 => Expr::new(ExprKind::Int(rng.range_i64(0, 100)), Span::default()),
        1 => Expr::new(ExprKind::Bool(true), Span::default()),
        2 => Expr::new(ExprKind::Var("x".into()), Span::default()),
        3 => Expr::new(ExprKind::Var("y".into()), Span::default()),
        _ => Expr::new(
            ExprKind::ArrayRead {
                array: "a".into(),
                indices: vec![Expr::new(ExprKind::Var("x".into()), Span::default())],
            },
            Span::default(),
        ),
    }
}

fn arith_op(rng: &mut Rng) -> BinOp {
    *rng.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::FloorDiv,
        BinOp::Mod,
        BinOp::Min,
        BinOp::Max,
    ])
}

fn random_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(1, 3) {
        return leaf_expr(rng);
    }
    if rng.chance(3, 4) {
        Expr::new(
            ExprKind::Binary {
                op: arith_op(rng),
                lhs: Box::new(random_expr(rng, depth - 1)),
                rhs: Box::new(random_expr(rng, depth - 1)),
            },
            Span::default(),
        )
    } else {
        Expr::new(
            ExprKind::Unary {
                op: UnOp::Neg,
                operand: Box::new(random_expr(rng, depth - 1)),
            },
            Span::default(),
        )
    }
}

fn random_stmt(rng: &mut Rng) -> Stmt {
    if rng.bool() {
        Stmt::Let {
            name: format!("t{}", rng.range_usize(0, 10)),
            init: random_expr(rng, 4),
            span: Span::default(),
        }
    } else {
        Stmt::ArrayWrite {
            array: "a".into(),
            indices: vec![random_expr(rng, 4)],
            value: random_expr(rng, 4),
            span: Span::default(),
        }
    }
}

fn random_program(rng: &mut Rng) -> Program {
    let body: Vec<Stmt> = (0..rng.range_usize(1, 6))
        .map(|_| random_stmt(rng))
        .collect();
    // Wrap in a loop and a conditional so control flow round-trips too.
    let looped = Stmt::For {
        var: "x".into(),
        lo: Expr::new(ExprKind::Int(1), Span::default()),
        hi: Expr::new(ExprKind::Var("n".into()), Span::default()),
        step: None,
        body: Block { stmts: body },
        span: Span::default(),
    };
    let cond = Stmt::If {
        cond: Expr::new(
            ExprKind::Binary {
                op: BinOp::Lt,
                lhs: Box::new(Expr::new(ExprKind::Var("n".into()), Span::default())),
                rhs: Box::new(Expr::new(ExprKind::Int(10), Span::default())),
            },
            Span::default(),
        ),
        then_blk: Block {
            stmts: vec![looped],
        },
        else_blk: None,
        span: Span::default(),
    };
    Program {
        map_decls: vec![],
        procs: vec![Proc {
            name: "main".into(),
            params: vec!["n".into(), "y".into(), "a".into()],
            body: Block {
                stmts: vec![
                    cond,
                    Stmt::Return {
                        value: Expr::new(ExprKind::Var("n".into()), Span::default()),
                        span: Span::default(),
                    },
                ],
            },
            span: Span::default(),
        }],
    }
}

/// Erase spans so structural comparison ignores positions.
fn normalize(p: &Program) -> String {
    let s = format!("{p:?}");
    let mut out = String::new();
    let mut rest = s.as_str();
    while let Some(pos) = rest.find("Span {") {
        out.push_str(&rest[..pos]);
        out.push_str("Span{_}");
        match rest[pos..].find('}') {
            Some(close) => rest = &rest[pos + close + 1..],
            None => {
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// Note: the generated AST may not pass the *checker* (e.g. `x` used
/// as a scalar and a loop variable), so we only require that printing
/// and re-lexing/parsing preserve structure, using the unchecked
/// parser.
#[test]
fn print_then_parse_is_identity() {
    cases(128, "print_then_parse_is_identity", |rng| {
        let program = random_program(rng);
        let printed = pretty::program(&program);
        let reparsed = pdc_lang::parser::parse_unchecked(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            normalize(&program),
            normalize(&reparsed),
            "printed:\n{printed}"
        );
    });
}

/// Checked parse of its own output: programs that pass the checker
/// keep passing it after a print/parse cycle.
#[test]
fn checked_programs_stay_checked() {
    cases(128, "checked_programs_stay_checked", |rng| {
        let program = random_program(rng);
        let printed = pretty::program(&program);
        if let Ok(first) = parse(&printed) {
            let printed2 = pretty::program(&first);
            let second = parse(&printed2).expect("second parse");
            assert_eq!(normalize(&first), normalize(&second));
        }
    });
}
