//! Property test: the pretty-printer emits source that re-parses to a
//! structurally identical AST, for *randomly generated* programs — far
//! beyond the hand-picked cases in the unit tests.

use pdc_lang::ast::{BinOp, Block, Expr, ExprKind, Proc, Program, Stmt, UnOp};
use pdc_lang::{parse, pretty, Span};
use proptest::prelude::*;

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..100).prop_map(|v| Expr::new(ExprKind::Int(v), Span::default())),
        Just(Expr::new(ExprKind::Bool(true), Span::default())),
        Just(Expr::new(ExprKind::Var("x".into()), Span::default())),
        Just(Expr::new(ExprKind::Var("y".into()), Span::default())),
        Just(Expr::new(
            ExprKind::ArrayRead {
                array: "a".into(),
                indices: vec![Expr::new(ExprKind::Var("x".into()), Span::default())],
            },
            Span::default()
        )),
    ]
}

fn arith_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::FloorDiv),
        Just(BinOp::Mod),
        Just(BinOp::Min),
        Just(BinOp::Max),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (arith_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                },
                Span::default()
            )),
            inner.clone().prop_map(|e| Expr::new(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(e)
                },
                Span::default()
            )),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let assign = (expr_strategy(), "t[0-9]").prop_map(|(e, name)| Stmt::Let {
        name,
        init: e,
        span: Span::default(),
    });
    let write = (expr_strategy(), expr_strategy()).prop_map(|(ix, v)| Stmt::ArrayWrite {
        array: "a".into(),
        indices: vec![ix],
        value: v,
        span: Span::default(),
    });
    prop_oneof![assign, write]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(stmt_strategy(), 1..6).prop_map(|body| {
        // Wrap in a loop and a conditional so control flow round-trips too.
        let looped = Stmt::For {
            var: "x".into(),
            lo: Expr::new(ExprKind::Int(1), Span::default()),
            hi: Expr::new(ExprKind::Var("n".into()), Span::default()),
            step: None,
            body: Block { stmts: body },
            span: Span::default(),
        };
        let cond = Stmt::If {
            cond: Expr::new(
                ExprKind::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::new(ExprKind::Var("n".into()), Span::default())),
                    rhs: Box::new(Expr::new(ExprKind::Int(10), Span::default())),
                },
                Span::default(),
            ),
            then_blk: Block {
                stmts: vec![looped],
            },
            else_blk: None,
            span: Span::default(),
        };
        Program {
            map_decls: vec![],
            procs: vec![Proc {
                name: "main".into(),
                params: vec!["n".into(), "y".into(), "a".into()],
                body: Block {
                    stmts: vec![
                        cond,
                        Stmt::Return {
                            value: Expr::new(ExprKind::Var("n".into()), Span::default()),
                            span: Span::default(),
                        },
                    ],
                },
                span: Span::default(),
            }],
        }
    })
}

/// Erase spans so structural comparison ignores positions.
fn normalize(p: &Program) -> String {
    let s = format!("{p:?}");
    let mut out = String::new();
    let mut rest = s.as_str();
    while let Some(pos) = rest.find("Span {") {
        out.push_str(&rest[..pos]);
        out.push_str("Span{_}");
        match rest[pos..].find('}') {
            Some(close) => rest = &rest[pos + close + 1..],
            None => {
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Note: the generated AST may not pass the *checker* (e.g. `x` used
    /// as a scalar and a loop variable), so we only require that printing
    /// and re-lexing/parsing preserve structure, using the unchecked
    /// parser.
    #[test]
    fn print_then_parse_is_identity(program in program_strategy()) {
        let printed = pretty::program(&program);
        let reparsed = pdc_lang::parser::parse_unchecked(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(normalize(&program), normalize(&reparsed), "printed:\n{}", printed);
    }

    /// Checked parse of its own output: programs that pass the checker
    /// keep passing it after a print/parse cycle.
    #[test]
    fn checked_programs_stay_checked(program in program_strategy()) {
        let printed = pretty::program(&program);
        if let Ok(first) = parse(&printed) {
            let printed2 = pretty::program(&first);
            let second = parse(&printed2).expect("second parse");
            prop_assert_eq!(normalize(&first), normalize(&second));
        }
    }
}
