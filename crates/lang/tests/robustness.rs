//! Robustness: the front end never panics, whatever bytes it is fed —
//! every failure is a structured `LangError` with a usable span.
//! (Deterministic `pdc-testkit` cases; a failing case prints its seed
//! for replay.)

use pdc_lang::{lexer::lex, parse, LangError};
use pdc_testkit::{cases, Rng};

const SOUP_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyz0123456789(){}[];:=+-*/<>, \n";

fn keyword_soup(rng: &mut Rng) -> String {
    const WORDS: [&str; 24] = [
        "procedure",
        "let",
        "for",
        "to",
        "do",
        "if",
        "then",
        "else",
        "return",
        "map",
        "matrix",
        "vector",
        "x",
        "42",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        "=",
        "+",
        ",",
    ];
    let n = rng.range_usize(0, 40);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.range_usize(0, WORDS.len())]);
    }
    out
}

/// Lexing arbitrary strings returns Ok or a Lex error — never panics,
/// and error spans always lie within the input.
#[test]
fn lexer_total_on_arbitrary_input() {
    cases(512, "lexer_total_on_arbitrary_input", |rng| {
        let src = rng.unicode_string(200);
        match lex(&src) {
            Ok(tokens) => {
                for t in tokens {
                    assert!(t.span.start <= t.span.end);
                    assert!(t.span.end <= src.len());
                }
            }
            Err(LangError::Lex { span, .. }) => {
                assert!(span.start <= src.len());
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    });
}

/// Parsing arbitrary token soup never panics.
#[test]
fn parser_total_on_arbitrary_input() {
    cases(512, "parser_total_on_arbitrary_input", |rng| {
        let alphabet: Vec<char> = SOUP_ALPHABET.chars().collect();
        let src = rng.string_from(&alphabet, 200);
        let _ = parse(&src); // any Err is fine; panics are not
    });
}

/// Parsing arbitrary keyword soup never panics either.
#[test]
fn parser_total_on_keyword_soup() {
    cases(512, "parser_total_on_keyword_soup", |rng| {
        let src = keyword_soup(rng);
        let _ = parse(&src);
    });
}

/// Error rendering (line/column resolution) is total for any span the
/// front end produces.
#[test]
fn error_rendering_is_total() {
    cases(512, "error_rendering_is_total", |rng| {
        let src = rng.unicode_string(120);
        if let Err(e) = parse(&src) {
            let rendered = e.render(&src);
            assert!(!rendered.is_empty());
        }
    });
}

/// Deterministic torture inputs that have bitten real parsers.
#[test]
fn parser_handles_pathological_inputs() {
    let cases = [
        "",
        "procedure",
        "procedure f(",
        "procedure f() {",
        "procedure f() { let x = ; }",
        "procedure f() { for i = 1 to do { } }",
        "map { }",
        "map { A : ; }",
        "procedure f() { return ((((((1)))))); }",
        "procedure f() { return 9223372036854775807; }",
        "procedure f() { return 99999999999999999999999999; }", // overflow
        "🦀🦀🦀",
        "procedure f() { let a = matrix(1, 2, 3); return 0; }",
    ];
    for src in cases {
        let _ = parse(src); // must not panic
    }
}

/// Deeply nested expressions either parse (within the documented limit)
/// or fail with a clean depth error — never a stack overflow.
#[test]
fn deep_nesting_parses_or_errors_cleanly() {
    // Within the limit: parses.
    let mut expr = String::from("1");
    for _ in 0..50 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("procedure f() {{ return {expr}; }}");
    assert!(parse(&src).is_ok(), "depth-50 expression should parse");

    // Far beyond the limit: a structured error, not a crash.
    let mut expr = String::from("1");
    for _ in 0..2_000 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("procedure f() {{ return {expr}; }}");
    let err = parse(&src).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"));
}
