//! Robustness: the front end never panics, whatever bytes it is fed —
//! every failure is a structured `LangError` with a usable span.

use pdc_lang::{lexer::lex, parse, LangError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lexing arbitrary strings returns Ok or a Lex error — never panics,
    /// and error spans always lie within the input.
    #[test]
    fn lexer_total_on_arbitrary_input(src in ".{0,200}") {
        match lex(&src) {
            Ok(tokens) => {
                for t in tokens {
                    prop_assert!(t.span.start <= t.span.end);
                    prop_assert!(t.span.end <= src.len());
                }
            }
            Err(LangError::Lex { span, .. }) => {
                prop_assert!(span.start <= src.len());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// Parsing arbitrary token soup never panics.
    #[test]
    fn parser_total_on_arbitrary_input(src in "[a-z0-9(){}\\[\\];:=+\\-*/<>, \n]{0,200}") {
        let _ = parse(&src); // any Err is fine; panics are not
    }

    /// Parsing arbitrary keyword soup never panics either.
    #[test]
    fn parser_total_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("procedure"), Just("let"), Just("for"), Just("to"),
                Just("do"), Just("if"), Just("then"), Just("else"),
                Just("return"), Just("map"), Just("matrix"), Just("vector"),
                Just("x"), Just("42"), Just("("), Just(")"), Just("{"),
                Just("}"), Just("["), Just("]"), Just(";"), Just("="),
                Just("+"), Just(","),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// Error rendering (line/column resolution) is total for any span the
    /// front end produces.
    #[test]
    fn error_rendering_is_total(src in ".{0,120}") {
        if let Err(e) = parse(&src) {
            let rendered = e.render(&src);
            prop_assert!(!rendered.is_empty());
        }
    }
}

/// Deterministic torture inputs that have bitten real parsers.
#[test]
fn parser_handles_pathological_inputs() {
    let cases = [
        "",
        "procedure",
        "procedure f(",
        "procedure f() {",
        "procedure f() { let x = ; }",
        "procedure f() { for i = 1 to do { } }",
        "map { }",
        "map { A : ; }",
        "procedure f() { return ((((((1)))))); }",
        "procedure f() { return 9223372036854775807; }",
        "procedure f() { return 99999999999999999999999999; }", // overflow
        "🦀🦀🦀",
        "procedure f() { let a = matrix(1, 2, 3); return 0; }",
    ];
    for src in cases {
        let _ = parse(src); // must not panic
    }
}

/// Deeply nested expressions either parse (within the documented limit)
/// or fail with a clean depth error — never a stack overflow.
#[test]
fn deep_nesting_parses_or_errors_cleanly() {
    // Within the limit: parses.
    let mut expr = String::from("1");
    for _ in 0..50 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("procedure f() {{ return {expr}; }}");
    assert!(parse(&src).is_ok(), "depth-50 expression should parse");

    // Far beyond the limit: a structured error, not a crash.
    let mut expr = String::from("1");
    for _ in 0..2_000 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("procedure f() {{ return {expr}; }}");
    let err = parse(&src).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"));
}
