//! Front end for a first-order subset of **Id Nouveau**, the source
//! language of the paper (§2.1): a functional language augmented with
//! *I-structures* — write-once arrays that separate allocation from
//! element definition.
//!
//! The subset covers everything the paper's programs use:
//!
//! * procedures with parameters and recursion;
//! * `let` bindings and single-assignment scalar definitions;
//! * `for v = lo to hi [by step] do { … }` counted loops;
//! * `if/then/else`;
//! * 1-D (`vector(n)`) and 2-D (`matrix(n,m)`) I-structure allocation,
//!   element definition `A[i,j] = e` and reads `A[i,j]` with the paper's
//!   run-time error semantics (double write, read of undefined);
//! * integer and floating-point arithmetic, `mod`/`div` (Euclidean),
//!   comparisons, `min`/`max`, boolean connectives.
//!
//! An optional `map { … }` header carries the *domain decomposition* in
//! source form (the italicized portion of the paper's Figure 1); the
//! compiler in `pdc-core` combines it with a machine size to build a
//! `pdc_mapping::Decomposition`.
//!
//! The crate also contains a reference **sequential interpreter**
//! ([`interp::Interpreter`]) — the semantics against which every compiled
//! SPMD program is checked in the test suite.
//!
//! # Examples
//!
//! ```
//! use pdc_lang::{parse, interp::Interpreter, value::Value};
//!
//! let src = r#"
//!     procedure main(n) {
//!         let a = vector(n);
//!         for i = 1 to n do { a[i] = i * i; }
//!         return a[n];
//!     }
//! "#;
//! let program = parse(src)?;
//! let mut interp = Interpreter::new(&program);
//! let result = interp.run("main", &[Value::Int(5)])?;
//! assert_eq!(result, Value::Int(25));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod check;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod value;

pub use ast::{BinOp, Block, Expr, MapDecl, Proc, Program, Stmt, UnOp};
pub use check::check_all;
pub use error::LangError;
pub use parser::{parse, parse_unchecked};
pub use span::Span;
