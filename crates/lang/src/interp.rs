//! The reference sequential interpreter.
//!
//! This defines the meaning of the source program independent of any
//! machine: the test suite compares every compiled SPMD execution against
//! results produced here (gathered distributed arrays must equal the
//! sequential arrays element for element).

use crate::ast::*;
use crate::error::LangError;
use crate::span::Span;
use crate::value::Value;
use std::collections::HashMap;

/// Default recursion-depth limit.
const MAX_CALL_DEPTH: usize = 512;

/// Outcome of executing a statement sequence.
enum Flow {
    /// Fell through normally.
    Normal,
    /// A `return` fired with this value.
    Returned(Value),
}

/// The sequential interpreter for one [`Program`].
///
/// # Examples
///
/// ```
/// use pdc_lang::{parse, interp::Interpreter, value::Value};
///
/// let program = parse("procedure sq(x) { return x * x; }")?;
/// let mut interp = Interpreter::new(&program);
/// assert_eq!(interp.run("sq", &[Value::Int(7)])?, Value::Int(49));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interpreter<'a> {
    program: &'a Program,
    depth: usize,
    steps: u64,
    step_budget: u64,
}

impl<'a> Interpreter<'a> {
    /// An interpreter over `program` with a generous default step budget.
    pub fn new(program: &'a Program) -> Self {
        Interpreter {
            program,
            depth: 0,
            steps: 0,
            step_budget: u64::MAX,
        }
    }

    /// Bound the number of executed statements/expressions (guards tests
    /// against accidental non-termination).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Statements/expressions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Call procedure `name` with `args`.
    ///
    /// # Errors
    ///
    /// [`LangError::Runtime`] for dynamic type errors, bad loop steps,
    /// recursion or step-budget overflow, unknown procedures;
    /// [`LangError::IStructure`] for double writes and reads of undefined
    /// elements.
    pub fn run(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        let proc = self.program.proc(name).ok_or_else(|| LangError::Runtime {
            message: format!("unknown procedure `{name}`"),
            span: Span::default(),
        })?;
        if proc.params.len() != args.len() {
            return Err(LangError::Runtime {
                message: format!(
                    "`{name}` takes {} argument(s), {} given",
                    proc.params.len(),
                    args.len()
                ),
                span: proc.span,
            });
        }
        if self.depth >= MAX_CALL_DEPTH {
            return Err(LangError::Runtime {
                message: format!("recursion depth limit ({MAX_CALL_DEPTH}) exceeded"),
                span: proc.span,
            });
        }
        self.depth += 1;
        let mut env = Env::new();
        env.push_frame();
        for (p, a) in proc.params.iter().zip(args) {
            env.bind(p.clone(), a.clone());
        }
        let flow = self.exec_block(&proc.body, &mut env);
        self.depth -= 1;
        match flow? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Unit),
        }
    }

    fn charge(&mut self, span: Span) -> Result<(), LangError> {
        self.steps += 1;
        if self.steps > self.step_budget {
            return Err(LangError::Runtime {
                message: format!("step budget of {} exceeded", self.step_budget),
                span,
            });
        }
        Ok(())
    }

    fn exec_block(&mut self, block: &Block, env: &mut Env) -> Result<Flow, LangError> {
        env.push_frame();
        for stmt in &block.stmts {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                returned => {
                    env.pop_frame();
                    return Ok(returned);
                }
            }
        }
        env.pop_frame();
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) -> Result<Flow, LangError> {
        self.charge(stmt.span())?;
        match stmt {
            Stmt::Let { name, init, .. } => {
                let v = self.eval(init, env)?;
                env.bind(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                span,
            } => {
                let idx = self.eval_indices(indices, env)?;
                let val = self.eval(value, env)?;
                if !val.is_scalar() {
                    return Err(LangError::Runtime {
                        message: format!(
                            "only scalars may be stored in an i-structure, got {}",
                            val.type_name()
                        ),
                        span: *span,
                    });
                }
                let target = env.lookup(array, *span)?;
                match (&target, idx.as_slice()) {
                    (Value::Vector(v), [i]) => v
                        .borrow_mut()
                        .write((*i - 1).max(-1) as usize, val)
                        .map_err(|source| LangError::IStructure {
                            source,
                            span: *span,
                        })?,
                    (Value::Matrix(m), [i, j]) => {
                        m.borrow_mut().write(*i, *j, val).map_err(|source| {
                            LangError::IStructure {
                                source,
                                span: *span,
                            }
                        })?
                    }
                    (other, idx) => {
                        return Err(LangError::Runtime {
                            message: format!(
                                "cannot write {}-d subscript into {}",
                                idx.len(),
                                other.type_name()
                            ),
                            span: *span,
                        })
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let lo = self.eval_int(lo, env)?;
                let hi = self.eval_int(hi, env)?;
                let step = match step {
                    Some(s) => self.eval_int(s, env)?,
                    None => 1,
                };
                if step == 0 {
                    return Err(LangError::Runtime {
                        message: "loop step must be non-zero".into(),
                        span: *span,
                    });
                }
                let mut v = lo;
                while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
                    self.charge(*span)?;
                    env.push_frame();
                    env.bind(var.clone(), Value::Int(v));
                    let flow = self.exec_block(body, env);
                    env.pop_frame();
                    match flow? {
                        Flow::Normal => {}
                        returned => return Ok(returned),
                    }
                    v += step;
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let c = self.eval(cond, env)?;
                match c {
                    Value::Bool(true) => self.exec_block(then_blk, env),
                    Value::Bool(false) => match else_blk {
                        Some(e) => self.exec_block(e, env),
                        None => Ok(Flow::Normal),
                    },
                    other => Err(LangError::Runtime {
                        message: format!("condition must be boolean, got {}", other.type_name()),
                        span: *span,
                    }),
                }
            }
            Stmt::Return { value, .. } => {
                let v = self.eval(value, env)?;
                Ok(Flow::Returned(v))
            }
            Stmt::ExprStmt { expr, .. } => {
                self.eval(expr, env)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_indices(&mut self, indices: &[Expr], env: &mut Env) -> Result<Vec<i64>, LangError> {
        indices.iter().map(|e| self.eval_int(e, env)).collect()
    }

    fn eval_int(&mut self, expr: &Expr, env: &mut Env) -> Result<i64, LangError> {
        match self.eval(expr, env)? {
            Value::Int(v) => Ok(v),
            other => Err(LangError::Runtime {
                message: format!("expected integer, got {}", other.type_name()),
                span: expr.span,
            }),
        }
    }

    fn eval(&mut self, expr: &Expr, env: &mut Env) -> Result<Value, LangError> {
        self.charge(expr.span)?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::Var(name) => env.lookup(name, expr.span),
            ExprKind::ArrayRead { array, indices } => {
                let idx = self.eval_indices(indices, env)?;
                let target = env.lookup(array, expr.span)?;
                match (&target, idx.as_slice()) {
                    (Value::Vector(v), [i]) => {
                        let mut v = v.borrow_mut();
                        let linear = (*i - 1).max(-1) as usize;
                        v.read(linear)
                            .cloned()
                            .map_err(|source| LangError::IStructure {
                                source,
                                span: expr.span,
                            })
                    }
                    (Value::Matrix(m), [i, j]) => {
                        m.borrow_mut().read(*i, *j).cloned().map_err(|source| {
                            LangError::IStructure {
                                source,
                                span: expr.span,
                            }
                        })
                    }
                    (other, idx) => Err(LangError::Runtime {
                        message: format!(
                            "cannot read {}-d subscript from {}",
                            idx.len(),
                            other.type_name()
                        ),
                        span: expr.span,
                    }),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // `and`/`or` short-circuit.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = self.eval(lhs, env)?;
                    return match (op, &l) {
                        (BinOp::And, Value::Bool(false)) => Ok(Value::Bool(false)),
                        (BinOp::Or, Value::Bool(true)) => Ok(Value::Bool(true)),
                        (_, Value::Bool(_)) => {
                            let r = self.eval(rhs, env)?;
                            match r {
                                Value::Bool(_) => Ok(r),
                                other => Err(LangError::Runtime {
                                    message: format!("boolean operator on {}", other.type_name()),
                                    span: expr.span,
                                }),
                            }
                        }
                        (_, other) => Err(LangError::Runtime {
                            message: format!("boolean operator on {}", other.type_name()),
                            span: expr.span,
                        }),
                    };
                }
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                binary_op(*op, &l, &r).ok_or_else(|| LangError::Runtime {
                    message: format!(
                        "cannot apply `{op}` to {} and {}",
                        l.type_name(),
                        r.type_name()
                    ),
                    span: expr.span,
                })
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand, env)?;
                match (op, &v) {
                    (UnOp::Neg, Value::Int(x)) => Ok(Value::Int(-x)),
                    (UnOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, other) => Err(LangError::Runtime {
                        message: format!("cannot apply `{op}` to {}", other.type_name()),
                        span: expr.span,
                    }),
                }
            }
            ExprKind::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.run(name, &vals)
            }
            ExprKind::Alloc { dims } => {
                let idx = self.eval_indices(dims, env)?;
                for &d in &idx {
                    if d < 0 {
                        return Err(LangError::Runtime {
                            message: format!("array dimension must be non-negative, got {d}"),
                            span: expr.span,
                        });
                    }
                }
                match idx.as_slice() {
                    [n] => Ok(Value::new_vector(*n as usize)),
                    [r, c] => Ok(Value::new_matrix(*r as usize, *c as usize)),
                    _ => unreachable!("parser enforces 1 or 2 dims"),
                }
            }
        }
    }
}

/// Apply a (non-short-circuit) binary operator; `None` on a type error.
pub(crate) fn binary_op(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    use BinOp::*;
    use Value::*;
    match op {
        Add | Sub | Mul | Div | FloorDiv | Mod | Min | Max => match (l, r) {
            (Int(a), Int(b)) => {
                let v = match op {
                    Add => a.checked_add(*b)?,
                    Sub => a.checked_sub(*b)?,
                    Mul => a.checked_mul(*b)?,
                    Div | FloorDiv => {
                        if *b == 0 {
                            return None;
                        }
                        a.div_euclid(*b)
                    }
                    Mod => {
                        if *b == 0 {
                            return None;
                        }
                        a.rem_euclid(*b)
                    }
                    Min => *a.min(b),
                    Max => *a.max(b),
                    _ => unreachable!(),
                };
                Some(Int(v))
            }
            _ => {
                let a = l.as_f64()?;
                let b = r.as_f64()?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    FloorDiv => (a / b).floor(),
                    Mod => a - b * (a / b).floor(),
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                };
                Some(Float(v))
            }
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (Bool(a), Bool(b)) => a == b,
                _ => {
                    let a = l.as_f64()?;
                    let b = r.as_f64()?;
                    a == b
                }
            };
            Some(Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let v = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Some(Bool(v))
        }
        And | Or => match (l, r) {
            (Bool(a), Bool(b)) => Some(Bool(if op == And { *a && *b } else { *a || *b })),
            _ => None,
        },
    }
}

/// A lexical environment: a stack of frames.
struct Env {
    frames: Vec<HashMap<String, Value>>,
}

impl Env {
    fn new() -> Self {
        Env { frames: Vec::new() }
    }

    fn push_frame(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop_frame(&mut self) {
        self.frames.pop();
    }

    fn bind(&mut self, name: String, value: Value) {
        self.frames.last_mut().expect("frame").insert(name, value);
    }

    fn lookup(&self, name: &str, span: Span) -> Result<Value, LangError> {
        for f in self.frames.iter().rev() {
            if let Some(v) = f.get(name) {
                return Ok(v.clone());
            }
        }
        Err(LangError::Runtime {
            message: format!("`{name}` is unbound"),
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, proc: &str, args: &[Value]) -> Result<Value, LangError> {
        let p = parse(src).expect("parse ok");
        Interpreter::new(&p).run(proc, args)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            run("procedure f() { return 2 + 3 * 4 - 1; }", "f", &[]).unwrap(),
            Value::Int(13)
        );
        assert_eq!(
            run("procedure f() { return 7 mod 3 + 7 div 3; }", "f", &[]).unwrap(),
            Value::Int(1 + 2)
        );
        // Euclidean semantics on negatives.
        assert_eq!(
            run("procedure f() { return (0 - 1) mod 4; }", "f", &[]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn float_promotion() {
        assert_eq!(
            run("procedure f() { return 1 + 2.5; }", "f", &[]).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn loops_and_vectors() {
        let src = "procedure f(n) {
            let a = vector(n);
            for i = 1 to n do { a[i] = i * i; }
            return a[n];
        }";
        assert_eq!(run(src, "f", &[Value::Int(6)]).unwrap(), Value::Int(36));
    }

    #[test]
    fn loop_with_step_and_downward() {
        let src = "procedure f(n) {
            let a = vector(n);
            for i = 1 to n by 2 do { a[i] = 1; }
            for i = n to 2 by 0 - 2 do { a[i] = 2; }
            return a[1] + a[2] + a[3] + a[4];
        }";
        assert_eq!(
            run(src, "f", &[Value::Int(4)]).unwrap(),
            Value::Int(1 + 2 + 1 + 2)
        );
    }

    #[test]
    fn recursion_works() {
        let src = "procedure fib(n) {
            if n < 2 then { return n; }
            return fib(n - 1) + fib(n - 2);
        }";
        assert_eq!(run(src, "fib", &[Value::Int(10)]).unwrap(), Value::Int(55));
    }

    #[test]
    fn procedures_mutate_istructures_through_handles() {
        let src = "
            procedure init(a, n) {
                for i = 1 to n do { a[i] = 7; }
                return 0;
            }
            procedure f(n) {
                let a = vector(n);
                init(a, n);
                return a[n];
            }";
        assert_eq!(run(src, "f", &[Value::Int(3)]).unwrap(), Value::Int(7));
    }

    #[test]
    fn double_write_is_runtime_error() {
        let src = "procedure f() {
            let a = vector(1);
            a[1] = 1;
            a[1] = 2;
            return a[1];
        }";
        let err = run(src, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("written twice"));
    }

    #[test]
    fn read_of_undefined_is_runtime_error() {
        let src = "procedure f() { let a = vector(2); return a[2]; }";
        let err = run(src, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn matrix_round_trip() {
        let src = "procedure f(n) {
            let m = matrix(n, n);
            for i = 1 to n do {
                for j = 1 to n do { m[i, j] = i * 10 + j; }
            }
            return m[2, 3];
        }";
        assert_eq!(run(src, "f", &[Value::Int(3)]).unwrap(), Value::Int(23));
    }

    #[test]
    fn gauss_seidel_small_grid() {
        // The paper's Figure 1 kernel on a 4x4 grid with c = 1.
        let src = "
            procedure gs(Old, n) {
                let New = matrix(n, n);
                for i = 1 to n do { New[i, 1] = 0; New[i, n] = 0; }
                for i = 2 to n - 1 do { New[1, i] = 0; New[n, i] = 0; }
                for j = 2 to n - 1 do {
                    for i = 2 to n - 1 do {
                        New[i, j] = 1 * (New[i-1, j] + New[i, j-1]
                                       + Old[i+1, j] + Old[i, j+1]);
                    }
                }
                return New;
            }";
        let p = parse(src).unwrap();
        let old = Value::new_matrix(4, 4);
        if let Value::Matrix(m) = &old {
            let mut m = m.borrow_mut();
            for i in 1..=4 {
                for j in 1..=4 {
                    m.write(i, j, Value::Int(1)).unwrap();
                }
            }
        }
        let out = Interpreter::new(&p)
            .run("gs", &[old, Value::Int(4)])
            .unwrap();
        if let Value::Matrix(m) = out {
            let mut m = m.borrow_mut();
            // New[2,2] = New[1,2] + New[2,1] + Old[3,2] + Old[2,3] = 0+0+1+1
            assert_eq!(*m.read(2, 2).unwrap(), Value::Int(2));
            // New[3,3] depends on freshly computed New values (wavefront).
            // New[2,3] = 0 + New[2,2] + 1 + 1 = 4; New[3,2] = New[2,2]+0+1+1 = 4
            // New[3,3] = New[2,3] + New[3,2] + 1 + 1 = 10
            assert_eq!(*m.read(3, 3).unwrap(), Value::Int(10));
        } else {
            panic!("expected matrix result");
        }
    }

    #[test]
    fn falls_off_end_returns_unit() {
        assert_eq!(
            run("procedure f() { let a = 1; }", "f", &[]).unwrap(),
            Value::Unit
        );
    }

    #[test]
    fn step_budget_stops_runaway() {
        let src = "procedure f() {
            for i = 1 to 1000000 do { }
            return 0;
        }";
        let p = parse(src).unwrap();
        let err = Interpreter::new(&p)
            .with_step_budget(1000)
            .run("f", &[])
            .unwrap_err();
        assert!(err.to_string().contains("step budget"));
    }

    #[test]
    fn zero_step_is_error() {
        let src = "procedure f() { for i = 1 to 3 by 0 do { } return 0; }";
        assert!(run(src, "f", &[])
            .unwrap_err()
            .to_string()
            .contains("non-zero"));
    }

    #[test]
    fn division_by_zero_reported() {
        let err = run("procedure f() { return 1 div 0; }", "f", &[]).unwrap_err();
        assert!(err.to_string().contains("cannot apply"));
    }

    #[test]
    fn short_circuit_avoids_rhs() {
        // The rhs would divide by zero if evaluated.
        let src = "procedure f() {
            if false and (1 div 0 == 0) then { return 1; }
            return 0;
        }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Int(0));
    }
}
