//! Static checks: single assignment, definition before use, call arity.

use crate::ast::*;
use crate::error::LangError;
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Check a parsed program, stopping at the first violation.
///
/// Enforced rules:
///
/// * procedure names are unique, parameter names are unique;
/// * every variable is defined before use (Id Nouveau scalars are
///   single-assignment, so "defined" means bound by a parameter, a `let`,
///   or a loop header);
/// * no name is rebound while visible (no shadowing — re-definition of a
///   single-assignment variable is the scalar analogue of an I-structure
///   double write);
/// * calls name a defined procedure and pass the right number of
///   arguments.
///
/// # Errors
///
/// The first violation is reported as [`LangError::Check`]. Tooling that
/// wants the full list uses [`check_all`].
pub fn check(program: &Program) -> Result<(), LangError> {
    match check_all(program).into_iter().next() {
        Some(first) => Err(first),
        None => Ok(()),
    }
}

/// Check a parsed program and collect **every** violation, in source
/// order, each with its span — the batch-diagnostics form of [`check`].
/// The checker recovers after each violation (an offending name still
/// enters scope; an unknown name is reported once per use) so one
/// mistake does not hide the next. Renders through `pdc-report` as
/// check-phase remarks.
pub fn check_all(program: &Program) -> Vec<LangError> {
    let mut arities: HashMap<&str, usize> = HashMap::new();
    let mut diags = Vec::new();
    for p in &program.procs {
        if arities.insert(&p.name, p.params.len()).is_some() {
            diags.push(LangError::Check {
                message: format!("procedure `{}` defined twice", p.name),
                span: p.span,
            });
        }
    }
    for p in &program.procs {
        let mut seen = HashSet::new();
        for param in &p.params {
            if !seen.insert(param.as_str()) {
                diags.push(LangError::Check {
                    message: format!("duplicate parameter `{param}` in `{}`", p.name),
                    span: p.span,
                });
            }
        }
        let mut scope = Scope {
            arities: &arities,
            frames: vec![p.params.iter().cloned().collect()],
            diags: &mut diags,
        };
        check_block(&p.body, &mut scope);
    }
    diags
}

struct Scope<'a> {
    arities: &'a HashMap<&'a str, usize>,
    frames: Vec<HashSet<String>>,
    diags: &'a mut Vec<LangError>,
}

impl Scope<'_> {
    fn is_defined(&self, name: &str) -> bool {
        self.frames.iter().any(|f| f.contains(name))
    }

    fn report(&mut self, message: String, span: Span) {
        self.diags.push(LangError::Check { message, span });
    }

    /// Bind `name`, reporting a violation if it shadows an existing
    /// binding. The name enters scope either way, so later uses of it
    /// are not spuriously "undefined".
    fn define(&mut self, name: &str, span: Span) {
        if self.is_defined(name) {
            self.report(
                format!("`{name}` is already defined (scalars are single-assignment)"),
                span,
            );
        }
        self.frames.last_mut().expect("scope").insert(name.into());
    }
}

fn check_block(block: &Block, scope: &mut Scope<'_>) {
    scope.frames.push(HashSet::new());
    for stmt in &block.stmts {
        check_stmt(stmt, scope);
    }
    scope.frames.pop();
}

fn check_stmt(stmt: &Stmt, scope: &mut Scope<'_>) {
    match stmt {
        Stmt::Let { name, init, span } => {
            check_expr(init, scope);
            scope.define(name, *span);
        }
        Stmt::ArrayWrite {
            array,
            indices,
            value,
            span,
        } => {
            if !scope.is_defined(array) {
                scope.report(format!("array `{array}` used before definition"), *span);
            }
            for ix in indices {
                check_expr(ix, scope);
            }
            check_expr(value, scope);
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
            span,
        } => {
            check_expr(lo, scope);
            check_expr(hi, scope);
            if let Some(s) = step {
                check_expr(s, scope);
            }
            scope.frames.push(HashSet::new());
            scope.define(var, *span);
            for s in &body.stmts {
                check_stmt(s, scope);
            }
            scope.frames.pop();
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            check_expr(cond, scope);
            check_block(then_blk, scope);
            if let Some(e) = else_blk {
                check_block(e, scope);
            }
        }
        Stmt::Return { value, .. } => check_expr(value, scope),
        Stmt::ExprStmt { expr, .. } => check_expr(expr, scope),
    }
}

fn check_expr(expr: &Expr, scope: &mut Scope<'_>) {
    match &expr.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) => {}
        ExprKind::Var(name) => {
            if !scope.is_defined(name) {
                scope.report(format!("`{name}` used before definition"), expr.span);
            }
        }
        ExprKind::ArrayRead { array, indices } => {
            if !scope.is_defined(array) {
                scope.report(format!("array `{array}` used before definition"), expr.span);
            }
            for ix in indices {
                check_expr(ix, scope);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            check_expr(lhs, scope);
            check_expr(rhs, scope);
        }
        ExprKind::Unary { operand, .. } => check_expr(operand, scope),
        ExprKind::Call { name, args } => {
            match scope.arities.get(name.as_str()) {
                None => {
                    scope.report(format!("call to undefined procedure `{name}`"), expr.span);
                }
                Some(&arity) if arity != args.len() => {
                    scope.report(
                        format!("`{name}` takes {arity} argument(s), {} given", args.len()),
                        expr.span,
                    );
                }
                Some(_) => {}
            }
            for a in args {
                check_expr(a, scope);
            }
        }
        ExprKind::Alloc { dims } => {
            for d in dims {
                check_expr(d, scope);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn accepts_well_formed_program() {
        assert!(parse("procedure f(n) { let a = vector(n); a[1] = n; return a[1]; }").is_ok());
    }

    #[test]
    fn rejects_use_before_definition() {
        let err = parse("procedure f() { return x; }").unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }

    #[test]
    fn rejects_rebinding() {
        let err = parse("procedure f() { let a = 1; let a = 2; return a; }").unwrap_err();
        assert!(err.to_string().contains("single-assignment"));
    }

    #[test]
    fn rejects_shadowing_a_parameter() {
        let err = parse("procedure f(n) { let n = 3; return n; }").unwrap_err();
        assert!(err.to_string().contains("already defined"));
    }

    #[test]
    fn loop_variable_is_scoped_to_body() {
        // Using i after the loop is an error; reusing i in a sibling loop
        // is fine.
        assert!(parse(
            "procedure f(n) {
                for i = 1 to n do { }
                for i = 1 to n do { }
                return n;
            }"
        )
        .is_ok());
        let err = parse("procedure f(n) { for i = 1 to n do { } return i; }").unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }

    #[test]
    fn rejects_duplicate_procedures_and_params() {
        assert!(
            parse("procedure f() { return 0; } procedure f() { return 1; }")
                .unwrap_err()
                .to_string()
                .contains("defined twice")
        );
        assert!(parse("procedure f(a, a) { return 0; }")
            .unwrap_err()
            .to_string()
            .contains("duplicate parameter"));
    }

    #[test]
    fn rejects_bad_calls() {
        assert!(parse("procedure f() { return g(); }")
            .unwrap_err()
            .to_string()
            .contains("undefined procedure"));
        assert!(
            parse("procedure g(x) { return x; } procedure f() { return g(); }")
                .unwrap_err()
                .to_string()
                .contains("takes 1 argument")
        );
    }

    #[test]
    fn check_all_collects_every_violation_in_source_order() {
        use crate::check::check_all;
        let src = "procedure f(n) {
                let a = x;
                let a = y;
                return g(n);
            }";
        let prog = crate::parser::parse_unchecked(src).expect("parses");
        let diags = check_all(&prog);
        let messages: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert_eq!(diags.len(), 4, "got: {messages:?}");
        assert!(messages[0].contains("`x` used before definition"));
        assert!(messages[1].contains("`y` used before definition"));
        assert!(messages[2].contains("`a` is already defined"));
        assert!(messages[3].contains("undefined procedure `g`"));
        // Every diagnostic carries a resolvable span.
        for d in &diags {
            let rendered = d.render(src);
            assert!(rendered.contains(" at "), "missing span: {rendered}");
        }
    }

    #[test]
    fn block_scopes_do_not_leak() {
        let err = parse(
            "procedure f(c) {
                if c > 0 then { let t = 1; }
                return t;
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }
}
