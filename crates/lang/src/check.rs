//! Static checks: single assignment, definition before use, call arity.

use crate::ast::*;
use crate::error::LangError;
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Check a parsed program.
///
/// Enforced rules:
///
/// * procedure names are unique, parameter names are unique;
/// * every variable is defined before use (Id Nouveau scalars are
///   single-assignment, so "defined" means bound by a parameter, a `let`,
///   or a loop header);
/// * no name is rebound while visible (no shadowing — re-definition of a
///   single-assignment variable is the scalar analogue of an I-structure
///   double write);
/// * calls name a defined procedure and pass the right number of
///   arguments.
///
/// # Errors
///
/// The first violation is reported as [`LangError::Check`].
pub fn check(program: &Program) -> Result<(), LangError> {
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for p in &program.procs {
        if arities.insert(&p.name, p.params.len()).is_some() {
            return Err(LangError::Check {
                message: format!("procedure `{}` defined twice", p.name),
                span: p.span,
            });
        }
    }
    for p in &program.procs {
        let mut seen = HashSet::new();
        for param in &p.params {
            if !seen.insert(param.as_str()) {
                return Err(LangError::Check {
                    message: format!("duplicate parameter `{param}` in `{}`", p.name),
                    span: p.span,
                });
            }
        }
        let mut scope = Scope {
            arities: &arities,
            frames: vec![p.params.iter().cloned().collect()],
        };
        check_block(&p.body, &mut scope)?;
    }
    Ok(())
}

struct Scope<'a> {
    arities: &'a HashMap<&'a str, usize>,
    frames: Vec<HashSet<String>>,
}

impl Scope<'_> {
    fn is_defined(&self, name: &str) -> bool {
        self.frames.iter().any(|f| f.contains(name))
    }

    fn define(&mut self, name: &str, span: Span) -> Result<(), LangError> {
        if self.is_defined(name) {
            return Err(LangError::Check {
                message: format!("`{name}` is already defined (scalars are single-assignment)"),
                span,
            });
        }
        self.frames.last_mut().expect("scope").insert(name.into());
        Ok(())
    }
}

fn check_block(block: &Block, scope: &mut Scope<'_>) -> Result<(), LangError> {
    scope.frames.push(HashSet::new());
    for stmt in &block.stmts {
        check_stmt(stmt, scope)?;
    }
    scope.frames.pop();
    Ok(())
}

fn check_stmt(stmt: &Stmt, scope: &mut Scope<'_>) -> Result<(), LangError> {
    match stmt {
        Stmt::Let { name, init, span } => {
            check_expr(init, scope)?;
            scope.define(name, *span)
        }
        Stmt::ArrayWrite {
            array,
            indices,
            value,
            span,
        } => {
            if !scope.is_defined(array) {
                return Err(LangError::Check {
                    message: format!("array `{array}` used before definition"),
                    span: *span,
                });
            }
            for ix in indices {
                check_expr(ix, scope)?;
            }
            check_expr(value, scope)
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
            span,
        } => {
            check_expr(lo, scope)?;
            check_expr(hi, scope)?;
            if let Some(s) = step {
                check_expr(s, scope)?;
            }
            scope.frames.push(HashSet::new());
            scope.define(var, *span)?;
            for s in &body.stmts {
                check_stmt(s, scope)?;
            }
            scope.frames.pop();
            Ok(())
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            check_expr(cond, scope)?;
            check_block(then_blk, scope)?;
            if let Some(e) = else_blk {
                check_block(e, scope)?;
            }
            Ok(())
        }
        Stmt::Return { value, .. } => check_expr(value, scope),
        Stmt::ExprStmt { expr, .. } => check_expr(expr, scope),
    }
}

fn check_expr(expr: &Expr, scope: &mut Scope<'_>) -> Result<(), LangError> {
    match &expr.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) => Ok(()),
        ExprKind::Var(name) => {
            if scope.is_defined(name) {
                Ok(())
            } else {
                Err(LangError::Check {
                    message: format!("`{name}` used before definition"),
                    span: expr.span,
                })
            }
        }
        ExprKind::ArrayRead { array, indices } => {
            if !scope.is_defined(array) {
                return Err(LangError::Check {
                    message: format!("array `{array}` used before definition"),
                    span: expr.span,
                });
            }
            for ix in indices {
                check_expr(ix, scope)?;
            }
            Ok(())
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            check_expr(lhs, scope)?;
            check_expr(rhs, scope)
        }
        ExprKind::Unary { operand, .. } => check_expr(operand, scope),
        ExprKind::Call { name, args } => {
            match scope.arities.get(name.as_str()) {
                None => {
                    return Err(LangError::Check {
                        message: format!("call to undefined procedure `{name}`"),
                        span: expr.span,
                    })
                }
                Some(&arity) if arity != args.len() => {
                    return Err(LangError::Check {
                        message: format!(
                            "`{name}` takes {arity} argument(s), {} given",
                            args.len()
                        ),
                        span: expr.span,
                    })
                }
                Some(_) => {}
            }
            for a in args {
                check_expr(a, scope)?;
            }
            Ok(())
        }
        ExprKind::Alloc { dims } => {
            for d in dims {
                check_expr(d, scope)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn accepts_well_formed_program() {
        assert!(parse("procedure f(n) { let a = vector(n); a[1] = n; return a[1]; }").is_ok());
    }

    #[test]
    fn rejects_use_before_definition() {
        let err = parse("procedure f() { return x; }").unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }

    #[test]
    fn rejects_rebinding() {
        let err = parse("procedure f() { let a = 1; let a = 2; return a; }").unwrap_err();
        assert!(err.to_string().contains("single-assignment"));
    }

    #[test]
    fn rejects_shadowing_a_parameter() {
        let err = parse("procedure f(n) { let n = 3; return n; }").unwrap_err();
        assert!(err.to_string().contains("already defined"));
    }

    #[test]
    fn loop_variable_is_scoped_to_body() {
        // Using i after the loop is an error; reusing i in a sibling loop
        // is fine.
        assert!(parse(
            "procedure f(n) {
                for i = 1 to n do { }
                for i = 1 to n do { }
                return n;
            }"
        )
        .is_ok());
        let err = parse("procedure f(n) { for i = 1 to n do { } return i; }").unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }

    #[test]
    fn rejects_duplicate_procedures_and_params() {
        assert!(
            parse("procedure f() { return 0; } procedure f() { return 1; }")
                .unwrap_err()
                .to_string()
                .contains("defined twice")
        );
        assert!(parse("procedure f(a, a) { return 0; }")
            .unwrap_err()
            .to_string()
            .contains("duplicate parameter"));
    }

    #[test]
    fn rejects_bad_calls() {
        assert!(parse("procedure f() { return g(); }")
            .unwrap_err()
            .to_string()
            .contains("undefined procedure"));
        assert!(
            parse("procedure g(x) { return x; } procedure f() { return g(); }")
                .unwrap_err()
                .to_string()
                .contains("takes 1 argument")
        );
    }

    #[test]
    fn block_scopes_do_not_leak() {
        let err = parse(
            "procedure f(c) {
                if c > 0 then { let t = 1; }
                return t;
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }
}
