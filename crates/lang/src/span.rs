//! Source positions for error reporting.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }
}
