//! Front-end and interpreter errors.

use crate::span::Span;
use pdc_istructure::IStructureError;
use std::error::Error;
use std::fmt;

/// Any error produced by the lexer, parser, static checker, or the
/// sequential interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Unexpected character or malformed literal.
    Lex {
        /// Description of the problem.
        message: String,
        /// Where it occurred.
        span: Span,
    },
    /// Unexpected token or malformed construct.
    Parse {
        /// Description of the problem.
        message: String,
        /// Where it occurred.
        span: Span,
    },
    /// A static-check violation (undefined name, duplicate definition,
    /// arity mismatch, …).
    Check {
        /// Description of the problem.
        message: String,
        /// Where it occurred.
        span: Span,
    },
    /// A run-time error in the sequential interpreter.
    Runtime {
        /// Description of the problem.
        message: String,
        /// Where it occurred (the statement or expression being
        /// evaluated).
        span: Span,
    },
    /// An I-structure semantics violation (double write / empty read).
    IStructure {
        /// The underlying violation.
        source: IStructureError,
        /// The array access that triggered it.
        span: Span,
    },
}

impl LangError {
    /// The source span the error points at.
    pub fn span(&self) -> Span {
        match self {
            LangError::Lex { span, .. }
            | LangError::Parse { span, .. }
            | LangError::Check { span, .. }
            | LangError::Runtime { span, .. }
            | LangError::IStructure { span, .. } => *span,
        }
    }

    /// Render with 1-based line/column resolved against the source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span().line_col(src);
        format!("{self} at {line}:{col}")
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { message, .. } => write!(f, "lex error: {message}"),
            LangError::Parse { message, .. } => write!(f, "parse error: {message}"),
            LangError::Check { message, .. } => write!(f, "check error: {message}"),
            LangError::Runtime { message, .. } => write!(f, "runtime error: {message}"),
            LangError::IStructure { source, .. } => write!(f, "runtime error: {source}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::IStructure { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_line_col() {
        let e = LangError::Parse {
            message: "expected `;`".into(),
            span: Span::new(4, 5),
        };
        assert_eq!(e.render("ab\ncd"), "parse error: expected `;` at 2:2");
    }

    #[test]
    fn istructure_error_chains_source() {
        let e = LangError::IStructure {
            source: IStructureError::DoubleWrite { index: 3 },
            span: Span::default(),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("written twice"));
    }
}
