//! Pretty-printer: renders ASTs back to parseable source.
//!
//! The invariant tested in the suite is *parse ∘ print = identity up to
//! spans*: printing a parsed program and re-parsing it yields a
//! structurally identical AST.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    if !p.map_decls.is_empty() {
        out.push_str("map {\n");
        for d in &p.map_decls {
            let _ = writeln!(out, "    {} : {};", d.name, d.spec);
        }
        out.push_str("}\n\n");
    }
    for (i, proc) in p.procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        proc_def(&mut out, proc);
    }
    out
}

fn proc_def(out: &mut String, p: &Proc) {
    let _ = write!(out, "procedure {}({})", p.name, p.params.join(", "));
    out.push(' ');
    block(out, &p.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Let { name, init, .. } => {
            let _ = write!(out, "let {name} = {};", expr(init));
        }
        Stmt::ArrayWrite {
            array,
            indices,
            value,
            ..
        } => {
            let idx: Vec<_> = indices.iter().map(expr).collect();
            let _ = write!(out, "{array}[{}] = {};", idx.join(", "), expr(value));
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            let _ = write!(out, "for {var} = {} to {}", expr(lo), expr(hi));
            if let Some(st) = step {
                let _ = write!(out, " by {}", expr(st));
            }
            out.push_str(" do ");
            block(out, body, level);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = write!(out, "if {} then ", expr(cond));
            block(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                block(out, e, level);
            }
        }
        Stmt::Return { value, .. } => {
            let _ = write!(out, "return {};", expr(value));
        }
        Stmt::ExprStmt { expr: e, .. } => {
            let _ = write!(out, "{};", expr(e));
        }
    }
    out.push('\n');
}

/// Render an expression (fully parenthesized where precedence demands).
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

/// Precedence levels: or=1, and=2, not=3, cmp=4, add=5, mul=6, unary=7.
fn prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | Ne | Lt | Le | Gt | Ge => 4,
        Add | Sub => 5,
        Mul | Div | FloorDiv | Mod => 6,
        Min | Max => 8, // rendered as calls
    }
}

fn expr_prec(e: &Expr, outer: u8) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Float(v) => {
            // Keep a decimal point so it re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        ExprKind::Bool(v) => v.to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::ArrayRead { array, indices } => {
            let idx: Vec<_> = indices.iter().map(expr).collect();
            format!("{array}[{}]", idx.join(", "))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            if matches!(op, BinOp::Min | BinOp::Max) {
                return format!("{op}({}, {})", expr(lhs), expr(rhs));
            }
            let p = prec(*op);
            // Left-associative: the right child needs parens at equal
            // precedence; comparisons are non-associative so both do.
            let lp = if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                p + 1
            } else {
                p
            };
            let s = format!("{} {op} {}", expr_prec(lhs, lp), expr_prec(rhs, p + 1));
            if p < outer {
                format!("({s})")
            } else {
                s
            }
        }
        ExprKind::Unary { op, operand } => {
            let s = match op {
                UnOp::Neg => format!("-{}", expr_prec(operand, 7)),
                UnOp::Not => format!("not {}", expr_prec(operand, 3)),
            };
            if outer > 6 {
                format!("({s})")
            } else {
                s
            }
        }
        ExprKind::Call { name, args } => {
            let a: Vec<_> = args.iter().map(expr).collect();
            format!("{name}({})", a.join(", "))
        }
        ExprKind::Alloc { dims } => {
            let d: Vec<_> = dims.iter().map(expr).collect();
            if d.len() == 1 {
                format!("vector({})", d[0])
            } else {
                format!("matrix({})", d.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip spans so parse∘print can be compared structurally.
    fn normalize(p: &Program) -> String {
        format!("{p:?}").split("span: Span").count().to_string() + &strip_spans(&format!("{p:?}"))
    }

    fn strip_spans(s: &str) -> String {
        // Spans render as `Span { start: N, end: M }`; blank the numbers.
        let mut out = String::new();
        let mut rest = s;
        while let Some(pos) = rest.find("Span {") {
            out.push_str(&rest[..pos]);
            out.push_str("Span{_}");
            let after = &rest[pos..];
            match after.find('}') {
                Some(close) => rest = &after[close + 1..],
                None => {
                    rest = "";
                }
            }
        }
        out.push_str(rest);
        out
    }

    fn round_trips(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(normalize(&p1), normalize(&p2), "printed:\n{printed}");
    }

    #[test]
    fn round_trip_simple() {
        round_trips("procedure f(n) { let a = n + 1; return a * 2; }");
    }

    #[test]
    fn round_trip_precedence() {
        round_trips("procedure f(a, b, c) { return (a + b) * c - a div (b mod c); }");
        round_trips("procedure f(a, b) { return -(a + b) * -a; }");
        round_trips("procedure f(a, b) { return a - (b - 1) - 2; }");
    }

    #[test]
    fn round_trip_control_flow() {
        round_trips(
            "procedure f(n) {
                let a = matrix(n, n);
                for j = 1 to n by 2 do {
                    for i = 1 to n do {
                        if i < j and not (i == 1) then { a[i, j] = min(i, j); }
                        else { a[i, j] = max(i, j); }
                    }
                }
                return a[1, 1];
            }",
        );
    }

    #[test]
    fn round_trip_map_block() {
        round_trips(
            "map { A : column_block_cyclic(4); b : proc(2); }
             procedure f(A, b) { return b; }",
        );
    }

    #[test]
    fn round_trip_floats_and_bools() {
        round_trips("procedure f() { return 2.0 * 3.5; }");
        round_trips("procedure f() { if true or false then { return 1; } return 0; }");
    }

    #[test]
    fn round_trip_calls() {
        round_trips(
            "procedure g(x, y) { return x + y; }
             procedure f(n) { g(n, 1); return g(g(n, 2), 3); }",
        );
    }
}
