//! Tokens of the Id Nouveau subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier (variable, array, or procedure name).
    Ident(String),

    // Keywords.
    /// `procedure`
    Procedure,
    /// `let`
    Let,
    /// `for`
    For,
    /// `to`
    To,
    /// `by`
    By,
    /// `do`
    Do,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `map`
    Map,
    /// `matrix`
    Matrix,
    /// `vector`
    Vector,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `mod`
    Mod,
    /// `div`
    Div,
    /// `min`
    Min,
    /// `max`
    Max,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl Token {
    /// The keyword for an identifier-like lexeme, if it is one.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "procedure" => Token::Procedure,
            "let" => Token::Let,
            "for" => Token::For,
            "to" => Token::To,
            "by" => Token::By,
            "do" => Token::Do,
            "if" => Token::If,
            "then" => Token::Then,
            "else" => Token::Else,
            "return" => Token::Return,
            "map" => Token::Map,
            "matrix" => Token::Matrix,
            "vector" => Token::Vector,
            "true" => Token::True,
            "false" => Token::False,
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "mod" => Token::Mod,
            "div" => Token::Div,
            "min" => Token::Min,
            "max" => Token::Max,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Procedure => write!(f, "procedure"),
            Token::Let => write!(f, "let"),
            Token::For => write!(f, "for"),
            Token::To => write!(f, "to"),
            Token::By => write!(f, "by"),
            Token::Do => write!(f, "do"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::Return => write!(f, "return"),
            Token::Map => write!(f, "map"),
            Token::Matrix => write!(f, "matrix"),
            Token::Vector => write!(f, "vector"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::Mod => write!(f, "mod"),
            Token::Div => write!(f, "div"),
            Token::Min => write!(f, "min"),
            Token::Max => write!(f, "max"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Assign => write!(f, "="),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Token::keyword("for"), Some(Token::For));
        assert_eq!(Token::keyword("matrix"), Some(Token::Matrix));
        assert_eq!(Token::keyword("frobnicate"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(Token::Le.to_string(), "<=");
        assert_eq!(Token::LBrace.to_string(), "{");
        assert_eq!(Token::Ident("abc".into()).to_string(), "abc");
    }
}
