//! Abstract syntax trees.
//!
//! The compiler (`pdc-core`) works directly on these trees: the paper's
//! §3.2 annotates "conventional abstract syntax trees" with *evaluators*
//! and *participants* attributes keyed by node; we key those side tables by
//! [`Span`], which uniquely identifies a node within one source file.

use crate::span::Span;
use std::fmt;

/// A whole source file: optional mapping declarations plus procedures.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Domain-decomposition declarations from `map { … }` headers.
    pub map_decls: Vec<MapDecl>,
    /// Procedure definitions in source order.
    pub procs: Vec<Proc>,
}

impl Program {
    /// Look up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name == name)
    }
}

/// A source-level mapping declaration: one line of a `map { … }` block,
/// e.g. `New : column_cyclic;` — the italicized decomposition of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MapDecl {
    /// Variable or array being mapped.
    pub name: String,
    /// The distribution it is given.
    pub spec: DistSpec,
    /// Source location.
    pub span: Span,
}

/// Source-level distribution specifications. `pdc-core` lowers these to
/// `pdc_mapping::Dist` / scalar maps once the machine size is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistSpec {
    /// `all` — replicated scalar or array.
    All,
    /// `proc(k)` — pinned to processor `k`.
    Proc(usize),
    /// `column_cyclic`
    ColumnCyclic,
    /// `row_cyclic`
    RowCyclic,
    /// `column_block`
    ColumnBlock,
    /// `row_block`
    RowBlock,
    /// `column_block_cyclic(b)`
    ColumnBlockCyclic(usize),
    /// `row_block_cyclic(b)`
    RowBlockCyclic(usize),
    /// `block2d(pr, pc)`
    Block2d(usize, usize),
}

impl fmt::Display for DistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistSpec::All => write!(f, "all"),
            DistSpec::Proc(p) => write!(f, "proc({p})"),
            DistSpec::ColumnCyclic => write!(f, "column_cyclic"),
            DistSpec::RowCyclic => write!(f, "row_cyclic"),
            DistSpec::ColumnBlock => write!(f, "column_block"),
            DistSpec::RowBlock => write!(f, "row_block"),
            DistSpec::ColumnBlockCyclic(b) => write!(f, "column_block_cyclic({b})"),
            DistSpec::RowBlockCyclic(b) => write!(f, "row_block_cyclic({b})"),
            DistSpec::Block2d(r, c) => write!(f, "block2d({r},{c})"),
        }
    }
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Proc {
    /// Procedure name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A `{ … }` statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` or `x = e;` — single-assignment scalar (or array
    /// handle) definition. Rebinding the same name in one scope is a
    /// static error; Id Nouveau scalars are single-assignment.
    Let {
        /// Bound name.
        name: String,
        /// Initializer.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// `A[i, j] = e;` — I-structure element definition.
    ArrayWrite {
        /// Array name.
        array: String,
        /// One (vector) or two (matrix) subscripts.
        indices: Vec<Expr>,
        /// The defined value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `for v = lo to hi [by s] do { … }` — counted loop, inclusive
    /// bounds, default step 1.
    For {
        /// Loop variable (scoped to the body).
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper (inclusive) bound.
        hi: Expr,
        /// Step (defaults to 1).
        step: Option<Expr>,
        /// Body.
        body: Block,
        /// Source location of the header.
        span: Span,
    },
    /// `if c then { … } [else { … }]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source location of the header.
        span: Span,
    },
    /// `return e;`
    Return {
        /// The returned value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for effect — in this subset, a procedure
    /// call such as `init_boundary(New, n);`.
    ExprStmt {
        /// The expression (statically required to be a call).
        expr: Expr,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::ArrayWrite { span, .. }
            | Stmt::For { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::ExprStmt { span, .. } => *span,
        }
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node kind.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Construct with an explicit span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// `A[i]` or `A[i, j]` — I-structure read.
    ArrayRead {
        /// Array name.
        array: String,
        /// One or two subscripts.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Procedure call `f(a, b)`, or the builtins `min(a,b)` / `max(a,b)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `matrix(r, c)` or `vector(n)` — I-structure allocation.
    Alloc {
        /// Number of dimensions (1 for `vector`, 2 for `matrix`).
        dims: Vec<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` — float division on floats, Euclidean on integers.
    Div,
    /// `div` — Euclidean integer division.
    FloorDiv,
    /// `mod` (or `%`) — Euclidean remainder.
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `min(a,b)`
    Min,
    /// `max(a,b)`
    Max,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_proc_lookup() {
        let p = Program {
            map_decls: vec![],
            procs: vec![Proc {
                name: "main".into(),
                params: vec![],
                body: Block::default(),
                span: Span::default(),
            }],
        };
        assert!(p.proc("main").is_some());
        assert!(p.proc("other").is_none());
    }

    #[test]
    fn dist_spec_display() {
        assert_eq!(DistSpec::ColumnCyclic.to_string(), "column_cyclic");
        assert_eq!(DistSpec::Block2d(2, 3).to_string(), "block2d(2,3)");
        assert_eq!(DistSpec::Proc(1).to_string(), "proc(1)");
    }

    #[test]
    fn stmt_span_accessor() {
        let s = Stmt::Return {
            value: Expr::new(ExprKind::Int(0), Span::new(7, 8)),
            span: Span::new(0, 9),
        };
        assert_eq!(s.span(), Span::new(0, 9));
    }
}
