//! The lexer.

use crate::error::LangError;
use crate::span::Span;
use crate::token::Token;

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// Tokenize `src`.
///
/// Comments run from `#` to end of line. Identifiers may contain `_` and
/// digits after the first letter.
///
/// # Errors
///
/// [`LangError::Lex`] on unexpected characters or malformed numeric
/// literals.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LangError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Skip whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Skip comments.
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Numbers (integer or float).
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let is_float =
                i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit();
            if is_float {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<f64>().map_err(|e| LangError::Lex {
                    message: format!("bad float literal `{text}`: {e}"),
                    span: Span::new(start, i),
                })?;
                out.push(SpannedToken {
                    token: Token::Float(value),
                    span: Span::new(start, i),
                });
            } else {
                let text = &src[start..i];
                let value = text.parse::<i64>().map_err(|e| LangError::Lex {
                    message: format!("bad integer literal `{text}`: {e}"),
                    span: Span::new(start, i),
                })?;
                out.push(SpannedToken {
                    token: Token::Int(value),
                    span: Span::new(start, i),
                });
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            let text = &src[start..i];
            let token = Token::keyword(text).unwrap_or_else(|| Token::Ident(text.to_owned()));
            out.push(SpannedToken {
                token,
                span: Span::new(start, i),
            });
            continue;
        }
        // Operators and punctuation. The two-byte peek compares raw
        // ASCII bytes so multi-byte UTF-8 input cannot split a char.
        let two = if i + 1 < bytes.len() && src.is_char_boundary(i + 2) {
            &src[i..i + 2]
        } else {
            ""
        };
        let (token, len) = match two {
            "==" => (Token::Eq, 2),
            "!=" => (Token::Ne, 2),
            "<=" => (Token::Le, 2),
            ">=" => (Token::Ge, 2),
            ":=" => (Token::Assign, 2), // the paper writes `a := 5`
            _ => match c {
                '(' => (Token::LParen, 1),
                ')' => (Token::RParen, 1),
                '[' => (Token::LBracket, 1),
                ']' => (Token::RBracket, 1),
                '{' => (Token::LBrace, 1),
                '}' => (Token::RBrace, 1),
                ',' => (Token::Comma, 1),
                ';' => (Token::Semi, 1),
                ':' => (Token::Colon, 1),
                '=' => (Token::Assign, 1),
                '<' => (Token::Lt, 1),
                '>' => (Token::Gt, 1),
                '+' => (Token::Plus, 1),
                '-' => (Token::Minus, 1),
                '*' => (Token::Star, 1),
                '/' => (Token::Slash, 1),
                '%' => (Token::Percent, 1),
                _ => {
                    // Report the full (possibly multi-byte) character.
                    let ch = src[i..].chars().next().expect("i < len");
                    return Err(LangError::Lex {
                        message: format!("unexpected character `{ch}`"),
                        span: Span::new(start, start + ch.len_utf8()),
                    });
                }
            },
        };
        i += len;
        out.push(SpannedToken {
            token,
            span: Span::new(start, i),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            toks("x1 42 3.5"),
            vec![Token::Ident("x1".into()), Token::Int(42), Token::Float(3.5)]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("for fortune"),
            vec![Token::For, Token::Ident("fortune".into())]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= >= == != :="),
            vec![Token::Le, Token::Ge, Token::Eq, Token::Ne, Token::Assign]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a # comment to end of line\nb"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn integer_not_float_without_digit_after_dot() {
        // A bare `.` is not a token; `1 . 2` fails at the dot.
        assert!(lex("1 . 2").is_err());
        // `12.5` is one float, `12` one int.
        assert_eq!(toks("12.5 12"), vec![Token::Float(12.5), Token::Int(12)]);
    }

    #[test]
    fn unexpected_character_reports_span() {
        let err = lex("a @ b").unwrap_err();
        match err {
            LangError::Lex { span, .. } => assert_eq!(span.start, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn spans_cover_lexemes() {
        let ts = lex("foo 12").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 3));
        assert_eq!(ts[1].span, Span::new(4, 6));
    }
}
