//! Run-time values of the sequential interpreter.

use pdc_istructure::{IMatrix, IStructure};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A scalar run-time value or an I-structure handle.
///
/// Arrays are reference values (handles), matching Id Nouveau: passing an
/// I-structure to a procedure lets the callee define its elements — that is
/// how `init-boundary New` works in the paper's Figure 1.
#[derive(Debug, Clone)]
pub enum Value {
    /// The result of a procedure that falls off the end without `return`.
    Unit,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Handle to a 1-D I-structure.
    Vector(Rc<RefCell<IStructure<Value>>>),
    /// Handle to a 2-D I-structure.
    Matrix(Rc<RefCell<IMatrix<Value>>>),
}

impl Value {
    /// Allocate a fresh 1-D structure of length `n`.
    pub fn new_vector(n: usize) -> Value {
        Value::Vector(Rc::new(RefCell::new(IStructure::new(n))))
    }

    /// Allocate a fresh 2-D structure.
    pub fn new_matrix(rows: usize, cols: usize) -> Value {
        Value::Matrix(Rc::new(RefCell::new(IMatrix::new(rows, cols))))
    }

    /// A short description of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Vector(_) => "vector",
            Value::Matrix(_) => "matrix",
        }
    }

    /// Is this a scalar (storable in an I-structure cell)?
    pub fn is_scalar(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }

    /// Numeric view as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, if an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Mixed numeric comparison for test convenience.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            // Arrays compare by contents (empty cells must match too).
            (Value::Vector(a), Value::Vector(b)) => *a.borrow() == *b.borrow(),
            (Value::Matrix(a), Value::Matrix(b)) => *a.borrow() == *b.borrow(),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Vector(v) => {
                let v = v.borrow();
                write!(f, "vector[{}]", v.len())
            }
            Value::Matrix(m) => {
                let m = m.borrow();
                write!(f, "matrix[{}x{}]", m.rows(), m.cols())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_predicates() {
        assert!(Value::Int(1).is_scalar());
        assert!(Value::Float(1.5).is_scalar());
        assert!(!Value::new_vector(3).is_scalar());
        assert!(!Value::Unit.is_scalar());
    }

    #[test]
    fn mixed_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn vectors_compare_by_contents() {
        let a = Value::new_vector(2);
        let b = Value::new_vector(2);
        assert_eq!(a, b);
        if let Value::Vector(v) = &a {
            v.borrow_mut().write(0, Value::Int(1)).unwrap();
        }
        assert_ne!(a, b);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(Value::new_matrix(2, 3).to_string(), "matrix[2x3]");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
