//! Recursive-descent parser.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{lex, SpannedToken};
use crate::span::Span;
use crate::token::Token;

/// Parse a whole source file and run the static checks.
///
/// # Errors
///
/// Lexing, parsing, or static-check failures are reported with spans; use
/// [`LangError::render`] to attach line/column information.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let program = p.program()?;
    crate::check::check(&program)?;
    Ok(program)
}

/// Parse without running the static checker (used by checker tests).
pub fn parse_unchecked(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.program()
}

/// Maximum expression nesting depth; deeper input gets a clean parse
/// error instead of exhausting the stack of the recursive-descent parser.
const MAX_EXPR_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| self.eof_span())
    }

    fn eof_span(&self) -> Span {
        let end = self.tokens.last().map(|t| t.span.end).unwrap_or(0);
        Span::new(end, end)
    }

    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_else(|| self.eof_span())
    }

    fn advance(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            message: message.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, want: &Token) -> Result<Span, LangError> {
        match self.peek() {
            Some(t) if t == want => Ok(self.advance().unwrap().span),
            Some(t) => Err(self.error(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{want}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), LangError> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                let st = self.advance().unwrap();
                match st.token {
                    Token::Ident(s) => Ok((s, st.span)),
                    _ => unreachable!(),
                }
            }
            Some(t) => Err(self.error(format!("expected identifier, found `{t}`"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<(i64, Span), LangError> {
        match self.peek() {
            Some(Token::Int(_)) => {
                let st = self.advance().unwrap();
                match st.token {
                    Token::Int(v) => Ok((v, st.span)),
                    _ => unreachable!(),
                }
            }
            Some(t) => Err(self.error(format!("expected integer, found `{t}`"))),
            None => Err(self.error("expected integer, found end of input")),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut map_decls = Vec::new();
        let mut procs = Vec::new();
        while let Some(tok) = self.peek() {
            match tok {
                Token::Map => map_decls.extend(self.map_block()?),
                Token::Procedure => procs.push(self.proc()?),
                other => {
                    return Err(self.error(format!(
                        "expected `procedure` or `map` at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(Program { map_decls, procs })
    }

    fn map_block(&mut self) -> Result<Vec<MapDecl>, LangError> {
        self.expect(&Token::Map)?;
        self.expect(&Token::LBrace)?;
        let mut decls = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            let (name, start) = self.expect_ident()?;
            self.expect(&Token::Colon)?;
            let spec = self.dist_spec()?;
            let end = self.expect(&Token::Semi)?;
            decls.push(MapDecl {
                name,
                spec,
                span: start.merge(end),
            });
        }
        self.expect(&Token::RBrace)?;
        Ok(decls)
    }

    fn dist_spec(&mut self) -> Result<DistSpec, LangError> {
        let (name, _) = self.expect_ident()?;
        let mut args = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.advance();
            loop {
                let (v, span) = self.expect_int()?;
                if v < 0 {
                    return Err(LangError::Parse {
                        message: "distribution parameters must be non-negative".into(),
                        span,
                    });
                }
                args.push(v as usize);
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let bad_arity = |want: usize| LangError::Parse {
            message: format!("distribution `{name}` takes {want} parameter(s)"),
            span: self.prev_span(),
        };
        match (name.as_str(), args.as_slice()) {
            ("all", []) => Ok(DistSpec::All),
            ("proc", [p]) => Ok(DistSpec::Proc(*p)),
            ("column_cyclic", []) => Ok(DistSpec::ColumnCyclic),
            ("row_cyclic", []) => Ok(DistSpec::RowCyclic),
            ("column_block", []) => Ok(DistSpec::ColumnBlock),
            ("row_block", []) => Ok(DistSpec::RowBlock),
            ("column_block_cyclic", [b]) => Ok(DistSpec::ColumnBlockCyclic(*b)),
            ("row_block_cyclic", [b]) => Ok(DistSpec::RowBlockCyclic(*b)),
            ("block2d", [r, c]) => Ok(DistSpec::Block2d(*r, *c)),
            ("proc", _) => Err(bad_arity(1)),
            ("column_block_cyclic" | "row_block_cyclic", _) => Err(bad_arity(1)),
            ("block2d", _) => Err(bad_arity(2)),
            ("all" | "column_cyclic" | "row_cyclic" | "column_block" | "row_block", _) => {
                Err(bad_arity(0))
            }
            _ => Err(LangError::Parse {
                message: format!("unknown distribution `{name}`"),
                span: self.prev_span(),
            }),
        }
    }

    fn proc(&mut self) -> Result<Proc, LangError> {
        let start = self.expect(&Token::Procedure)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let header_end = self.expect(&Token::RParen)?;
        let body = self.block()?;
        Ok(Proc {
            name,
            params,
            body,
            span: start.merge(header_end),
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("expected `}`, found end of input"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            Some(Token::Let) => {
                let start = self.advance().unwrap().span;
                let (name, _) = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                let init = self.expr()?;
                let end = self.expect(&Token::Semi)?;
                Ok(Stmt::Let {
                    name,
                    init,
                    span: start.merge(end),
                })
            }
            Some(Token::For) => {
                let start = self.advance().unwrap().span;
                let (var, _) = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                let lo = self.expr()?;
                self.expect(&Token::To)?;
                let hi = self.expr()?;
                let step = if self.peek() == Some(&Token::By) {
                    self.advance();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Token::Do)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    span: start,
                })
            }
            Some(Token::If) => {
                let start = self.advance().unwrap().span;
                let cond = self.expr()?;
                self.expect(&Token::Then)?;
                let then_blk = self.block()?;
                let else_blk = if self.peek() == Some(&Token::Else) {
                    self.advance();
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span: start,
                })
            }
            Some(Token::Return) => {
                let start = self.advance().unwrap().span;
                let value = self.expr()?;
                let end = self.expect(&Token::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: start.merge(end),
                })
            }
            Some(Token::Ident(_)) => self.ident_stmt(),
            Some(t) => Err(self.error(format!("expected statement, found `{t}`"))),
            None => Err(self.error("expected statement, found end of input")),
        }
    }

    /// Statements that begin with an identifier: scalar definition, array
    /// write, or a call for effect.
    fn ident_stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek2() {
            Some(Token::Assign) => {
                let (name, start) = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                let init = self.expr()?;
                let end = self.expect(&Token::Semi)?;
                Ok(Stmt::Let {
                    name,
                    init,
                    span: start.merge(end),
                })
            }
            Some(Token::LBracket) => {
                let (array, start) = self.expect_ident()?;
                self.expect(&Token::LBracket)?;
                let mut indices = vec![self.expr()?];
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                    indices.push(self.expr()?);
                }
                self.expect(&Token::RBracket)?;
                self.expect(&Token::Assign)?;
                let value = self.expr()?;
                let end = self.expect(&Token::Semi)?;
                Ok(Stmt::ArrayWrite {
                    array,
                    indices,
                    value,
                    span: start.merge(end),
                })
            }
            Some(Token::LParen) => {
                let start = self.span();
                let expr = self.expr()?;
                let end = self.expect(&Token::Semi)?;
                if !matches!(expr.kind, ExprKind::Call { .. }) {
                    return Err(LangError::Parse {
                        message: "only calls may be used as statements".into(),
                        span: expr.span,
                    });
                }
                Ok(Stmt::ExprStmt {
                    expr,
                    span: start.merge(end),
                })
            }
            _ => Err(self.error("expected `=`, `[`, or `(` after identifier")),
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.error(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Token::Or) {
            self.advance();
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == Some(&Token::And) {
            self.advance();
            let rhs = self.not_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, LangError> {
        if self.peek() == Some(&Token::Not) {
            let start = self.advance().unwrap().span;
            let operand = self.not_expr()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) | Some(Token::Mod) => BinOp::Mod,
                Some(Token::Div) => BinOp::FloorDiv,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        if self.peek() == Some(&Token::Minus) {
            let start = self.advance().unwrap().span;
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.primary_expr()
    }

    fn paren_args(&mut self) -> Result<(Vec<Expr>, Span), LangError> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let end = self.expect(&Token::RParen)?;
        Ok((args, end))
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let Some(st) = self.tokens.get(self.pos).cloned() else {
            return Err(self.error("expected expression, found end of input"));
        };
        match st.token {
            Token::Int(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Int(v), st.span))
            }
            Token::Float(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Float(v), st.span))
            }
            Token::True => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(true), st.span))
            }
            Token::False => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(false), st.span))
            }
            Token::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Matrix => {
                self.advance();
                let (dims, end) = self.paren_args()?;
                if dims.len() != 2 {
                    return Err(LangError::Parse {
                        message: "matrix(…) takes exactly two dimensions".into(),
                        span: st.span.merge(end),
                    });
                }
                Ok(Expr::new(ExprKind::Alloc { dims }, st.span.merge(end)))
            }
            Token::Vector => {
                self.advance();
                let (dims, end) = self.paren_args()?;
                if dims.len() != 1 {
                    return Err(LangError::Parse {
                        message: "vector(…) takes exactly one dimension".into(),
                        span: st.span.merge(end),
                    });
                }
                Ok(Expr::new(ExprKind::Alloc { dims }, st.span.merge(end)))
            }
            Token::Min | Token::Max => {
                let op = if st.token == Token::Min {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                self.advance();
                let (mut args, end) = self.paren_args()?;
                if args.len() != 2 {
                    return Err(LangError::Parse {
                        message: format!("{op}(…) takes exactly two arguments"),
                        span: st.span.merge(end),
                    });
                }
                let rhs = args.pop().unwrap();
                let lhs = args.pop().unwrap();
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    st.span.merge(end),
                ))
            }
            Token::Ident(name) => {
                self.advance();
                match self.peek() {
                    Some(Token::LParen) => {
                        let (args, end) = self.paren_args()?;
                        Ok(Expr::new(ExprKind::Call { name, args }, st.span.merge(end)))
                    }
                    Some(Token::LBracket) => {
                        self.advance();
                        let mut indices = vec![self.expr()?];
                        if self.peek() == Some(&Token::Comma) {
                            self.advance();
                            indices.push(self.expr()?);
                        }
                        let end = self.expect(&Token::RBracket)?;
                        Ok(Expr::new(
                            ExprKind::ArrayRead {
                                array: name,
                                indices,
                            },
                            st.span.merge(end),
                        ))
                    }
                    _ => Ok(Expr::new(ExprKind::Var(name), st.span)),
                }
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_procedure() {
        let p = parse("procedure main() { return 1 + 2 * 3; }").unwrap();
        assert_eq!(p.procs.len(), 1);
        let main = &p.procs[0];
        assert_eq!(main.name, "main");
        assert!(main.params.is_empty());
        match &main.body.stmts[0] {
            Stmt::Return { value, .. } => match &value.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    // Precedence: 2*3 binds tighter.
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected expr {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_gauss_seidel_shape() {
        let src = r#"
            map { New : column_cyclic; Old : column_cyclic; }
            procedure gs(Old, n) {
                let New = matrix(n, n);
                for j = 2 to n - 1 do {
                    for i = 2 to n - 1 do {
                        New[i, j] = 1 * (New[i-1, j] + New[i, j-1]
                                       + Old[i+1, j] + Old[i, j+1]);
                    }
                }
                return New;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.map_decls.len(), 2);
        assert_eq!(p.map_decls[0].spec, DistSpec::ColumnCyclic);
        let gs = p.proc("gs").unwrap();
        assert_eq!(gs.params, vec!["Old", "n"]);
        assert!(matches!(gs.body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_for_with_step_and_if_else() {
        let src = r#"
            procedure f(n) {
                let acc = vector(n);
                for i = 1 to n by 2 do {
                    if i mod 2 == 1 then { acc[i] = i; } else { acc[i] = 0 - i; }
                }
                return acc[1];
            }
        "#;
        let p = parse(src).unwrap();
        match &p.procs[0].body.stmts[1] {
            Stmt::For {
                step: Some(_),
                body,
                ..
            } => {
                assert!(matches!(
                    body.stmts[0],
                    Stmt::If {
                        else_blk: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn call_statement_and_expression() {
        let src = r#"
            procedure init(a, n) { a[1] = n; return 0; }
            procedure main(n) {
                let a = vector(n);
                init(a, n);
                return a[1] + min(n, 3);
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(
            p.proc("main").unwrap().body.stmts[1],
            Stmt::ExprStmt { .. }
        ));
    }

    #[test]
    fn assignment_without_let_keyword() {
        // The paper writes `a := 5` / `a = 5`.
        let p = parse("procedure f() { a := 5; return a; }").unwrap();
        assert!(matches!(p.procs[0].body.stmts[0], Stmt::Let { .. }));
    }

    #[test]
    fn rejects_non_call_statement() {
        let err =
            parse("procedure g() { return 0; } procedure f() { g() + 2; return 0; }").unwrap_err();
        assert!(err.to_string().contains("only calls"));
    }

    #[test]
    fn rejects_matrix_with_wrong_arity() {
        let err = parse("procedure f() { let a = matrix(1); return 0; }").unwrap_err();
        assert!(err.to_string().contains("two dimensions"));
    }

    #[test]
    fn rejects_unknown_distribution() {
        let err = parse("map { A : scattered; } procedure f() { return 0; }").unwrap_err();
        assert!(err.to_string().contains("unknown distribution"));
    }

    #[test]
    fn map_block_with_parameters() {
        let p =
            parse("map { A : block2d(2, 2); b : proc(1); } procedure f() { return 0; }").unwrap();
        assert_eq!(p.map_decls[0].spec, DistSpec::Block2d(2, 2));
        assert_eq!(p.map_decls[1].spec, DistSpec::Proc(1));
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse("procedure f() { return 1 < 2 < 3; }").is_err());
    }

    #[test]
    fn error_mentions_expected_token() {
        let err = parse("procedure f( { return 0; }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
