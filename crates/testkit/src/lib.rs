//! Deterministic, dependency-free property-testing support.
//!
//! The build environment has no access to a crate registry, so the
//! workspace's property tests cannot use `proptest`. This crate provides
//! the small subset we actually need: a seeded [`Rng`] (SplitMix64), value
//! generators built on it, and a [`cases`] runner that executes a fixed
//! number of cases with *reproducible* per-case seeds and, on failure,
//! names the seed to re-run.
//!
//! Regression policy: when a case fails, the runner prints
//! `testkit: case <k> of <test> failed (seed 0x<seed>)`. To pin that case
//! forever, add a plain `#[test]` that calls the test body with
//! [`Rng::from_seed`]`(0x<seed>)` — regressions live in the test source
//! itself, not in a side-car file.
//!
//! # Examples
//!
//! ```
//! pdc_testkit::cases(64, "doubling", |rng| {
//!     let x = rng.range_i64(-100, 100);
//!     assert_eq!(x + x, 2 * x);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub mod fault;

/// A SplitMix64 pseudo-random generator: tiny, fast, and statistically
/// good enough for test-case generation. Deterministic across platforms.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with an explicit seed (use the seed printed by a
    /// failing [`cases`] run to reproduce it).
    pub fn from_seed(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        let v = (self.next_u64() as u128) % span;
        (lo as i128 + v as i128) as i64
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// A uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A random string of length `0..max_len` drawn from `alphabet`.
    pub fn string_from(&mut self, alphabet: &[char], max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }

    /// A random string of arbitrary Unicode scalar values (for
    /// never-panics robustness tests).
    pub fn unicode_string(&mut self, max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len)
            .map(|_| loop {
                // Bias toward ASCII so syntax-shaped inputs appear often.
                let v = if self.chance(3, 4) {
                    self.next_u64() as u32 % 0x80
                } else {
                    self.next_u64() as u32 % 0x11_0000
                };
                if let Some(c) = char::from_u32(v) {
                    break c;
                }
            })
            .collect()
    }
}

/// Golden constant mixed into per-case seeds so different tests with the
/// same case index still see different streams.
fn case_seed(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `body` for `n` deterministic cases. On a panic inside a case, the
/// case index and seed are printed (so the failure can be reproduced with
/// [`Rng::from_seed`]) and the panic is re-raised.
pub fn cases(n: u64, name: &str, body: impl Fn(&mut Rng)) {
    for case in 0..n {
        let seed = case_seed(name, case);
        let mut rng = Rng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!("testkit: case {case} of `{name}` failed (seed {seed:#x})");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::from_seed(7);
        for _ in 0..10_000 {
            let v = rng.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let u = rng.range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = Rng::from_seed(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = Rng::from_seed(3);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unicode_strings_are_valid() {
        let mut rng = Rng::from_seed(9);
        for _ in 0..200 {
            let s = rng.unicode_string(50);
            assert!(s.chars().count() <= 50);
        }
    }

    #[test]
    fn cases_seeds_differ_per_test_name() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn cases_propagates_panics() {
        cases(4, "panicky", |rng| {
            let _ = rng.next_u64();
            panic!("boom");
        });
    }
}
