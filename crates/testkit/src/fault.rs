//! Seeded generators for machine fault plans.
//!
//! Property tests want "a random but reproducible amount of network
//! damage". [`fault_plan`] draws a [`FaultPlan`] from a testkit [`Rng`]:
//! the plan itself is then a pure function of its own embedded seed, so a
//! failing case reproduces from the single testkit seed the runner prints.
//!
//! Plans generated here are always *recoverable*: the per-triple fault
//! budget stays well below the reliability layer's default retry limit, so
//! a correct protocol implementation must always converge. Black holes
//! (which starve a stream forever) are deliberately not generated — tests
//! that want a guaranteed [`RetriesExhausted`](pdc_machine::MachineError)
//! construct one explicitly.

use crate::Rng;
use pdc_machine::{FaultPlan, ProcId};

/// Draw a recoverable fault plan. The mix of drop/duplicate/delay/reorder
/// probabilities is random but sums to at most 600‰, and the per-triple
/// budget is at most 4 faults — far below the default 16 retries, so every
/// stream always gets through.
pub fn fault_plan(rng: &mut Rng) -> FaultPlan {
    let drop_pm = rng.range_i64(0, 300) as u32;
    let dup_pm = rng.range_i64(0, 150) as u32;
    let delay_pm = rng.range_i64(0, 100) as u32;
    let reorder_pm = rng.range_i64(0, 50) as u32;
    let delay_cycles = rng.range_i64(100, 20_000) as u64;
    let budget = rng.range_i64(1, 5) as u32;
    FaultPlan::seeded(rng.next_u64())
        .with_drops(drop_pm)
        .with_dups(dup_pm)
        .with_delays(delay_pm, delay_cycles)
        .with_reorders(reorder_pm)
        .with_fault_budget(budget)
}

/// Like [`fault_plan`], with a processor stall thrown in: some processor
/// freezes for a while early in its run. `n_procs` bounds the stalled
/// processor id.
pub fn fault_plan_with_stall(rng: &mut Rng, n_procs: usize) -> FaultPlan {
    let plan = fault_plan(rng);
    let proc = ProcId(rng.range_usize(0, n_procs));
    let at_op = rng.range_i64(0, 50) as u64;
    let cycles = rng.range_i64(1_000, 100_000) as u64;
    plan.with_stall(proc, at_op, cycles)
}

/// Draw a crash plan: one scripted processor crash early in the run
/// (charged op 0–29), with no message-level damage, so differential
/// recovery tests isolate the checkpoint/restart path. The early crash
/// point keeps the victim's peers alive through the recovery window —
/// replay needs someone on the other end of the retransmit path.
pub fn crash_plan(rng: &mut Rng, n_procs: usize) -> FaultPlan {
    let proc = ProcId(rng.range_usize(0, n_procs));
    let at_op = rng.range_i64(0, 30) as u64;
    FaultPlan::seeded(rng.next_u64()).with_crash(proc, at_op)
}

/// Like [`crash_plan`] layered on a recoverable lossy plan
/// ([`fault_plan`]): the crashed processor restarts *while* the fabric is
/// dropping and duplicating frames, the hardest recovery case the
/// protocol must still get right.
pub fn crash_plan_with_losses(rng: &mut Rng, n_procs: usize) -> FaultPlan {
    let plan = fault_plan(rng);
    let proc = ProcId(rng.range_usize(0, n_procs));
    let at_op = rng.range_i64(0, 30) as u64;
    plan.with_crash(proc, at_op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_recoverable() {
        let mut rng = Rng::from_seed(0xfa01);
        for _ in 0..100 {
            let plan = fault_plan(&mut rng);
            assert!(plan.max_faults_per_triple <= 4);
            assert!(plan.drop_pm + plan.dup_pm + plan.delay_pm + plan.reorder_pm <= 600);
            assert!(plan.black_holes.is_empty());
        }
    }

    #[test]
    fn generated_plans_are_reproducible() {
        let plan_a = fault_plan(&mut Rng::from_seed(7));
        let plan_b = fault_plan(&mut Rng::from_seed(7));
        assert_eq!(plan_a, plan_b);
    }

    #[test]
    fn crash_plans_are_early_scripted_and_reproducible() {
        let mut rng = Rng::from_seed(0xcc);
        for _ in 0..50 {
            let plan = crash_plan(&mut rng, 4);
            assert_eq!(plan.crashes.len(), 1);
            assert!(plan.crashes[0].proc.0 < 4);
            assert!(plan.crashes[0].at_op < 30);
            assert_eq!(plan.drop_pm, 0, "crash-only plans carry no losses");
        }
        assert_eq!(
            crash_plan(&mut Rng::from_seed(9), 3),
            crash_plan(&mut Rng::from_seed(9), 3)
        );
        let lossy = crash_plan_with_losses(&mut Rng::from_seed(1), 4);
        assert_eq!(lossy.crashes.len(), 1);
        assert!(lossy.max_faults_per_triple <= 4);
    }

    #[test]
    fn stall_plans_name_a_valid_processor() {
        let mut rng = Rng::from_seed(3);
        for _ in 0..50 {
            let plan = fault_plan_with_stall(&mut rng, 4);
            assert_eq!(plan.stalls.len(), 1);
            assert!(plan.stalls[0].proc.0 < 4);
        }
    }
}
