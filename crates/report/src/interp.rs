//! Shared symbolic interpreter over compiled SPMD programs.
//!
//! Both the message-cost model ([`crate::cost`]) and the static
//! communication-safety analyzer (`pdc-analyze`) need the same abstract
//! walk: run each processor's specialized program over the domain
//! `{Int, Float, Bool, ⊤}`, unrolling loops whose bounds are statically
//! known and havocking whatever unknown control flow could touch. This
//! module owns that walk; clients observe it through the [`Events`] sink
//! trait and never duplicate the iteration-space logic.
//!
//! The interpreter mirrors the VM exactly where it matters:
//!
//! * integer arithmetic is Euclidean (`div_euclid`/`rem_euclid`), with
//!   int→float coercion on mixed operands, as in `scalar_binop`;
//! * `for` evaluates `lo`/`hi` once, then runs `v = lo; while (step > 0 ?
//!   v <= hi : v >= hi) { body; v += step }`;
//! * `owner_of` resolves `OwnerSet::One(p)` to `p` and `OwnerSet::All` to
//!   the *executing* processor (replicated data is locally owned);
//! * a `csend` of `k` scalars carries `2k` payload words (the VM encodes
//!   each scalar as a type-tag word plus a value word); a `SendBuf` of
//!   `b[lo..=hi]` carries `2(hi-lo+1)` words.
//!
//! Array and buffer *contents* are opaque: `ARead`/`AReadGlobal`/
//! `BufRead` evaluate to ⊤ (unknown). When an unknown value reaches
//! control flow, a send destination, or a loop bound, the affected
//! communication cannot be counted and the walk reports why through
//! [`Events::note`]; sinks treat any note as loss of exactness.

use pdc_mapping::{DistInstance, OwnerSet};
use pdc_spmd::ir::{RecvTarget, SBinOp, SExpr, SStmt, SUnOp, SpmdProgram};
use std::collections::{BTreeMap, HashMap};

/// Per-statement fuel per processor: a backstop against runaway loop
/// bounds, far above anything the paper's programs execute at
/// analysis-relevant sizes.
pub const FUEL: u64 = 50_000_000;

/// The abstract value domain: concrete scalars plus ⊤ (unknown).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Abs {
    /// A statically known integer.
    Int(i64),
    /// A statically known float.
    Float(f64),
    /// A statically known boolean.
    Bool(bool),
    /// Unknown (typically an array or buffer read).
    Top,
}

impl Abs {
    fn as_f64(self) -> Option<f64> {
        match self {
            Abs::Int(v) => Some(v as f64),
            Abs::Float(v) => Some(v),
            _ => None,
        }
    }
}

/// Where a counted receive lands: named scalar/buffer-slot targets
/// (`crecv`) or a contiguous buffer slice (`brecv`).
#[derive(Debug, Clone, Copy)]
pub enum RecvSink<'a> {
    /// `Recv { into }` — one scalar per target.
    Targets(&'a [RecvTarget]),
    /// `RecvBuf { buf }` — a block received into `buf`.
    Buffer(&'a str),
}

/// Local compute the VM would execute between two communication events,
/// counted by cost class. The walk mirrors the lowering instruction by
/// instruction — one `mem` per `Load`/`Store`/`Alloc*`/`Buf*`, one `alu`
/// per `Bin`/`Un` (global array accesses add two for the Map/Local
/// evaluation), one `istruct` per `ARead`/`AWrite`, one `branch` per
/// `JumpIfFalse` (loop tests and `if` guards) — so a timing sink can
/// charge exactly what `instr_cost` charges at run time. Stack pushes
/// and unconditional jumps cost zero cycles and are not counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// `Bin`/`Un` instructions (`alu_op` cycles each).
    pub alu: u64,
    /// `Load`/`Store`/`AllocDist`/`AllocBuf`/`BufRead`/`BufWrite`
    /// instructions (`mem_op` cycles each).
    pub mem: u64,
    /// `ARead`/`AWrite`/`AReadGlobal`/`AWriteGlobal` instructions
    /// (`istruct_op` cycles each; the global forms also count two `alu`).
    pub istruct: u64,
    /// `JumpIfFalse` instructions (`loop_overhead` cycles each).
    pub branch: u64,
}

impl Work {
    /// No work at all?
    pub fn is_zero(&self) -> bool {
        *self == Work::default()
    }
}

impl std::ops::AddAssign for Work {
    fn add_assign(&mut self, o: Work) {
        self.alu += o.alu;
        self.mem += o.mem;
        self.istruct += o.istruct;
        self.branch += o.branch;
    }
}

/// Instruction-cost classes of evaluating `e`, mirroring the lowering:
/// every expression compiles to pushes (free), loads, ALU operations,
/// and array/buffer accesses whose count depends only on the syntax,
/// never on the values.
pub fn expr_work(e: &SExpr, w: &mut Work) {
    match e {
        SExpr::Int(_) | SExpr::Float(_) | SExpr::Bool(_) | SExpr::MyNode | SExpr::NProcs => {}
        SExpr::Var(_) => w.mem += 1,
        SExpr::Bin(_, a, b) => {
            expr_work(a, w);
            expr_work(b, w);
            w.alu += 1;
        }
        SExpr::Un(_, a) => {
            expr_work(a, w);
            w.alu += 1;
        }
        SExpr::ARead { idx, .. } => {
            for i in idx {
                expr_work(i, w);
            }
            w.istruct += 1;
        }
        SExpr::AReadGlobal { idx, .. } => {
            for i in idx {
                expr_work(i, w);
            }
            w.istruct += 1;
            w.alu += 2;
        }
        SExpr::OwnerOf { idx, .. } | SExpr::LocalOf { idx, .. } => {
            for i in idx {
                expr_work(i, w);
            }
            w.alu += 2;
        }
        SExpr::BufRead { idx, .. } => {
            expr_work(idx, w);
            w.mem += 1;
        }
    }
}

/// Observer of the abstract walk. All hooks default to no-ops so sinks
/// implement only what they consume.
///
/// Event order within one processor is program order under the abstract
/// semantics; processors are walked in increasing id.
pub trait Events {
    /// Walk of processor `proc`'s body is starting.
    fn proc_begin(&mut self, proc: usize) {
        let _ = proc;
    }

    /// Local compute executed since the previous event on `proc`.
    /// Emitted lazily — immediately before each send/recv and once at
    /// the end of the processor's walk — so consecutive local
    /// statements batch into a single call. Never called with zero
    /// work.
    fn work(&mut self, proc: usize, work: Work) {
        let _ = (proc, work);
    }

    /// A send whose destination (and slice, for block sends) was
    /// statically known. `words` is the payload size in machine words.
    fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
        let _ = (proc, dst, tag, words);
    }

    /// A receive whose source (and slice, for block receives) was
    /// statically known.
    fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, sink: RecvSink<'_>) {
        let _ = (proc, src, tag, words, sink);
    }

    /// A write to an I-structure element. `element` is the element's home
    /// — `(owning processor, local row, local col)` — or `None` when the
    /// indices or the distribution are not statically known.
    fn array_write(&mut self, proc: usize, array: &str, element: Option<(usize, i64, i64)>) {
        let _ = (proc, array, element);
    }

    /// A scalar variable was read.
    fn var_read(&mut self, proc: usize, name: &str) {
        let _ = (proc, name);
    }

    /// A buffer was read (element read or block send out of it).
    fn buf_read(&mut self, proc: usize, buf: &str) {
        let _ = (proc, buf);
    }

    /// Exactness was lost; `msg` says why. Any note means the walk's
    /// event stream is an under-approximation.
    fn note(&mut self, proc: usize, msg: String) {
        let _ = (proc, msg);
    }
}

/// Fan one walk out to two sinks — e.g. message counting and timing in a
/// single pass over the program.
pub struct Tee<'a, A: Events, B: Events> {
    /// First sink; sees every event before `b`.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: Events, B: Events> Events for Tee<'_, A, B> {
    fn proc_begin(&mut self, proc: usize) {
        self.a.proc_begin(proc);
        self.b.proc_begin(proc);
    }
    fn work(&mut self, proc: usize, work: Work) {
        self.a.work(proc, work);
        self.b.work(proc, work);
    }
    fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
        self.a.send(proc, dst, tag, words);
        self.b.send(proc, dst, tag, words);
    }
    fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, sink: RecvSink<'_>) {
        self.a.recv(proc, src, tag, words, sink);
        self.b.recv(proc, src, tag, words, sink);
    }
    fn array_write(&mut self, proc: usize, array: &str, element: Option<(usize, i64, i64)>) {
        self.a.array_write(proc, array, element);
        self.b.array_write(proc, array, element);
    }
    fn var_read(&mut self, proc: usize, name: &str) {
        self.a.var_read(proc, name);
        self.b.var_read(proc, name);
    }
    fn buf_read(&mut self, proc: usize, buf: &str) {
        self.a.buf_read(proc, buf);
        self.b.buf_read(proc, buf);
    }
    fn note(&mut self, proc: usize, msg: String) {
        self.a.note(proc, msg.clone());
        self.b.note(proc, msg);
    }
}

/// Run the abstract walk of `prog` over every processor, reporting to
/// `events`.
///
/// `env` seeds every processor's scalar environment (the compile-time
/// constants, e.g. `n = 16`); `arrays` provides distribution instances
/// for arrays that are *preloaded* rather than allocated by the program
/// (an `AllocDist` in the program overrides the seed).
pub fn walk<E: Events>(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
    events: &mut E,
) {
    let nprocs = prog.n_procs();
    for p in 0..nprocs {
        events.proc_begin(p);
        let mut interp = Interp {
            p,
            nprocs,
            env: env.iter().map(|(k, v)| (k.clone(), Abs::Int(*v))).collect(),
            arrays: arrays
                .iter()
                .map(|(k, v)| (k.clone(), Some(v.clone())))
                .collect(),
            fuel: FUEL,
            pending: Work::default(),
            events,
        };
        interp.block(prog.body(p));
        interp.flush_work();
    }
}

struct Interp<'a, E: Events> {
    p: usize,
    nprocs: usize,
    env: HashMap<String, Abs>,
    /// Per-array distribution instances; `None` marks an array whose
    /// extents could not be evaluated (owner queries go to ⊤).
    arrays: HashMap<String, Option<DistInstance>>,
    fuel: u64,
    /// Compute accumulated since the last emitted event, mirroring the
    /// instruction stream the lowering would produce; flushed through
    /// [`Events::work`] before each communication event.
    pending: Work,
    events: &'a mut E,
}

impl<E: Events> Interp<'_, E> {
    fn note(&mut self, msg: String) {
        self.events.note(self.p, msg);
    }

    fn flush_work(&mut self) {
        if !self.pending.is_zero() {
            let w = std::mem::take(&mut self.pending);
            self.events.work(self.p, w);
        }
    }

    fn block(&mut self, body: &[SStmt]) {
        for s in body {
            if self.fuel == 0 {
                self.note(format!("P{}: fuel exhausted, prediction truncated", self.p));
                return;
            }
            self.fuel -= 1;
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Let { var, value } => {
                let v = self.eval(value);
                expr_work(value, &mut self.pending);
                self.pending.mem += 1; // Store
                self.env.insert(var.clone(), v);
            }
            SStmt::AllocDist {
                array,
                rows,
                cols,
                dist,
            } => {
                let inst = match (self.eval(rows), self.eval(cols)) {
                    (Abs::Int(r), Abs::Int(c)) => Some(DistInstance::new(
                        dist.clone(),
                        r.max(0) as usize,
                        c.max(0) as usize,
                        self.nprocs,
                    )),
                    _ => {
                        self.note(format!(
                            "P{}: extents of `{array}` are not statically known",
                            self.p
                        ));
                        None
                    }
                };
                expr_work(rows, &mut self.pending);
                expr_work(cols, &mut self.pending);
                self.pending.mem += 1; // AllocDist
                self.arrays.insert(array.clone(), inst);
            }
            SStmt::AllocBuf { len, .. } => {
                self.eval(len);
                expr_work(len, &mut self.pending);
                self.pending.mem += 1; // AllocBuf
            }
            SStmt::AWrite { array, idx, value } => {
                let element = self.indices(idx).map(|(li, lj)| (self.p, li, lj));
                self.eval(value);
                for i in idx {
                    expr_work(i, &mut self.pending);
                }
                expr_work(value, &mut self.pending);
                self.pending.istruct += 1; // AWrite
                self.events.array_write(self.p, array, element);
            }
            SStmt::AWriteGlobal { array, idx, value } => {
                let element = self.global_element(array, idx);
                self.eval(value);
                for i in idx {
                    expr_work(i, &mut self.pending);
                }
                expr_work(value, &mut self.pending);
                self.pending.istruct += 1; // AWriteGlobal …
                self.pending.alu += 2; // … plus its owner/local maps
                self.events.array_write(self.p, array, element);
            }
            SStmt::BufWrite { idx, value, .. } => {
                self.eval(idx);
                self.eval(value);
                expr_work(value, &mut self.pending);
                expr_work(idx, &mut self.pending);
                self.pending.mem += 1; // BufWrite
            }
            SStmt::Comment(_) => {}
            SStmt::Send { to, tag, values } => {
                for v in values {
                    self.eval(v);
                }
                // The VM evaluates the destination and payload before
                // the zero-cost `Send` instruction itself.
                expr_work(to, &mut self.pending);
                for v in values {
                    expr_work(v, &mut self.pending);
                }
                // Payload size depends only on arity, not on the values.
                let words = 2 * values.len() as u64;
                match self.eval(to) {
                    Abs::Int(dst) if dst >= 0 && (dst as usize) < self.nprocs => {
                        self.flush_work();
                        self.events.send(self.p, dst as usize, *tag, words);
                    }
                    _ => self.note(format!(
                        "P{}: destination of send tag {tag} is not statically known",
                        self.p
                    )),
                }
            }
            SStmt::SendBuf {
                to,
                tag,
                buf,
                lo,
                hi,
            } => {
                self.events.buf_read(self.p, buf);
                expr_work(to, &mut self.pending);
                expr_work(lo, &mut self.pending);
                expr_work(hi, &mut self.pending);
                match (self.eval(to), self.eval(lo), self.eval(hi)) {
                    (Abs::Int(dst), Abs::Int(l), Abs::Int(h))
                        if dst >= 0 && (dst as usize) < self.nprocs && h >= l =>
                    {
                        self.flush_work();
                        self.events
                            .send(self.p, dst as usize, *tag, 2 * (h - l + 1) as u64);
                    }
                    _ => self.note(format!(
                        "P{}: block send tag {tag} has unknown destination or slice",
                        self.p
                    )),
                }
            }
            SStmt::Recv { from, tag, into } => {
                for t in into {
                    self.havoc_target(t);
                }
                // The source is evaluated before the (zero-cost) `Recv`
                // instruction; the stores into the targets execute only
                // after the message has been consumed.
                expr_work(from, &mut self.pending);
                match self.eval(from) {
                    Abs::Int(src) if src >= 0 && (src as usize) < self.nprocs => {
                        self.flush_work();
                        self.events.recv(
                            self.p,
                            src as usize,
                            *tag,
                            2 * into.len() as u64,
                            RecvSink::Targets(into),
                        );
                        for t in into {
                            match t {
                                RecvTarget::Var(_) => self.pending.mem += 1, // Store
                                RecvTarget::Buf { idx, .. } => {
                                    expr_work(idx, &mut self.pending);
                                    self.pending.mem += 1; // BufWrite
                                }
                            }
                        }
                    }
                    _ => self.note(format!(
                        "P{}: source of receive tag {tag} is not statically known",
                        self.p
                    )),
                }
            }
            SStmt::RecvBuf {
                from,
                tag,
                buf,
                lo,
                hi,
            } => {
                expr_work(from, &mut self.pending);
                expr_work(lo, &mut self.pending);
                expr_work(hi, &mut self.pending);
                match (self.eval(from), self.eval(lo), self.eval(hi)) {
                    (Abs::Int(src), Abs::Int(l), Abs::Int(h))
                        if src >= 0 && (src as usize) < self.nprocs && h >= l =>
                    {
                        self.flush_work();
                        self.events.recv(
                            self.p,
                            src as usize,
                            *tag,
                            2 * (h - l + 1) as u64,
                            RecvSink::Buffer(buf),
                        );
                    }
                    _ => self.note(format!(
                        "P{}: block receive tag {tag} has unknown source or slice",
                        self.p
                    )),
                }
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                // The VM evaluates lo/hi once, before the first test.
                let lo_v = self.eval(lo);
                let hi_v = self.eval(hi);
                let step_v = self.eval(step);
                let (Abs::Int(lo_v), Abs::Int(hi_v), Abs::Int(step_v)) = (lo_v, hi_v, step_v)
                else {
                    self.note(format!(
                        "P{}: bounds of loop over `{var}` are not statically known",
                        self.p
                    ));
                    self.havoc_block(body);
                    self.env.insert(var.clone(), Abs::Top);
                    return;
                };
                if step_v == 0 {
                    // The VM faults here; nothing further executes.
                    self.note(format!("P{}: loop over `{var}` has zero step", self.p));
                    return;
                }
                // Loop administration mirrors the lowering: init stores
                // `var` and `$hi` (and `$step` for a dynamic step); a
                // constant step's direction is picked at lowering time so
                // its head is a 2-load compare, while a dynamic step pays
                // the two-sided test on every iteration.
                let const_step = matches!(step, SExpr::Int(_));
                expr_work(lo, &mut self.pending);
                self.pending.mem += 1; // Store var
                expr_work(hi, &mut self.pending);
                self.pending.mem += 1; // Store $hi
                if !const_step {
                    expr_work(step, &mut self.pending);
                    self.pending.mem += 1; // Store $step
                }
                let (head, incr) = if const_step {
                    (
                        Work {
                            mem: 2,
                            alu: 1,
                            branch: 1,
                            ..Work::default()
                        },
                        Work {
                            mem: 2,
                            alu: 1,
                            ..Work::default()
                        },
                    )
                } else {
                    (
                        Work {
                            mem: 6,
                            alu: 7,
                            branch: 1,
                            ..Work::default()
                        },
                        Work {
                            mem: 3,
                            alu: 1,
                            ..Work::default()
                        },
                    )
                };
                let mut v = lo_v;
                loop {
                    // The head test runs once per iteration *and* once
                    // more to fail and exit the loop.
                    self.pending += head;
                    if !(if step_v > 0 { v <= hi_v } else { v >= hi_v }) {
                        break;
                    }
                    if self.fuel == 0 {
                        self.note(format!("P{}: fuel exhausted, prediction truncated", self.p));
                        return;
                    }
                    self.env.insert(var.clone(), Abs::Int(v));
                    self.block(body);
                    self.pending += incr;
                    match v.checked_add(step_v) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                self.env.insert(var.clone(), Abs::Int(v));
            }
            SStmt::If { cond, then, els } => {
                let c = self.eval(cond);
                expr_work(cond, &mut self.pending);
                self.pending.branch += 1; // JumpIfFalse (the trailing Jump is free)
                match c {
                    Abs::Bool(true) => self.block(then),
                    Abs::Bool(false) => self.block(els),
                    _ => {
                        self.note(format!(
                            "P{}: branch condition is not statically known",
                            self.p
                        ));
                        self.havoc_block(then);
                        self.havoc_block(els);
                    }
                }
            }
        }
    }

    fn havoc_target(&mut self, t: &RecvTarget) {
        if let RecvTarget::Var(v) = t {
            self.env.insert(v.clone(), Abs::Top);
        }
    }

    /// A block skipped under unknown control: forget everything it could
    /// assign, and flag any communication it contains as uncounted.
    fn havoc_block(&mut self, body: &[SStmt]) {
        for s in body {
            match s {
                SStmt::Let { var, .. } => {
                    self.env.insert(var.clone(), Abs::Top);
                }
                SStmt::AllocDist { array, .. } => {
                    self.arrays.insert(array.clone(), None);
                }
                SStmt::AWrite { array, .. } | SStmt::AWriteGlobal { array, .. } => {
                    // A write we cannot place: the sink loses single-
                    // assignment coverage for this array.
                    let array = array.clone();
                    self.events.array_write(self.p, &array, None);
                }
                SStmt::Send { tag, .. } | SStmt::SendBuf { tag, .. } => self.note(format!(
                    "P{}: send tag {tag} under unknown control cannot be counted",
                    self.p
                )),
                SStmt::Recv { tag, into, .. } => {
                    for t in into {
                        self.havoc_target(t);
                    }
                    self.note(format!(
                        "P{}: receive tag {tag} under unknown control cannot be counted",
                        self.p
                    ));
                }
                SStmt::RecvBuf { tag, .. } => self.note(format!(
                    "P{}: receive tag {tag} under unknown control cannot be counted",
                    self.p
                )),
                SStmt::For { var, body, .. } => {
                    self.env.insert(var.clone(), Abs::Top);
                    self.havoc_block(body);
                }
                SStmt::If { then, els, .. } => {
                    self.havoc_block(then);
                    self.havoc_block(els);
                }
                SStmt::AllocBuf { .. } | SStmt::BufWrite { .. } | SStmt::Comment(_) => {}
            }
        }
    }

    /// Resolve a global array reference to its home `(owner, li, lj)`.
    fn global_element(&mut self, array: &str, idx: &[SExpr]) -> Option<(usize, i64, i64)> {
        let (i, j) = self.indices(idx)?;
        let inst = self.arrays.get(array)?.clone()?;
        let home = match inst.owner(i, j) {
            OwnerSet::One(q) => q,
            // Replicated data is owned locally (VM rule).
            OwnerSet::All => self.p,
        };
        let (li, lj) = inst.local(i, j);
        Some((home, li, lj))
    }

    fn indices(&mut self, idx: &[SExpr]) -> Option<(i64, i64)> {
        match idx {
            [j] => match self.eval(j) {
                Abs::Int(j) => Some((1, j)),
                _ => None,
            },
            [i, j] => match (self.eval(i), self.eval(j)) {
                (Abs::Int(i), Abs::Int(j)) => Some((i, j)),
                _ => None,
            },
            _ => None,
        }
    }

    fn eval(&mut self, e: &SExpr) -> Abs {
        match e {
            SExpr::Int(v) => Abs::Int(*v),
            SExpr::Float(v) => Abs::Float(*v),
            SExpr::Bool(v) => Abs::Bool(*v),
            SExpr::Var(v) => {
                self.events.var_read(self.p, v);
                self.env.get(v).copied().unwrap_or(Abs::Top)
            }
            SExpr::MyNode => Abs::Int(self.p as i64),
            SExpr::NProcs => Abs::Int(self.nprocs as i64),
            SExpr::Bin(op, a, b) => {
                let a = self.eval(a);
                let b = self.eval(b);
                binop(*op, a, b)
            }
            SExpr::Un(op, a) => match (op, self.eval(a)) {
                (SUnOp::Neg, Abs::Int(v)) => v.checked_neg().map(Abs::Int).unwrap_or(Abs::Top),
                (SUnOp::Neg, Abs::Float(v)) => Abs::Float(-v),
                (SUnOp::Not, Abs::Bool(v)) => Abs::Bool(!v),
                _ => Abs::Top,
            },
            // Array and buffer contents are opaque to the abstract walk,
            // but the reads themselves are observable (unused-receive
            // lint).
            SExpr::ARead { idx, .. } | SExpr::AReadGlobal { idx, .. } => {
                for ix in idx {
                    self.eval(ix);
                }
                Abs::Top
            }
            SExpr::BufRead { buf, idx } => {
                self.events.buf_read(self.p, buf);
                self.eval(idx);
                Abs::Top
            }
            SExpr::OwnerOf { array, idx } => {
                let Some((i, j)) = self.indices(idx) else {
                    return Abs::Top;
                };
                match self.arrays.get(array) {
                    Some(Some(inst)) => match inst.owner(i, j) {
                        OwnerSet::One(q) => Abs::Int(q as i64),
                        // Replicated data is owned locally (VM rule).
                        OwnerSet::All => Abs::Int(self.p as i64),
                    },
                    _ => Abs::Top,
                }
            }
            SExpr::LocalOf { array, idx, dim } => {
                let Some((i, j)) = self.indices(idx) else {
                    return Abs::Top;
                };
                match self.arrays.get(array) {
                    Some(Some(inst)) => {
                        let (li, lj) = inst.local(i, j);
                        Abs::Int(if *dim == 0 { li } else { lj })
                    }
                    _ => Abs::Top,
                }
            }
        }
    }
}

/// Mirror of the VM's `scalar_binop`, lifted to the abstract domain.
pub fn binop(op: SBinOp, l: Abs, r: Abs) -> Abs {
    use SBinOp::*;
    if l == Abs::Top || r == Abs::Top {
        return Abs::Top;
    }
    match op {
        Add | Sub | Mul | Div | FloorDiv | Mod | Min | Max => match (l, r) {
            (Abs::Int(a), Abs::Int(b)) => {
                let v = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Div | FloorDiv => (b != 0).then(|| a.div_euclid(b)),
                    Mod => (b != 0).then(|| a.rem_euclid(b)),
                    Min => Some(a.min(b)),
                    Max => Some(a.max(b)),
                    _ => unreachable!(),
                };
                v.map(Abs::Int).unwrap_or(Abs::Top)
            }
            _ => {
                let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                    return Abs::Top;
                };
                Abs::Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    FloorDiv => (a / b).floor(),
                    Mod => a - b * (a / b).floor(),
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                })
            }
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (Abs::Bool(a), Abs::Bool(b)) => a == b,
                _ => {
                    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                        return Abs::Top;
                    };
                    a == b
                }
            };
            Abs::Bool(if op == Eq { eq } else { !eq })
        }
        Lt | Le | Gt | Ge => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Abs::Top;
            };
            Abs::Bool(match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            })
        }
        And | Or => match (l, r) {
            (Abs::Bool(a), Abs::Bool(b)) => Abs::Bool(if op == And { a && b } else { a || b }),
            _ => Abs::Top,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type WriteEv = (usize, String, Option<(usize, i64, i64)>);

    #[derive(Default)]
    struct Recorder {
        sends: Vec<(usize, usize, u32, u64)>,
        recvs: Vec<(usize, usize, u32, u64)>,
        writes: Vec<WriteEv>,
        notes: Vec<String>,
    }

    impl Events for Recorder {
        fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
            self.sends.push((proc, dst, tag, words));
        }
        fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, _sink: RecvSink<'_>) {
            self.recvs.push((proc, src, tag, words));
        }
        fn array_write(&mut self, proc: usize, array: &str, element: Option<(usize, i64, i64)>) {
            self.writes.push((proc, array.to_string(), element));
        }
        fn note(&mut self, _proc: usize, msg: String) {
            self.notes.push(msg);
        }
    }

    #[test]
    fn events_arrive_in_program_order() {
        let prog = SpmdProgram::new(vec![
            vec![SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(3),
                step: SExpr::int(1),
                body: vec![SStmt::Send {
                    to: SExpr::int(1),
                    tag: 5,
                    values: vec![SExpr::var("i")],
                }],
            }],
            vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 5,
                into: vec![RecvTarget::Var("x".into())],
            }],
        ]);
        let mut rec = Recorder::default();
        walk(&prog, &BTreeMap::new(), &BTreeMap::new(), &mut rec);
        assert_eq!(
            rec.sends,
            vec![(0, 1, 5, 2), (0, 1, 5, 2), (0, 1, 5, 2)],
            "three unrolled sends from P0"
        );
        assert_eq!(rec.recvs, vec![(1, 0, 5, 2)]);
        assert!(rec.notes.is_empty(), "{:?}", rec.notes);
    }

    #[test]
    fn array_writes_resolve_to_their_home() {
        use pdc_mapping::Dist;
        // A 4x4 column-cyclic matrix on 2 procs: column 2 lives on P1.
        let prog = SpmdProgram::new(vec![
            vec![
                SStmt::AllocDist {
                    array: "A".into(),
                    rows: SExpr::int(4),
                    cols: SExpr::int(4),
                    dist: Dist::ColumnCyclic,
                },
                SStmt::AWriteGlobal {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(2)],
                    value: SExpr::int(9),
                },
            ],
            vec![],
        ]);
        let mut rec = Recorder::default();
        walk(&prog, &BTreeMap::new(), &BTreeMap::new(), &mut rec);
        assert_eq!(rec.writes.len(), 1);
        let (proc, array, element) = &rec.writes[0];
        assert_eq!((*proc, array.as_str()), (0, "A"));
        let (home, _li, _lj) = element.expect("statically resolvable");
        assert_eq!(home, 1, "column 2 is owned by P1 under column-cyclic");
    }

    #[test]
    fn havocked_writes_report_unknown_element() {
        let prog = SpmdProgram::new(vec![vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(1),
            },
            SStmt::If {
                cond: SExpr::BufRead {
                    buf: "b".into(),
                    idx: Box::new(SExpr::int(0)),
                }
                .gt(SExpr::int(0)),
                then: vec![SStmt::AWrite {
                    array: "A".into(),
                    idx: vec![SExpr::int(1)],
                    value: SExpr::int(0),
                }],
                els: vec![],
            },
        ]]);
        let mut rec = Recorder::default();
        walk(&prog, &BTreeMap::new(), &BTreeMap::new(), &mut rec);
        assert_eq!(rec.writes, vec![(0, "A".to_string(), None)]);
        assert!(!rec.notes.is_empty());
    }
}
