//! Static message-cost model: abstract interpretation of a specialized
//! SPMD program that predicts, **per `(src, dst, tag)` channel**, the
//! number of messages and payload words each processor will send — the
//! accounting Rogers & Pingali use to argue the Optimized I–III curves
//! (footnote 3's 31,752 vs 2,142 messages).
//!
//! The interpreter mirrors the VM exactly where it matters:
//!
//! * integer arithmetic is Euclidean (`div_euclid`/`rem_euclid`), with
//!   int→float coercion on mixed operands, as in `scalar_binop`;
//! * `for` evaluates `lo`/`hi` once, then runs `v = lo; while (step > 0 ?
//!   v <= hi : v >= hi) { body; v += step }`;
//! * `owner_of` resolves `OwnerSet::One(p)` to `p` and `OwnerSet::All` to
//!   the *executing* processor (replicated data is locally owned);
//! * a `csend` of `k` scalars carries `2k` payload words (the VM encodes
//!   each scalar as a type-tag word plus a value word); a `SendBuf` of
//!   `b[lo..=hi]` carries `2(hi-lo+1)` words.
//!
//! Array and buffer *contents* are opaque: `ARead`/`AReadGlobal`/
//! `BufRead` evaluate to ⊤ (unknown). When an unknown value reaches
//! control flow, a send destination, or a loop bound, the affected
//! communication cannot be counted and the prediction is marked inexact
//! (with a note saying why). On programs whose control flow is
//! independent of array data — all five of the paper's Fig. 6/7 wavefront
//! variants, at every optimization level — the prediction is **exact**.

use crate::interp;
use pdc_mapping::DistInstance;
use pdc_spmd::ir::SpmdProgram;
use std::collections::BTreeMap;

/// Predicted traffic on one `(src, dst, tag)` channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelCost {
    /// Messages sent.
    pub messages: u64,
    /// Payload words (2 per scalar value, matching the VM's encoding).
    pub words: u64,
}

/// The result of statically interpreting one SPMD program.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Predicted sends per `(src, dst, tag)`.
    pub sends: BTreeMap<(usize, usize, u32), ChannelCost>,
    /// Predicted receives per `(src, dst, tag)` — what each destination
    /// expects to consume. On a well-formed program this equals `sends`.
    pub recvs: BTreeMap<(usize, usize, u32), ChannelCost>,
    /// True when every send, receive, loop bound, and branch was
    /// statically evaluable: the counts are then equalities, not bounds.
    pub exact: bool,
    /// Why exactness was lost (empty when `exact`).
    pub notes: Vec<String>,
}

impl Prediction {
    /// Total predicted messages across all channels.
    pub fn total_messages(&self) -> u64 {
        self.sends.values().map(|c| c.messages).sum()
    }

    /// Total predicted payload words across all channels.
    pub fn total_words(&self) -> u64 {
        self.sends.values().map(|c| c.words).sum()
    }

    /// Does every channel's send side agree with its receive side? A
    /// mismatch means the compiled program would deadlock or orphan
    /// messages — a static protocol-consistency check.
    pub fn protocol_consistent(&self) -> bool {
        self.sends == self.recvs
    }
}

/// Counting sink over the shared abstract walk ([`crate::interp`]).
/// Shared with [`crate::makespan`] so prediction and timing can ride the
/// same walk.
pub(crate) struct CostSink {
    pub(crate) out: Prediction,
}

impl CostSink {
    pub(crate) fn new() -> Self {
        CostSink {
            out: Prediction {
                exact: true,
                ..Prediction::default()
            },
        }
    }
}

impl interp::Events for CostSink {
    fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
        let c = self.out.sends.entry((proc, dst, tag)).or_default();
        c.messages += 1;
        c.words += words;
    }

    fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, _sink: interp::RecvSink<'_>) {
        let c = self.out.recvs.entry((src, proc, tag)).or_default();
        c.messages += 1;
        c.words += words;
    }

    fn note(&mut self, _proc: usize, msg: String) {
        self.out.exact = false;
        if self.out.notes.len() < 32 && !self.out.notes.contains(&msg) {
            self.out.notes.push(msg);
        }
    }
}

/// Statically predict the communication of `prog`.
///
/// `env` seeds every processor's scalar environment (the compile-time
/// constants, e.g. `n = 16`); `arrays` provides distribution instances
/// for arrays that are *preloaded* rather than allocated by the program
/// (an `AllocDist` in the program overrides the seed).
pub fn predict(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
) -> Prediction {
    let mut sink = CostSink::new();
    interp::walk(prog, env, arrays, &mut sink);
    sink.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};

    /// P0 streams 1..=n to P1 element-wise.
    fn stream(n: i64) -> SpmdProgram {
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 7,
                values: vec![SExpr::var("i")],
            }],
        }];
        let p1 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 7,
                into: vec![RecvTarget::Var("x".into())],
            }],
        }];
        let _ = n;
        SpmdProgram::new(vec![p0, p1])
    }

    #[test]
    fn counts_element_stream_exactly() {
        let env: BTreeMap<String, i64> = [("n".to_string(), 10)].into();
        let p = predict(&stream(10), &env, &BTreeMap::new());
        assert!(p.exact, "{:?}", p.notes);
        assert_eq!(
            p.sends[&(0, 1, 7)],
            ChannelCost {
                messages: 10,
                words: 20
            }
        );
        assert_eq!(p.total_messages(), 10);
        assert!(p.protocol_consistent());
    }

    #[test]
    fn unknown_bound_degrades_gracefully() {
        // No binding for n: the loop cannot be counted.
        let p = predict(&stream(10), &BTreeMap::new(), &BTreeMap::new());
        assert!(!p.exact);
        assert!(p.sends.is_empty());
        assert!(!p.notes.is_empty());
    }

    #[test]
    fn data_dependent_branch_is_inexact() {
        let prog = SpmdProgram::new(vec![
            vec![
                SStmt::AllocBuf {
                    buf: "b".into(),
                    len: SExpr::int(1),
                },
                SStmt::If {
                    cond: SExpr::BufRead {
                        buf: "b".into(),
                        idx: Box::new(SExpr::int(0)),
                    }
                    .gt(SExpr::int(0)),
                    then: vec![SStmt::Send {
                        to: SExpr::int(1),
                        tag: 3,
                        values: vec![SExpr::int(1)],
                    }],
                    els: vec![],
                },
            ],
            vec![],
        ]);
        let p = predict(&prog, &BTreeMap::new(), &BTreeMap::new());
        assert!(!p.exact);
        assert!(p.notes.iter().any(|n| n.contains("tag 3")));
    }

    #[test]
    fn owner_of_mirrors_vm() {
        use pdc_mapping::Dist;
        // owner(column_cyclic, (1, j)) = (j - 1) mod nprocs; replicated
        // arrays are owned locally.
        let prog = SpmdProgram::new(vec![
            vec![
                SStmt::AllocDist {
                    array: "A".into(),
                    rows: SExpr::int(4),
                    cols: SExpr::int(4),
                    dist: Dist::ColumnCyclic,
                },
                SStmt::Let {
                    var: "o".into(),
                    value: SExpr::OwnerOf {
                        array: "A".into(),
                        idx: vec![SExpr::int(1), SExpr::int(2)],
                    },
                },
                SStmt::If {
                    cond: SExpr::var("o").eq(SExpr::int(1)),
                    then: vec![SStmt::Send {
                        to: SExpr::var("o"),
                        tag: 1,
                        values: vec![SExpr::int(0)],
                    }],
                    els: vec![],
                },
            ],
            vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            }],
        ]);
        let p = predict(&prog, &BTreeMap::new(), &BTreeMap::new());
        assert!(p.exact, "{:?}", p.notes);
        assert_eq!(p.sends[&(0, 1, 1)].messages, 1);
        assert!(p.protocol_consistent());
    }
}
