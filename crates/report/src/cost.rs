//! Static message-cost model: abstract interpretation of a specialized
//! SPMD program that predicts, **per `(src, dst, tag)` channel**, the
//! number of messages and payload words each processor will send — the
//! accounting Rogers & Pingali use to argue the Optimized I–III curves
//! (footnote 3's 31,752 vs 2,142 messages).
//!
//! The interpreter mirrors the VM exactly where it matters:
//!
//! * integer arithmetic is Euclidean (`div_euclid`/`rem_euclid`), with
//!   int→float coercion on mixed operands, as in `scalar_binop`;
//! * `for` evaluates `lo`/`hi` once, then runs `v = lo; while (step > 0 ?
//!   v <= hi : v >= hi) { body; v += step }`;
//! * `owner_of` resolves `OwnerSet::One(p)` to `p` and `OwnerSet::All` to
//!   the *executing* processor (replicated data is locally owned);
//! * a `csend` of `k` scalars carries `2k` payload words (the VM encodes
//!   each scalar as a type-tag word plus a value word); a `SendBuf` of
//!   `b[lo..=hi]` carries `2(hi-lo+1)` words.
//!
//! Array and buffer *contents* are opaque: `ARead`/`AReadGlobal`/
//! `BufRead` evaluate to ⊤ (unknown). When an unknown value reaches
//! control flow, a send destination, or a loop bound, the affected
//! communication cannot be counted and the prediction is marked inexact
//! (with a note saying why). On programs whose control flow is
//! independent of array data — all five of the paper's Fig. 6/7 wavefront
//! variants, at every optimization level — the prediction is **exact**.

use pdc_mapping::{DistInstance, OwnerSet};
use pdc_spmd::ir::{RecvTarget, SBinOp, SExpr, SStmt, SUnOp, SpmdProgram};
use std::collections::{BTreeMap, HashMap};

/// Predicted traffic on one `(src, dst, tag)` channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelCost {
    /// Messages sent.
    pub messages: u64,
    /// Payload words (2 per scalar value, matching the VM's encoding).
    pub words: u64,
}

/// The result of statically interpreting one SPMD program.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Predicted sends per `(src, dst, tag)`.
    pub sends: BTreeMap<(usize, usize, u32), ChannelCost>,
    /// Predicted receives per `(src, dst, tag)` — what each destination
    /// expects to consume. On a well-formed program this equals `sends`.
    pub recvs: BTreeMap<(usize, usize, u32), ChannelCost>,
    /// True when every send, receive, loop bound, and branch was
    /// statically evaluable: the counts are then equalities, not bounds.
    pub exact: bool,
    /// Why exactness was lost (empty when `exact`).
    pub notes: Vec<String>,
}

impl Prediction {
    /// Total predicted messages across all channels.
    pub fn total_messages(&self) -> u64 {
        self.sends.values().map(|c| c.messages).sum()
    }

    /// Total predicted payload words across all channels.
    pub fn total_words(&self) -> u64 {
        self.sends.values().map(|c| c.words).sum()
    }

    /// Does every channel's send side agree with its receive side? A
    /// mismatch means the compiled program would deadlock or orphan
    /// messages — a static protocol-consistency check.
    pub fn protocol_consistent(&self) -> bool {
        self.sends == self.recvs
    }
}

/// Per-statement fuel per processor: a backstop against runaway loop
/// bounds, far above anything the paper's programs execute at
/// prediction-relevant sizes.
const FUEL: u64 = 50_000_000;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Abs {
    Int(i64),
    Float(f64),
    Bool(bool),
    Top,
}

impl Abs {
    fn as_f64(self) -> Option<f64> {
        match self {
            Abs::Int(v) => Some(v as f64),
            Abs::Float(v) => Some(v),
            _ => None,
        }
    }
}

struct Interp<'a> {
    p: usize,
    nprocs: usize,
    env: HashMap<String, Abs>,
    /// Per-array distribution instances; `None` marks an array whose
    /// extents could not be evaluated (owner queries go to ⊤).
    arrays: HashMap<String, Option<DistInstance>>,
    fuel: u64,
    out: &'a mut Prediction,
}

/// Statically predict the communication of `prog`.
///
/// `env` seeds every processor's scalar environment (the compile-time
/// constants, e.g. `n = 16`); `arrays` provides distribution instances
/// for arrays that are *preloaded* rather than allocated by the program
/// (an `AllocDist` in the program overrides the seed).
pub fn predict(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
) -> Prediction {
    let mut out = Prediction {
        exact: true,
        ..Prediction::default()
    };
    let nprocs = prog.n_procs();
    for p in 0..nprocs {
        let mut interp = Interp {
            p,
            nprocs,
            env: env.iter().map(|(k, v)| (k.clone(), Abs::Int(*v))).collect(),
            arrays: arrays
                .iter()
                .map(|(k, v)| (k.clone(), Some(v.clone())))
                .collect(),
            fuel: FUEL,
            out: &mut out,
        };
        interp.block(prog.body(p));
    }
    out
}

impl Interp<'_> {
    fn note(&mut self, msg: String) {
        self.out.exact = false;
        if self.out.notes.len() < 32 && !self.out.notes.contains(&msg) {
            self.out.notes.push(msg);
        }
    }

    fn block(&mut self, body: &[SStmt]) {
        for s in body {
            if self.fuel == 0 {
                self.note(format!("P{}: fuel exhausted, prediction truncated", self.p));
                return;
            }
            self.fuel -= 1;
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Let { var, value } => {
                let v = self.eval(value);
                self.env.insert(var.clone(), v);
            }
            SStmt::AllocDist {
                array,
                rows,
                cols,
                dist,
            } => {
                let inst = match (self.eval(rows), self.eval(cols)) {
                    (Abs::Int(r), Abs::Int(c)) => Some(DistInstance::new(
                        dist.clone(),
                        r.max(0) as usize,
                        c.max(0) as usize,
                        self.nprocs,
                    )),
                    _ => {
                        self.note(format!(
                            "P{}: extents of `{array}` are not statically known",
                            self.p
                        ));
                        None
                    }
                };
                self.arrays.insert(array.clone(), inst);
            }
            SStmt::AllocBuf { .. }
            | SStmt::AWrite { .. }
            | SStmt::AWriteGlobal { .. }
            | SStmt::BufWrite { .. }
            | SStmt::Comment(_) => {}
            SStmt::Send { to, tag, values } => {
                // Payload size depends only on arity, not on the values.
                let words = 2 * values.len() as u64;
                match self.eval(to) {
                    Abs::Int(dst) if dst >= 0 && (dst as usize) < self.nprocs => {
                        let c = self
                            .out
                            .sends
                            .entry((self.p, dst as usize, *tag))
                            .or_default();
                        c.messages += 1;
                        c.words += words;
                    }
                    _ => self.note(format!(
                        "P{}: destination of send tag {tag} is not statically known",
                        self.p
                    )),
                }
            }
            SStmt::SendBuf {
                to, tag, lo, hi, ..
            } => match (self.eval(to), self.eval(lo), self.eval(hi)) {
                (Abs::Int(dst), Abs::Int(l), Abs::Int(h))
                    if dst >= 0 && (dst as usize) < self.nprocs && h >= l =>
                {
                    let c = self
                        .out
                        .sends
                        .entry((self.p, dst as usize, *tag))
                        .or_default();
                    c.messages += 1;
                    c.words += 2 * (h - l + 1) as u64;
                }
                _ => self.note(format!(
                    "P{}: block send tag {tag} has unknown destination or slice",
                    self.p
                )),
            },
            SStmt::Recv { from, tag, into } => {
                for t in into {
                    self.havoc_target(t);
                }
                match self.eval(from) {
                    Abs::Int(src) if src >= 0 && (src as usize) < self.nprocs => {
                        let c = self
                            .out
                            .recvs
                            .entry((src as usize, self.p, *tag))
                            .or_default();
                        c.messages += 1;
                        c.words += 2 * into.len() as u64;
                    }
                    _ => self.note(format!(
                        "P{}: source of receive tag {tag} is not statically known",
                        self.p
                    )),
                }
            }
            SStmt::RecvBuf {
                from, tag, lo, hi, ..
            } => match (self.eval(from), self.eval(lo), self.eval(hi)) {
                (Abs::Int(src), Abs::Int(l), Abs::Int(h))
                    if src >= 0 && (src as usize) < self.nprocs && h >= l =>
                {
                    let c = self
                        .out
                        .recvs
                        .entry((src as usize, self.p, *tag))
                        .or_default();
                    c.messages += 1;
                    c.words += 2 * (h - l + 1) as u64;
                }
                _ => self.note(format!(
                    "P{}: block receive tag {tag} has unknown source or slice",
                    self.p
                )),
            },
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                // The VM evaluates lo/hi once, before the first test.
                let lo = self.eval(lo);
                let hi = self.eval(hi);
                let step = self.eval(step);
                let (Abs::Int(lo), Abs::Int(hi), Abs::Int(step)) = (lo, hi, step) else {
                    self.note(format!(
                        "P{}: bounds of loop over `{var}` are not statically known",
                        self.p
                    ));
                    self.havoc_block(body);
                    self.env.insert(var.clone(), Abs::Top);
                    return;
                };
                if step == 0 {
                    // The VM faults here; nothing further executes.
                    self.note(format!("P{}: loop over `{var}` has zero step", self.p));
                    return;
                }
                let mut v = lo;
                while if step > 0 { v <= hi } else { v >= hi } {
                    if self.fuel == 0 {
                        self.note(format!("P{}: fuel exhausted, prediction truncated", self.p));
                        return;
                    }
                    self.env.insert(var.clone(), Abs::Int(v));
                    self.block(body);
                    match v.checked_add(step) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                self.env.insert(var.clone(), Abs::Int(v));
            }
            SStmt::If { cond, then, els } => match self.eval(cond) {
                Abs::Bool(true) => self.block(then),
                Abs::Bool(false) => self.block(els),
                _ => {
                    self.note(format!(
                        "P{}: branch condition is not statically known",
                        self.p
                    ));
                    self.havoc_block(then);
                    self.havoc_block(els);
                }
            },
        }
    }

    fn havoc_target(&mut self, t: &RecvTarget) {
        if let RecvTarget::Var(v) = t {
            self.env.insert(v.clone(), Abs::Top);
        }
    }

    /// A block skipped under unknown control: forget everything it could
    /// assign, and flag any communication it contains as uncounted.
    fn havoc_block(&mut self, body: &[SStmt]) {
        for s in body {
            match s {
                SStmt::Let { var, .. } => {
                    self.env.insert(var.clone(), Abs::Top);
                }
                SStmt::AllocDist { array, .. } => {
                    self.arrays.insert(array.clone(), None);
                }
                SStmt::Send { tag, .. } | SStmt::SendBuf { tag, .. } => self.note(format!(
                    "P{}: send tag {tag} under unknown control cannot be counted",
                    self.p
                )),
                SStmt::Recv { tag, into, .. } => {
                    for t in into {
                        self.havoc_target(t);
                    }
                    self.note(format!(
                        "P{}: receive tag {tag} under unknown control cannot be counted",
                        self.p
                    ));
                }
                SStmt::RecvBuf { tag, .. } => self.note(format!(
                    "P{}: receive tag {tag} under unknown control cannot be counted",
                    self.p
                )),
                SStmt::For { var, body, .. } => {
                    self.env.insert(var.clone(), Abs::Top);
                    self.havoc_block(body);
                }
                SStmt::If { then, els, .. } => {
                    self.havoc_block(then);
                    self.havoc_block(els);
                }
                SStmt::AllocBuf { .. }
                | SStmt::AWrite { .. }
                | SStmt::AWriteGlobal { .. }
                | SStmt::BufWrite { .. }
                | SStmt::Comment(_) => {}
            }
        }
    }

    fn indices(&mut self, idx: &[SExpr]) -> Option<(i64, i64)> {
        match idx {
            [j] => match self.eval(j) {
                Abs::Int(j) => Some((1, j)),
                _ => None,
            },
            [i, j] => match (self.eval(i), self.eval(j)) {
                (Abs::Int(i), Abs::Int(j)) => Some((i, j)),
                _ => None,
            },
            _ => None,
        }
    }

    fn eval(&mut self, e: &SExpr) -> Abs {
        match e {
            SExpr::Int(v) => Abs::Int(*v),
            SExpr::Float(v) => Abs::Float(*v),
            SExpr::Bool(v) => Abs::Bool(*v),
            SExpr::Var(v) => self.env.get(v).copied().unwrap_or(Abs::Top),
            SExpr::MyNode => Abs::Int(self.p as i64),
            SExpr::NProcs => Abs::Int(self.nprocs as i64),
            SExpr::Bin(op, a, b) => {
                let a = self.eval(a);
                let b = self.eval(b);
                binop(*op, a, b)
            }
            SExpr::Un(op, a) => match (op, self.eval(a)) {
                (SUnOp::Neg, Abs::Int(v)) => v.checked_neg().map(Abs::Int).unwrap_or(Abs::Top),
                (SUnOp::Neg, Abs::Float(v)) => Abs::Float(-v),
                (SUnOp::Not, Abs::Bool(v)) => Abs::Bool(!v),
                _ => Abs::Top,
            },
            // Array and buffer contents are opaque to the cost model.
            SExpr::ARead { .. } | SExpr::AReadGlobal { .. } | SExpr::BufRead { .. } => Abs::Top,
            SExpr::OwnerOf { array, idx } => {
                let Some((i, j)) = self.indices(idx) else {
                    return Abs::Top;
                };
                match self.arrays.get(array) {
                    Some(Some(inst)) => match inst.owner(i, j) {
                        OwnerSet::One(q) => Abs::Int(q as i64),
                        // Replicated data is owned locally (VM rule).
                        OwnerSet::All => Abs::Int(self.p as i64),
                    },
                    _ => Abs::Top,
                }
            }
            SExpr::LocalOf { array, idx, dim } => {
                let Some((i, j)) = self.indices(idx) else {
                    return Abs::Top;
                };
                match self.arrays.get(array) {
                    Some(Some(inst)) => {
                        let (li, lj) = inst.local(i, j);
                        Abs::Int(if *dim == 0 { li } else { lj })
                    }
                    _ => Abs::Top,
                }
            }
        }
    }
}

/// Mirror of the VM's `scalar_binop`, lifted to the abstract domain.
fn binop(op: SBinOp, l: Abs, r: Abs) -> Abs {
    use SBinOp::*;
    if l == Abs::Top || r == Abs::Top {
        return Abs::Top;
    }
    match op {
        Add | Sub | Mul | Div | FloorDiv | Mod | Min | Max => match (l, r) {
            (Abs::Int(a), Abs::Int(b)) => {
                let v = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Div | FloorDiv => (b != 0).then(|| a.div_euclid(b)),
                    Mod => (b != 0).then(|| a.rem_euclid(b)),
                    Min => Some(a.min(b)),
                    Max => Some(a.max(b)),
                    _ => unreachable!(),
                };
                v.map(Abs::Int).unwrap_or(Abs::Top)
            }
            _ => {
                let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                    return Abs::Top;
                };
                Abs::Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    FloorDiv => (a / b).floor(),
                    Mod => a - b * (a / b).floor(),
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                })
            }
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (Abs::Bool(a), Abs::Bool(b)) => a == b,
                _ => {
                    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                        return Abs::Top;
                    };
                    a == b
                }
            };
            Abs::Bool(if op == Eq { eq } else { !eq })
        }
        Lt | Le | Gt | Ge => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Abs::Top;
            };
            Abs::Bool(match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            })
        }
        And | Or => match (l, r) {
            (Abs::Bool(a), Abs::Bool(b)) => Abs::Bool(if op == And { a && b } else { a || b }),
            _ => Abs::Top,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};

    /// P0 streams 1..=n to P1 element-wise.
    fn stream(n: i64) -> SpmdProgram {
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 7,
                values: vec![SExpr::var("i")],
            }],
        }];
        let p1 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 7,
                into: vec![RecvTarget::Var("x".into())],
            }],
        }];
        let _ = n;
        SpmdProgram::new(vec![p0, p1])
    }

    #[test]
    fn counts_element_stream_exactly() {
        let env: BTreeMap<String, i64> = [("n".to_string(), 10)].into();
        let p = predict(&stream(10), &env, &BTreeMap::new());
        assert!(p.exact, "{:?}", p.notes);
        assert_eq!(
            p.sends[&(0, 1, 7)],
            ChannelCost {
                messages: 10,
                words: 20
            }
        );
        assert_eq!(p.total_messages(), 10);
        assert!(p.protocol_consistent());
    }

    #[test]
    fn unknown_bound_degrades_gracefully() {
        // No binding for n: the loop cannot be counted.
        let p = predict(&stream(10), &BTreeMap::new(), &BTreeMap::new());
        assert!(!p.exact);
        assert!(p.sends.is_empty());
        assert!(!p.notes.is_empty());
    }

    #[test]
    fn data_dependent_branch_is_inexact() {
        let prog = SpmdProgram::new(vec![
            vec![
                SStmt::AllocBuf {
                    buf: "b".into(),
                    len: SExpr::int(1),
                },
                SStmt::If {
                    cond: SExpr::BufRead {
                        buf: "b".into(),
                        idx: Box::new(SExpr::int(0)),
                    }
                    .gt(SExpr::int(0)),
                    then: vec![SStmt::Send {
                        to: SExpr::int(1),
                        tag: 3,
                        values: vec![SExpr::int(1)],
                    }],
                    els: vec![],
                },
            ],
            vec![],
        ]);
        let p = predict(&prog, &BTreeMap::new(), &BTreeMap::new());
        assert!(!p.exact);
        assert!(p.notes.iter().any(|n| n.contains("tag 3")));
    }

    #[test]
    fn owner_of_mirrors_vm() {
        use pdc_mapping::Dist;
        // owner(column_cyclic, (1, j)) = (j - 1) mod nprocs; replicated
        // arrays are owned locally.
        let prog = SpmdProgram::new(vec![
            vec![
                SStmt::AllocDist {
                    array: "A".into(),
                    rows: SExpr::int(4),
                    cols: SExpr::int(4),
                    dist: Dist::ColumnCyclic,
                },
                SStmt::Let {
                    var: "o".into(),
                    value: SExpr::OwnerOf {
                        array: "A".into(),
                        idx: vec![SExpr::int(1), SExpr::int(2)],
                    },
                },
                SStmt::If {
                    cond: SExpr::var("o").eq(SExpr::int(1)),
                    then: vec![SStmt::Send {
                        to: SExpr::var("o"),
                        tag: 1,
                        values: vec![SExpr::int(0)],
                    }],
                    els: vec![],
                },
            ],
            vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            }],
        ]);
        let p = predict(&prog, &BTreeMap::new(), &BTreeMap::new());
        assert!(p.exact, "{:?}", p.notes);
        assert_eq!(p.sends[&(0, 1, 1)].messages, 1);
        assert!(p.protocol_consistent());
    }
}
