//! Exact static makespan model over the abstract walk.
//!
//! [`crate::cost::predict`] counts *what* a compiled program
//! communicates; this module additionally predicts *when* it finishes.
//! The simulator's timing is a pure max-plus recurrence over
//! per-processor clocks (see `crates/machine/src/fabric.rs`):
//!
//! * local compute advances the executing clock by the summed
//!   `instr_cost` of the instructions run;
//! * a send advances the sender by `send_cost(words)` and stamps the
//!   message's arrival at `sender clock + flight`;
//! * a receive sets the receiver to `max(receiver clock, arrival) +
//!   recv_cost(words)`, with FIFO order per `(src, dst, tag)` channel;
//! * the makespan is the maximum final clock.
//!
//! The abstract walk replays each processor's body in program order and
//! — through [`interp::Events::work`] — reports exactly the instruction
//! mix the lowering would execute. Collecting those streams and running
//! the same recurrence therefore reproduces the simulator's makespan
//! *cycle for cycle* on any program the walk handles exactly. The one
//! wrinkle is ordering: the walk finishes processor 0 before starting
//! processor 1, while arrival times flow between processors, so the
//! replay is two-phase — collect all streams first, then iterate
//! round-robin with per-channel FIFO arrival queues until every stream
//! is drained (a full round with no progress is a deadlock and the
//! estimate is marked inexact).
//!
//! This is the scoring function of the decomposition tuner (`pdc-tune`):
//! candidates are ranked by predicted makespan, and the prediction is
//! trusted only when `exact` — anything the walk could not count is
//! pruned rather than guessed at.

use crate::cost::{CostSink, Prediction};
use crate::interp::{self, Events, RecvSink, Work};
use pdc_machine::CostModel;
use pdc_mapping::DistInstance;
use pdc_spmd::ir::SpmdProgram;
use std::collections::{BTreeMap, VecDeque};

/// One event of a processor's program-order stream.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Local compute, already converted to cycles.
    Work(u64),
    /// A send on channel `(self, dst, tag)`.
    Send { dst: usize, tag: u32, words: u64 },
    /// A receive on channel `(src, self, tag)`.
    Recv { src: usize, tag: u32, words: u64 },
}

/// Statically predicted execution-time profile of one compiled program
/// under one [`CostModel`].
#[derive(Debug, Clone, Default)]
pub struct MakespanEstimate {
    /// Predicted final clock per processor (empty when the walk lost
    /// exactness before the replay could run).
    pub clocks: Vec<u64>,
    /// True when every loop bound, branch, and message endpoint was
    /// statically evaluable *and* the replay delivered every receive:
    /// the clocks are then equalities with the simulator, not bounds.
    pub exact: bool,
    /// Why exactness was lost (empty when `exact`).
    pub notes: Vec<String>,
}

impl MakespanEstimate {
    /// Predicted makespan: the maximum final clock.
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }
}

/// Stream-collecting sink: converts [`Work`] to cycles under the cost
/// model and records communication in program order per processor.
struct TimingSink<'c> {
    cost: &'c CostModel,
    streams: Vec<Vec<Ev>>,
    exact: bool,
    notes: Vec<String>,
}

impl<'c> TimingSink<'c> {
    fn new(cost: &'c CostModel, nprocs: usize) -> Self {
        TimingSink {
            cost,
            streams: vec![Vec::new(); nprocs],
            exact: true,
            notes: Vec::new(),
        }
    }

    fn lose(&mut self, msg: String) {
        self.exact = false;
        if self.notes.len() < 32 && !self.notes.contains(&msg) {
            self.notes.push(msg);
        }
    }
}

impl Events for TimingSink<'_> {
    fn work(&mut self, proc: usize, w: Work) {
        let c = self.cost;
        let cycles = w.alu * c.alu_op
            + w.mem * c.mem_op
            + w.istruct * c.istruct_op
            + w.branch * c.loop_overhead;
        if cycles == 0 {
            return;
        }
        // Merge with a preceding compute event so streams stay compact.
        if let Some(Ev::Work(prev)) = self.streams[proc].last_mut() {
            *prev = prev.saturating_add(cycles);
        } else {
            self.streams[proc].push(Ev::Work(cycles));
        }
    }

    fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
        if dst == proc {
            // The VM treats a self-send as a process fault; there is no
            // makespan to predict.
            self.lose(format!("P{proc}: self-send on tag {tag}"));
            return;
        }
        self.streams[proc].push(Ev::Send { dst, tag, words });
    }

    fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, _sink: RecvSink<'_>) {
        self.streams[proc].push(Ev::Recv { src, tag, words });
    }

    fn note(&mut self, _proc: usize, msg: String) {
        self.lose(msg);
    }
}

impl TimingSink<'_> {
    fn finish(self) -> MakespanEstimate {
        let TimingSink {
            cost,
            streams,
            exact,
            mut notes,
        } = self;
        if !exact {
            return MakespanEstimate {
                clocks: Vec::new(),
                exact: false,
                notes,
            };
        }
        match replay(&streams, cost) {
            Some(clocks) => MakespanEstimate {
                clocks,
                exact: true,
                notes,
            },
            None => {
                notes.push(
                    "replay: a receive is never satisfied (deadlock or protocol mismatch)".into(),
                );
                MakespanEstimate {
                    clocks: Vec::new(),
                    exact: false,
                    notes,
                }
            }
        }
    }
}

/// Run the simulator's max-plus recurrence over the collected streams.
/// Returns `None` when a full round makes no progress (some receive can
/// never be satisfied).
fn replay(streams: &[Vec<Ev>], cost: &CostModel) -> Option<Vec<u64>> {
    let nprocs = streams.len();
    let mut clocks = vec![0u64; nprocs];
    let mut pcs = vec![0usize; nprocs];
    // Arrival stamps per (src, dst, tag), FIFO: within one typed channel
    // delivery order is send order (program order on the sender).
    let mut channels: BTreeMap<(usize, usize, u32), VecDeque<u64>> = BTreeMap::new();
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for p in 0..nprocs {
            let stream = &streams[p];
            while pcs[p] < stream.len() {
                match stream[pcs[p]] {
                    Ev::Work(c) => clocks[p] = clocks[p].saturating_add(c),
                    Ev::Send { dst, tag, words } => {
                        clocks[p] = clocks[p].saturating_add(cost.send_cost(words as usize));
                        channels
                            .entry((p, dst, tag))
                            .or_default()
                            .push_back(clocks[p].saturating_add(cost.flight));
                    }
                    Ev::Recv { src, tag, words } => {
                        let Some(arrives) =
                            channels.get_mut(&(src, p, tag)).and_then(|q| q.pop_front())
                        else {
                            break; // blocked: the message is not sent yet
                        };
                        clocks[p] = clocks[p]
                            .max(arrives)
                            .saturating_add(cost.recv_cost(words as usize));
                    }
                }
                pcs[p] += 1;
                progressed = true;
            }
            if pcs[p] < stream.len() {
                all_done = false;
            }
        }
        if all_done {
            return Some(clocks);
        }
        if !progressed {
            return None;
        }
    }
}

/// Statically predict the per-processor finish times of `prog` under
/// `cost`. `env` and `arrays` seed the walk exactly as in
/// [`crate::cost::predict`].
pub fn estimate(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
    cost: &CostModel,
) -> MakespanEstimate {
    let mut sink = TimingSink::new(cost, prog.n_procs());
    interp::walk(prog, env, arrays, &mut sink);
    sink.finish()
}

/// Message counts and timing from a single walk — what the tuner runs
/// per candidate.
pub fn predict_and_estimate(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
    cost: &CostModel,
) -> (Prediction, MakespanEstimate) {
    let mut counts = CostSink::new();
    let mut timing = TimingSink::new(cost, prog.n_procs());
    let mut tee = interp::Tee {
        a: &mut counts,
        b: &mut timing,
    };
    interp::walk(prog, env, arrays, &mut tee);
    (counts.out, timing.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_spmd::ir::{RecvTarget, SExpr, SStmt};
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    /// Measured simulator makespan of `prog` with `n` preset on every
    /// processor.
    fn measured(prog: &SpmdProgram, presets: &[(&str, i64)], cost: CostModel) -> u64 {
        let mut m = SpmdMachine::new(prog, cost).expect("lowers");
        for (k, v) in presets {
            m.preset_var(k, Scalar::Int(*v));
        }
        let out = m.run().expect("runs to completion");
        out.report.stats.makespan().0
    }

    fn env_of(presets: &[(&str, i64)]) -> BTreeMap<String, i64> {
        presets.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn assert_exactly_matches(prog: &SpmdProgram, presets: &[(&str, i64)]) {
        for cost in [
            CostModel::ipsc2(),
            CostModel::zero(),
            CostModel::shared_memory(),
        ] {
            let est = estimate(prog, &env_of(presets), &BTreeMap::new(), &cost);
            assert!(est.exact, "{:?}", est.notes);
            assert_eq!(
                est.makespan(),
                measured(prog, presets, cost),
                "estimate diverges from the simulator under {cost:?}"
            );
        }
    }

    /// P0 streams 1..=n to P1 element-wise.
    fn stream() -> SpmdProgram {
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 7,
                values: vec![SExpr::var("i").mul(SExpr::int(2))],
            }],
        }];
        let p1 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::var("n"),
            step: SExpr::int(1),
            body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 7,
                into: vec![RecvTarget::Var("x".into())],
            }],
        }];
        SpmdProgram::new(vec![p0, p1])
    }

    #[test]
    fn element_stream_matches_simulator_exactly() {
        assert_exactly_matches(&stream(), &[("n", 10)]);
    }

    #[test]
    fn pipeline_chain_matches_simulator_exactly() {
        // P0 -> P1 -> P2 -> P3: each stage does local work, waits for its
        // predecessor, adds, and forwards — exercises the max() term.
        let nprocs = 4;
        let mut bodies = Vec::new();
        for p in 0..nprocs {
            let mut body = vec![SStmt::Let {
                var: "acc".into(),
                value: SExpr::int(p as i64),
            }];
            // Unequal local work per stage.
            body.push(SStmt::For {
                var: "i".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(10 * (p as i64 + 1)),
                step: SExpr::int(1),
                body: vec![SStmt::Let {
                    var: "acc".into(),
                    value: SExpr::var("acc").add(SExpr::int(1)),
                }],
            });
            if p > 0 {
                body.push(SStmt::Recv {
                    from: SExpr::int(p as i64 - 1),
                    tag: 1,
                    into: vec![RecvTarget::Var("up".into())],
                });
                body.push(SStmt::Let {
                    var: "acc".into(),
                    value: SExpr::var("acc").add(SExpr::var("up")),
                });
            }
            if p + 1 < nprocs {
                body.push(SStmt::Send {
                    to: SExpr::int(p as i64 + 1),
                    tag: 1,
                    values: vec![SExpr::var("acc")],
                });
            }
            bodies.push(body);
        }
        assert_exactly_matches(&SpmdProgram::new(bodies), &[]);
    }

    #[test]
    fn buffer_blocks_and_branches_match_simulator_exactly() {
        // P0 fills a buffer and block-sends it; P1 block-receives and
        // reduces it under a branch; dynamic loop step on P1.
        let p0 = vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(8),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(7),
                step: SExpr::int(1),
                body: vec![SStmt::BufWrite {
                    buf: "b".into(),
                    idx: SExpr::var("i"),
                    value: SExpr::var("i").mul(SExpr::var("i")),
                }],
            },
            SStmt::SendBuf {
                to: SExpr::int(1),
                tag: 2,
                buf: "b".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(7),
            },
        ];
        let p1 = vec![
            SStmt::AllocBuf {
                buf: "c".into(),
                len: SExpr::int(8),
            },
            SStmt::RecvBuf {
                from: SExpr::int(0),
                tag: 2,
                buf: "c".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(7),
            },
            SStmt::Let {
                var: "s".into(),
                value: SExpr::int(2),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(7),
                step: SExpr::var("s"),
                body: vec![SStmt::If {
                    cond: SExpr::var("i").gt(SExpr::int(3)),
                    then: vec![SStmt::Let {
                        var: "acc".into(),
                        value: SExpr::BufRead {
                            buf: "c".into(),
                            idx: Box::new(SExpr::var("i")),
                        },
                    }],
                    els: vec![SStmt::Let {
                        var: "acc".into(),
                        value: SExpr::int(0),
                    }],
                }],
            },
        ];
        assert_exactly_matches(&SpmdProgram::new(vec![p0, p1]), &[]);
    }

    #[test]
    fn inexact_walks_report_no_clocks() {
        // Data-dependent branch: prediction degrades, no makespan claim.
        let prog = SpmdProgram::new(vec![vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(1),
            },
            SStmt::If {
                cond: SExpr::BufRead {
                    buf: "b".into(),
                    idx: Box::new(SExpr::int(0)),
                }
                .gt(SExpr::int(0)),
                then: vec![],
                els: vec![],
            },
        ]]);
        let est = estimate(
            &prog,
            &BTreeMap::new(),
            &BTreeMap::new(),
            &CostModel::ipsc2(),
        );
        assert!(!est.exact);
        assert!(est.clocks.is_empty());
        assert!(!est.notes.is_empty());
        assert_eq!(est.makespan(), 0);
    }

    #[test]
    fn protocol_mismatch_is_flagged_not_mispredicted() {
        // P1 expects a message nobody sends: the simulator deadlocks, and
        // the replay must refuse to claim a makespan.
        let prog = SpmdProgram::new(vec![
            vec![],
            vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 9,
                into: vec![RecvTarget::Var("x".into())],
            }],
        ]);
        let est = estimate(
            &prog,
            &BTreeMap::new(),
            &BTreeMap::new(),
            &CostModel::ipsc2(),
        );
        assert!(!est.exact);
        assert!(est.notes.iter().any(|n| n.contains("never satisfied")));
    }

    #[test]
    fn single_walk_pairing_agrees_with_separate_passes() {
        let env = env_of(&[("n", 6)]);
        let cost = CostModel::ipsc2();
        let prog = stream();
        let (pred, est) = predict_and_estimate(&prog, &env, &BTreeMap::new(), &cost);
        let solo_pred = crate::cost::predict(&prog, &env, &BTreeMap::new());
        let solo_est = estimate(&prog, &env, &BTreeMap::new(), &cost);
        assert_eq!(pred.sends, solo_pred.sends);
        assert_eq!(pred.exact, solo_pred.exact);
        assert_eq!(est.clocks, solo_est.clocks);
        assert_eq!(est.exact, solo_est.exact);
    }
}
