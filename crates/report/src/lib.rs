//! Compiler observability for the process-decomposition pipeline.
//!
//! Two halves:
//!
//! * **Remarks** — an LLVM-`-Rpass`-style stream of structured
//!   [`Remark`]s: every phase of the pipeline (§3.2 analysis,
//!   run-time/compile-time resolution, and the §4 optimization passes)
//!   reports what it *applied* and what it *missed* — and why — with a
//!   source span when one is known. The stream renders as human-readable
//!   text ([`render_text`]) and as deterministic JSON ([`remarks_json`])
//!   for CI diffing: two identical compiles produce byte-identical
//!   output.
//! * **Cost model** ([`cost`]) — a static abstract interpretation of the
//!   specialized SPMD program that predicts, per `(src, dst, tag)`
//!   channel, how many messages and payload words each processor will
//!   send. On programs whose control flow is independent of array data
//!   (the paper's wavefront variants) the prediction is *exact* and is
//!   verified against the machine's observed per-channel counts at run
//!   time.

pub mod cost;
pub mod interp;
pub mod makespan;

pub use cost::{predict, ChannelCost, Prediction};
pub use makespan::{estimate, predict_and_estimate, MakespanEstimate};

use pdc_lang::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Which pipeline phase produced a remark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// §3.2 evaluator/participant propagation over the AST.
    Analysis,
    /// §3.1 run-time resolution code generation.
    RuntimeRes,
    /// §3.2 compile-time resolution code generation.
    CompileTime,
    /// Appendix A.2 message vectorization (*Optimized I*).
    Vectorize,
    /// Appendix A.3 loop jamming (*Optimized II*).
    Jam,
    /// Appendix A.4 strip mining (*Optimized III*).
    Strip,
    /// §4 closing remark: source-level loop interchange.
    Interchange,
    /// Static message-cost prediction.
    CostModel,
    /// Static communication-safety analysis (`pdc-analyze`): send/recv
    /// matching, deadlock freedom, single assignment, lints.
    Analyze,
    /// Front-end static checks (single assignment, definition before
    /// use, call arity) collected in batch by `pdc_lang::check_all`.
    Check,
    /// Exact loop-dependence analysis (`pdc-depend`): per-nest
    /// distance/direction summaries and loop-carried cross-processor
    /// dependence lints.
    Depend,
    /// Automatic decomposition search (`pdc-tune`): per-candidate scores
    /// and rejection reasons, plus the selected winner.
    Tune,
}

impl Phase {
    /// Stable lower-case identifier used in JSON.
    pub fn slug(self) -> &'static str {
        match self {
            Phase::Analysis => "analysis",
            Phase::RuntimeRes => "runtime-res",
            Phase::CompileTime => "compile-time",
            Phase::Vectorize => "vectorize",
            Phase::Jam => "jam",
            Phase::Strip => "strip",
            Phase::Interchange => "interchange",
            Phase::CostModel => "cost-model",
            Phase::Analyze => "analyze",
            Phase::Check => "check",
            Phase::Depend => "depend",
            Phase::Tune => "tune",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Did the phase apply something, or report why it could not?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RemarkKind {
    /// A transformation or static decision was made.
    Applied,
    /// A candidate was considered and rejected (the reason is the
    /// remark's message), or a run-time fallback had to be emitted.
    Missed,
}

impl RemarkKind {
    /// Stable lower-case identifier used in JSON.
    pub fn slug(self) -> &'static str {
        match self {
            RemarkKind::Applied => "applied",
            RemarkKind::Missed => "missed",
        }
    }
}

impl fmt::Display for RemarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One structured compiler remark.
#[derive(Debug, Clone, PartialEq)]
pub struct Remark {
    /// Producing phase.
    pub phase: Phase,
    /// Applied or missed.
    pub kind: RemarkKind,
    /// Source span, when known at emission time. Optimization passes run
    /// on the SPMD IR, which has no spans; they set [`Remark::tag`]
    /// instead and the driver resolves the span from its tag→span map.
    pub span: Option<Span>,
    /// Message tag the remark is about (communication-stream remarks).
    pub tag: Option<u32>,
    /// Human-readable, one-line message.
    pub message: String,
    /// Ordered key/value details (kept ordered for determinism).
    pub details: Vec<(String, String)>,
}

impl Remark {
    /// A new remark with no span, tag, or details.
    pub fn new(phase: Phase, kind: RemarkKind, message: impl Into<String>) -> Remark {
        Remark {
            phase,
            kind,
            span: None,
            tag: None,
            message: message.into(),
            details: Vec::new(),
        }
    }

    /// Attach a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Remark {
        self.span = Some(span);
        self
    }

    /// Attach the message tag the remark concerns.
    #[must_use]
    pub fn with_tag(mut self, tag: u32) -> Remark {
        self.tag = Some(tag);
        self
    }

    /// Append a key/value detail.
    #[must_use]
    pub fn detail(mut self, key: impl Into<String>, value: impl fmt::Display) -> Remark {
        self.details.push((key.into(), value.to_string()));
        self
    }
}

/// Collects remarks in emission order.
#[derive(Debug, Clone, Default)]
pub struct RemarkSink {
    remarks: Vec<Remark>,
}

impl RemarkSink {
    /// An empty sink.
    pub fn new() -> RemarkSink {
        RemarkSink::default()
    }

    /// Record one remark.
    pub fn emit(&mut self, r: Remark) {
        self.remarks.push(r);
    }

    /// All remarks, in emission order.
    pub fn remarks(&self) -> &[Remark] {
        &self.remarks
    }

    /// Consume the sink, returning the remark stream.
    pub fn into_remarks(self) -> Vec<Remark> {
        self.remarks
    }

    /// Number of remarks collected so far.
    pub fn len(&self) -> usize {
        self.remarks.len()
    }

    /// No remarks yet?
    pub fn is_empty(&self) -> bool {
        self.remarks.is_empty()
    }
}

/// Render front-end batch diagnostics (`pdc_lang::check_all`) as
/// check-phase remarks, each anchored to its source span — the bridge
/// from the checker's error list into the remark stream tooling
/// ([`render_text`], [`remarks_json`]) the rest of the pipeline uses.
pub fn check_remarks(errors: &[pdc_lang::LangError]) -> Vec<Remark> {
    errors
        .iter()
        .map(|e| Remark::new(Phase::Check, RemarkKind::Missed, e.to_string()).with_span(e.span()))
        .collect()
}

/// Applied/Missed counts per phase, in a deterministic order.
pub fn counts(remarks: &[Remark]) -> BTreeMap<(Phase, RemarkKind), usize> {
    let mut out = BTreeMap::new();
    for r in remarks {
        *out.entry((r.phase, r.kind)).or_insert(0) += 1;
    }
    out
}

/// Render the stream as human-readable text, one remark per line:
///
/// ```text
/// [vectorize] applied 64..103: combined 14 element sends into one block send (tag=128, lo=2, hi=15)
/// ```
pub fn render_text(remarks: &[Remark]) -> String {
    let mut out = String::new();
    for r in remarks {
        out.push('[');
        out.push_str(r.phase.slug());
        out.push_str("] ");
        out.push_str(r.kind.slug());
        if let Some(s) = r.span {
            out.push_str(&format!(" {s}"));
        }
        out.push_str(": ");
        out.push_str(&r.message);
        let mut extras: Vec<String> = Vec::new();
        if let Some(t) = r.tag {
            extras.push(format!("tag={t}"));
        }
        extras.extend(r.details.iter().map(|(k, v)| format!("{k}={v}")));
        if !extras.is_empty() {
            out.push_str(" (");
            out.push_str(&extras.join(", "));
            out.push(')');
        }
        out.push('\n');
    }
    out
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the stream as deterministic JSON: the schema is
///
/// ```json
/// { "remarks": [ { "phase": "...", "kind": "applied|missed",
///                  "span": [start, end] | null, "tag": N | null,
///                  "message": "...", "details": { "k": "v", ... } } ],
///   "counts": { "<phase>.<kind>": N, ... } }
/// ```
///
/// Emission order is preserved for `remarks`; `counts` is sorted by key.
/// Two identical compiles produce byte-identical output.
pub fn remarks_json(remarks: &[Remark]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"remarks\": [\n");
    for (i, r) in remarks.iter().enumerate() {
        let span = match r.span {
            Some(s) => format!("[{}, {}]", s.start, s.end),
            None => "null".into(),
        };
        let tag = match r.tag {
            Some(t) => t.to_string(),
            None => "null".into(),
        };
        let mut details = String::from("{");
        for (j, (k, v)) in r.details.iter().enumerate() {
            if j > 0 {
                details.push_str(", ");
            }
            let _ = write!(details, "\"{}\": \"{}\"", esc(k), esc(v));
        }
        details.push('}');
        let _ = write!(
            out,
            "    {{\"phase\": \"{}\", \"kind\": \"{}\", \"span\": {span}, \"tag\": {tag}, \
             \"message\": \"{}\", \"details\": {details}}}",
            r.phase.slug(),
            r.kind.slug(),
            esc(&r.message)
        );
        out.push_str(if i + 1 < remarks.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"counts\": {");
    let cs = counts(remarks);
    for (i, ((phase, kind), n)) in cs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}.{}\": {n}", phase.slug(), kind.slug());
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Remark> {
        vec![
            Remark::new(Phase::Vectorize, RemarkKind::Applied, "combined sends")
                .with_span(Span { start: 4, end: 9 })
                .with_tag(128)
                .detail("lo", 2)
                .detail("hi", 15),
            Remark::new(Phase::Jam, RemarkKind::Missed, "no matching producer").with_tag(130),
        ]
    }

    #[test]
    fn text_rendering_includes_phase_kind_span() {
        let t = render_text(&sample());
        assert!(t.contains("[vectorize] applied 4..9: combined sends"));
        assert!(t.contains("tag=128, lo=2, hi=15"));
        assert!(t.contains("[jam] missed: no matching producer"));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = sample();
        r[0].message = "a \"quoted\"\nline".into();
        let a = remarks_json(&r);
        let b = remarks_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("a \\\"quoted\\\"\\nline"));
        assert!(a.contains("\"jam.missed\": 1"));
        assert!(a.contains("\"vectorize.applied\": 1"));
    }

    #[test]
    fn counts_group_by_phase_and_kind() {
        let c = counts(&sample());
        assert_eq!(c[&(Phase::Vectorize, RemarkKind::Applied)], 1);
        assert_eq!(c[&(Phase::Jam, RemarkKind::Missed)], 1);
    }

    #[test]
    fn check_remarks_bridges_front_end_diagnostics() {
        let src = "procedure main() { let a = 1; let a = b; return a; }";
        let program = pdc_lang::parse_unchecked(src).expect("parses");
        let errs = pdc_lang::check_all(&program);
        assert_eq!(errs.len(), 2, "redefinition of `a` and undefined `b`");
        let remarks = check_remarks(&errs);
        assert_eq!(remarks.len(), errs.len());
        assert!(remarks
            .iter()
            .all(|r| r.phase == Phase::Check && r.kind == RemarkKind::Missed && r.span.is_some()));
        assert!(render_text(&remarks).contains("[check] missed"));
    }
}
