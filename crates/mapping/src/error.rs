//! Typed errors for symbolic-mapping queries.

use std::error::Error;
use std::fmt;

/// A mapping query that cannot be answered symbolically.
///
/// Table-based assignments ([`Dist::ColumnAssigned`](crate::Dist)) have
/// no closed-form Map/Local functions; asking for one is not a bug but
/// an *inconclusive* outcome (§3.2): callers fall back to run-time
/// ownership resolution, and static analyses degrade to inexact results
/// instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The distribution has no symbolic owner expression.
    NoSymbolicOwner {
        /// Display form of the offending distribution.
        dist: String,
    },
    /// The distribution has no symbolic local-index function.
    NoSymbolicLocal {
        /// Display form of the offending distribution.
        dist: String,
    },
    /// An array was registered twice in one
    /// [`Decomposition`](crate::Decomposition). Silently overwriting the
    /// first `Dist` hid bugs in code that builds decompositions
    /// programmatically (the tuner), so repeat registration is typed.
    DuplicateArray {
        /// The array registered twice.
        name: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::NoSymbolicOwner { dist } => {
                write!(f, "`{dist}` has no symbolic owner function")
            }
            MappingError::NoSymbolicLocal { dist } => {
                write!(f, "`{dist}` has no symbolic local function")
            }
            MappingError::DuplicateArray { name } => {
                write!(f, "array `{name}` is already mapped in this decomposition")
            }
        }
    }
}

impl Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_distribution() {
        let e = MappingError::NoSymbolicOwner {
            dist: "column-assigned(len 3)".into(),
        };
        assert!(e.to_string().contains("column-assigned(len 3)"));
        assert!(e.to_string().contains("no symbolic owner"));
    }
}
