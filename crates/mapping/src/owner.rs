//! Symbolic owner expressions (the result of the Map function).

use crate::affine::Affine;
use std::fmt;

/// The concrete owner(s) of a datum once all indices are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerSet {
    /// Exactly one processor owns it.
    One(usize),
    /// Replicated: every processor owns a copy.
    All,
}

impl OwnerSet {
    /// Does processor `p` own (a copy of) the datum?
    pub fn contains(&self, p: usize) -> bool {
        match self {
            OwnerSet::One(q) => *q == p,
            OwnerSet::All => true,
        }
    }
}

impl fmt::Display for OwnerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerSet::One(p) => write!(f, "P{p}"),
            OwnerSet::All => write!(f, "ALL"),
        }
    }
}

/// A symbolic owner: the Map function applied to (possibly symbolic) array
/// subscripts. This is what appears in the *evaluators* attribute of an
/// AST node — e.g. the evaluators of `A[i, j+1]` under wrapped columns is
/// the expression `(j+1-1) mod S` (§3.2: *"the evaluators for the
/// reference A[i,j+1] would include (j+1) mod S"*).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OwnerExpr {
    /// A fixed processor.
    Const(usize),
    /// Replicated on every processor.
    All,
    /// `(expr) mod s` — cyclic distributions.
    CyclicMod {
        /// Zero-based affine index expression.
        expr: Affine,
        /// Ring size (number of processors in this dimension).
        s: usize,
    },
    /// `clamp((expr) div block, 0, nprocs-1)` — block distributions.
    BlockDiv {
        /// Zero-based affine index expression.
        expr: Affine,
        /// Elements per block.
        block: usize,
        /// Number of processors in this dimension.
        nprocs: usize,
    },
    /// `((expr) div block) mod s` — block-cyclic distributions.
    BlockCyclicMod {
        /// Zero-based affine index expression.
        expr: Affine,
        /// Elements per block.
        block: usize,
        /// Ring size.
        s: usize,
    },
    /// Two-dimensional grid: `row_owner * pcols + col_owner`.
    Grid {
        /// Owner along the row dimension (value in `0..prows`).
        row: Box<OwnerExpr>,
        /// Owner along the column dimension (value in `0..pcols`).
        col: Box<OwnerExpr>,
        /// Processors along the column dimension.
        pcols: usize,
    },
}

impl OwnerExpr {
    /// Evaluate under a full environment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> OwnerSet {
        match self {
            OwnerExpr::Const(p) => OwnerSet::One(*p),
            OwnerExpr::All => OwnerSet::All,
            OwnerExpr::CyclicMod { expr, s } => {
                OwnerSet::One(expr.eval(env).rem_euclid(*s as i64) as usize)
            }
            OwnerExpr::BlockDiv {
                expr,
                block,
                nprocs,
            } => {
                let v = expr.eval(env).max(0) as usize / block;
                OwnerSet::One(v.min(nprocs - 1))
            }
            OwnerExpr::BlockCyclicMod { expr, block, s } => {
                let v = expr.eval(env).max(0) as usize / block;
                OwnerSet::One(v % s)
            }
            OwnerExpr::Grid { row, col, pcols } => {
                let r = match row.eval(env) {
                    OwnerSet::One(r) => r,
                    OwnerSet::All => return OwnerSet::All,
                };
                let c = match col.eval(env) {
                    OwnerSet::One(c) => c,
                    OwnerSet::All => return OwnerSet::All,
                };
                OwnerSet::One(r * pcols + c)
            }
        }
    }

    /// Is this owner independent of all variables (a constant set)?
    pub fn as_owner_set(&self) -> Option<OwnerSet> {
        match self {
            OwnerExpr::Const(p) => Some(OwnerSet::One(*p)),
            OwnerExpr::All => Some(OwnerSet::All),
            OwnerExpr::CyclicMod { expr, s } => expr
                .as_constant()
                .map(|v| OwnerSet::One(v.rem_euclid(*s as i64) as usize)),
            OwnerExpr::BlockDiv {
                expr,
                block,
                nprocs,
            } => expr
                .as_constant()
                .map(|v| OwnerSet::One(((v.max(0) as usize) / block).min(nprocs - 1))),
            OwnerExpr::BlockCyclicMod { expr, block, s } => expr
                .as_constant()
                .map(|v| OwnerSet::One((v.max(0) as usize / block) % s)),
            OwnerExpr::Grid { row, col, pcols } => {
                match (row.as_owner_set()?, col.as_owner_set()?) {
                    (OwnerSet::One(r), OwnerSet::One(c)) => Some(OwnerSet::One(r * pcols + c)),
                    _ => Some(OwnerSet::All),
                }
            }
        }
    }

    /// Variables the owner depends on.
    pub fn vars(&self) -> Vec<String> {
        match self {
            OwnerExpr::Const(_) | OwnerExpr::All => Vec::new(),
            OwnerExpr::CyclicMod { expr, .. }
            | OwnerExpr::BlockDiv { expr, .. }
            | OwnerExpr::BlockCyclicMod { expr, .. } => expr.vars().map(str::to_owned).collect(),
            OwnerExpr::Grid { row, col, .. } => {
                let mut v = row.vars();
                v.extend(col.vars());
                v.sort();
                v.dedup();
                v
            }
        }
    }

    /// Substitute a variable with an affine expression in every index
    /// position (used when propagating mappings through procedure calls).
    pub fn substitute(&self, v: &str, e: &Affine) -> OwnerExpr {
        match self {
            OwnerExpr::Const(_) | OwnerExpr::All => self.clone(),
            OwnerExpr::CyclicMod { expr, s } => OwnerExpr::CyclicMod {
                expr: expr.substitute(v, e),
                s: *s,
            },
            OwnerExpr::BlockDiv {
                expr,
                block,
                nprocs,
            } => OwnerExpr::BlockDiv {
                expr: expr.substitute(v, e),
                block: *block,
                nprocs: *nprocs,
            },
            OwnerExpr::BlockCyclicMod { expr, block, s } => OwnerExpr::BlockCyclicMod {
                expr: expr.substitute(v, e),
                block: *block,
                s: *s,
            },
            OwnerExpr::Grid { row, col, pcols } => OwnerExpr::Grid {
                row: Box::new(row.substitute(v, e)),
                col: Box::new(col.substitute(v, e)),
                pcols: *pcols,
            },
        }
    }
}

impl fmt::Display for OwnerExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerExpr::Const(p) => write!(f, "P{p}"),
            OwnerExpr::All => write!(f, "ALL"),
            OwnerExpr::CyclicMod { expr, s } => write!(f, "({expr}) mod {s}"),
            OwnerExpr::BlockDiv { expr, block, .. } => write!(f, "({expr}) div {block}"),
            OwnerExpr::BlockCyclicMod { expr, block, s } => {
                write!(f, "(({expr}) div {block}) mod {s}")
            }
            OwnerExpr::Grid { row, col, pcols } => write!(f, "[{row}]*{pcols} + [{col}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> i64 + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("unbound {name}"))
        }
    }

    #[test]
    fn cyclic_mod_wraps() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").offset(-1),
            s: 4,
        };
        assert_eq!(o.eval(&env(&[("j", 1)])), OwnerSet::One(0));
        assert_eq!(o.eval(&env(&[("j", 6)])), OwnerSet::One(1));
        assert_eq!(o.eval(&env(&[("j", 0)])), OwnerSet::One(3)); // euclidean mod
    }

    #[test]
    fn block_div_clamps() {
        let o = OwnerExpr::BlockDiv {
            expr: Affine::var("j").offset(-1),
            block: 4,
            nprocs: 2,
        };
        assert_eq!(o.eval(&env(&[("j", 1)])), OwnerSet::One(0));
        assert_eq!(o.eval(&env(&[("j", 5)])), OwnerSet::One(1));
        // Past the last block it clamps instead of overflowing.
        assert_eq!(o.eval(&env(&[("j", 100)])), OwnerSet::One(1));
    }

    #[test]
    fn grid_combines_dimensions() {
        let o = OwnerExpr::Grid {
            row: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::var("i").offset(-1),
                block: 2,
                nprocs: 2,
            }),
            col: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::var("j").offset(-1),
                block: 2,
                nprocs: 3,
            }),
            pcols: 3,
        };
        assert_eq!(o.eval(&env(&[("i", 1), ("j", 1)])), OwnerSet::One(0));
        assert_eq!(o.eval(&env(&[("i", 3), ("j", 5)])), OwnerSet::One(3 + 2));
    }

    #[test]
    fn constant_folding() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::constant(7),
            s: 4,
        };
        assert_eq!(o.as_owner_set(), Some(OwnerSet::One(3)));
        let v = OwnerExpr::CyclicMod {
            expr: Affine::var("j"),
            s: 4,
        };
        assert_eq!(v.as_owner_set(), None);
    }

    #[test]
    fn substitute_specializes() {
        // owner of A[i, j+1] with j := 5  =>  constant (5+1-1) mod 4 = 1
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").offset(1).offset(-1),
            s: 4,
        };
        let s = o.substitute("j", &Affine::constant(5));
        assert_eq!(s.as_owner_set(), Some(OwnerSet::One(1)));
    }

    #[test]
    fn owner_set_contains() {
        assert!(OwnerSet::All.contains(5));
        assert!(OwnerSet::One(2).contains(2));
        assert!(!OwnerSet::One(2).contains(3));
    }

    #[test]
    fn display_forms() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").offset(-1),
            s: 8,
        };
        assert_eq!(o.to_string(), "(j - 1) mod 8");
        assert_eq!(OwnerExpr::All.to_string(), "ALL");
        assert_eq!(OwnerExpr::Const(3).to_string(), "P3");
    }
}
