//! Distribution families and their Map/Local/Alloc functions.

use crate::affine::Affine;
use crate::error::MappingError;
use crate::owner::{OwnerExpr, OwnerSet};
use std::fmt;
use std::sync::Arc;

/// How an array is spread over the machine.
///
/// The paper's running example is [`Dist::ColumnCyclic`] ("wrap the columns
/// of the matrix around a ring like a dealer deals cards", §2.3); the other
/// families are the standard decompositions the introduction alludes to
/// ("mapping by columns, rows, blocks, etc.").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dist {
    /// Every processor holds a full copy.
    Replicated,
    /// The whole array lives on one processor.
    OnProcessor(usize),
    /// Column `j` on processor `(j-1) mod S`.
    ColumnCyclic,
    /// Row `i` on processor `(i-1) mod S`.
    RowCyclic,
    /// Contiguous column panels of width `ceil(cols/S)`.
    ColumnBlock,
    /// Contiguous row panels of height `ceil(rows/S)`.
    RowBlock,
    /// Column blocks of width `block` dealt cyclically.
    ColumnBlockCyclic {
        /// Columns per block.
        block: usize,
    },
    /// Row blocks of height `block` dealt cyclically.
    RowBlockCyclic {
        /// Rows per block.
        block: usize,
    },
    /// Two-dimensional blocks on a `prows × pcols` processor grid.
    Block2d {
        /// Processor-grid rows.
        prows: usize,
        /// Processor-grid columns.
        pcols: usize,
    },
    /// Arbitrary per-column assignment: column `c` lives on
    /// `table[(c-1) mod table.len()]`. This is the §5.4 load-balancing
    /// mapping — data moves with its process by *re-assigning* columns —
    /// and it is deliberately opaque to the solver: the compiler's
    /// *inconclusive* path (run-time ownership guards) handles it.
    ColumnAssigned {
        /// Owner of each column (cycled if shorter than the array).
        table: Arc<Vec<usize>>,
    },
}

impl Dist {
    /// Can the owner be expressed symbolically for the mapping-equation
    /// solver? Table-based assignments cannot; the compiler falls back to
    /// run-time resolution of ownership for them (§3.2's *inconclusive*
    /// outcome).
    pub fn is_analyzable(&self) -> bool {
        !matches!(self, Dist::ColumnAssigned { .. })
    }

    /// A [`Dist::ColumnAssigned`] that deals columns round-robin in
    /// proportion to per-processor `weights` — the §5.4 load-balancing
    /// move: a processor with weight 2 receives twice the columns of a
    /// processor with weight 1. The assignment pattern has length
    /// `sum(weights)` and cycles over the array.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn column_weighted(weights: &[u64]) -> Dist {
        assert!(!weights.is_empty(), "need at least one processor weight");
        assert!(
            weights.iter().any(|&w| w > 0),
            "weights must not all be zero"
        );
        let mut table = Vec::new();
        let mut remaining: Vec<u64> = weights.to_vec();
        // Deal one column at a time to the processor with the most
        // remaining weight, keeping the pattern interleaved.
        while remaining.iter().any(|&r| r > 0) {
            for (p, r) in remaining.iter_mut().enumerate() {
                if *r > 0 {
                    table.push(p);
                    *r -= 1;
                }
            }
        }
        Dist::ColumnAssigned {
            table: Arc::new(table),
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Replicated => write!(f, "ALL"),
            Dist::OnProcessor(p) => write!(f, "P{p}"),
            Dist::ColumnCyclic => write!(f, "column-cyclic"),
            Dist::RowCyclic => write!(f, "row-cyclic"),
            Dist::ColumnBlock => write!(f, "column-block"),
            Dist::RowBlock => write!(f, "row-block"),
            Dist::ColumnBlockCyclic { block } => write!(f, "column-block-cyclic({block})"),
            Dist::RowBlockCyclic { block } => write!(f, "row-block-cyclic({block})"),
            Dist::Block2d { prows, pcols } => write!(f, "block2d({prows}x{pcols})"),
            Dist::ColumnAssigned { table } => {
                write!(f, "column-assigned(len {})", table.len())
            }
        }
    }
}

/// One additive term of a [`LocalIndex`]: `scale * (num div den)` or
/// `scale * (num mod den)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalTerm {
    /// `scale * (num div den)`.
    Div {
        /// Numerator (zero-based affine expression).
        num: Affine,
        /// Divisor (positive).
        den: i64,
        /// Multiplier applied to the quotient.
        scale: i64,
    },
    /// `scale * (num mod den)`.
    Mod {
        /// Numerator (zero-based affine expression).
        num: Affine,
        /// Divisor (positive).
        den: i64,
        /// Multiplier applied to the remainder.
        scale: i64,
    },
}

impl LocalTerm {
    fn eval(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        match self {
            LocalTerm::Div { num, den, scale } => scale * num.eval(env).div_euclid(*den),
            LocalTerm::Mod { num, den, scale } => scale * num.eval(env).rem_euclid(*den),
        }
    }
}

/// A symbolic local-index expression: `base + Σ termᵢ`.
///
/// Every Local function of the supported distributions fits this shape —
/// e.g. the paper's `col-local(i,j) = (j div s)`-style expressions. The
/// compiler translates a `LocalIndex` directly into target-IR arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalIndex {
    /// Affine part.
    pub base: Affine,
    /// Divide/modulo terms.
    pub terms: Vec<LocalTerm>,
}

impl LocalIndex {
    /// A purely affine local index.
    pub fn affine(base: Affine) -> Self {
        LocalIndex {
            base,
            terms: Vec::new(),
        }
    }

    /// Evaluate under an environment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        self.base.eval(env) + self.terms.iter().map(|t| t.eval(env)).sum::<i64>()
    }
}

/// A [`Dist`] instantiated with concrete array extents and a concrete
/// machine size: the paper's `<map, local, alloc>` triple, both in
/// directly-evaluable and in symbolic form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistInstance {
    dist: Dist,
    rows: usize,
    cols: usize,
    nprocs: usize,
}

/// `ceil(a / b)` for positive operands.
fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl DistInstance {
    /// Instantiate `dist` for a `rows × cols` array on `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs == 0`, if a named processor is out of range, if a
    /// block size is zero, or if a 2-D grid does not have `prows*pcols ==
    /// nprocs`.
    pub fn new(dist: Dist, rows: usize, cols: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        match &dist {
            Dist::OnProcessor(p) => assert!(*p < nprocs, "processor P{p} out of range"),
            Dist::ColumnBlockCyclic { block } | Dist::RowBlockCyclic { block } => {
                assert!(*block > 0, "block size must be positive")
            }
            Dist::Block2d { prows, pcols } => {
                assert!(*prows > 0 && *pcols > 0, "grid dims must be positive");
                assert_eq!(prows * pcols, nprocs, "grid must cover the machine");
            }
            Dist::ColumnAssigned { table } => {
                assert!(!table.is_empty(), "assignment table must be non-empty");
                assert!(
                    table.iter().all(|p| *p < nprocs),
                    "assignment table names a processor outside the machine"
                );
            }
            _ => {}
        }
        DistInstance {
            dist,
            rows,
            cols,
            nprocs,
        }
    }

    /// The distribution family.
    pub fn dist(&self) -> &Dist {
        &self.dist
    }

    /// Owner of (1-based) column `c` under a table assignment.
    fn assigned_owner(table: &[usize], c: i64) -> usize {
        table[(c - 1).rem_euclid(table.len() as i64) as usize]
    }

    /// Global extents `(rows, cols)`.
    pub fn extents(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Column-panel width for block distributions.
    fn col_panel(&self) -> usize {
        ceil_div(self.cols, self.nprocs)
    }

    /// Row-panel height for block distributions.
    fn row_panel(&self) -> usize {
        ceil_div(self.rows, self.nprocs)
    }

    /// **Map**: the owner of element `(i, j)` (1-based global indices).
    pub fn owner(&self, i: i64, j: i64) -> OwnerSet {
        if let Dist::ColumnAssigned { table } = &self.dist {
            return OwnerSet::One(Self::assigned_owner(table, j));
        }
        let env = move |name: &str| match name {
            "i" => i,
            "j" => j,
            other => panic!("unbound index variable {other}"),
        };
        self.owner_expr(&Affine::var("i"), &Affine::var("j"))
            .expect("table assignments were handled above")
            .eval(&env)
    }

    /// Symbolic **Map**: owner of `(i_expr, j_expr)`.
    ///
    /// # Errors
    ///
    /// [`MappingError::NoSymbolicOwner`] for non-analyzable distributions
    /// ([`Dist::is_analyzable`] is false) — callers fall back to run-time
    /// ownership.
    pub fn owner_expr(&self, i_expr: &Affine, j_expr: &Affine) -> Result<OwnerExpr, MappingError> {
        let zi = i_expr.offset(-1); // zero-based
        let zj = j_expr.offset(-1);
        Ok(match &self.dist {
            Dist::Replicated => OwnerExpr::All,
            Dist::OnProcessor(p) => OwnerExpr::Const(*p),
            Dist::ColumnCyclic => OwnerExpr::CyclicMod {
                expr: zj,
                s: self.nprocs,
            },
            Dist::RowCyclic => OwnerExpr::CyclicMod {
                expr: zi,
                s: self.nprocs,
            },
            Dist::ColumnBlock => OwnerExpr::BlockDiv {
                expr: zj,
                block: self.col_panel(),
                nprocs: self.nprocs,
            },
            Dist::RowBlock => OwnerExpr::BlockDiv {
                expr: zi,
                block: self.row_panel(),
                nprocs: self.nprocs,
            },
            Dist::ColumnBlockCyclic { block } => OwnerExpr::BlockCyclicMod {
                expr: zj,
                block: *block,
                s: self.nprocs,
            },
            Dist::RowBlockCyclic { block } => OwnerExpr::BlockCyclicMod {
                expr: zi,
                block: *block,
                s: self.nprocs,
            },
            Dist::Block2d { prows, pcols } => OwnerExpr::Grid {
                row: Box::new(OwnerExpr::BlockDiv {
                    expr: zi,
                    block: ceil_div(self.rows, *prows),
                    nprocs: *prows,
                }),
                col: Box::new(OwnerExpr::BlockDiv {
                    expr: zj,
                    block: ceil_div(self.cols, *pcols),
                    nprocs: *pcols,
                }),
                pcols: *pcols,
            },
            Dist::ColumnAssigned { .. } => {
                return Err(MappingError::NoSymbolicOwner {
                    dist: self.dist.to_string(),
                })
            }
        })
    }

    /// **Local**: position of global `(i, j)` within its owner's local
    /// array (1-based local indices).
    pub fn local(&self, i: i64, j: i64) -> (i64, i64) {
        if let Dist::ColumnAssigned { table } = &self.dist {
            let owner = Self::assigned_owner(table, j);
            let rank = (1..j)
                .filter(|c| Self::assigned_owner(table, *c) == owner)
                .count() as i64;
            return (i, rank + 1);
        }
        let env = move |name: &str| match name {
            "i" => i,
            "j" => j,
            other => panic!("unbound index variable {other}"),
        };
        let (li, lj) = self
            .local_expr(&Affine::var("i"), &Affine::var("j"))
            .expect("table assignments were handled above");
        (li.eval(&env), lj.eval(&env))
    }

    /// Symbolic **Local**.
    ///
    /// # Errors
    ///
    /// [`MappingError::NoSymbolicLocal`] for non-analyzable
    /// distributions, like [`DistInstance::owner_expr`].
    pub fn local_expr(
        &self,
        i_expr: &Affine,
        j_expr: &Affine,
    ) -> Result<(LocalIndex, LocalIndex), MappingError> {
        let id_i = LocalIndex::affine(i_expr.clone());
        let id_j = LocalIndex::affine(j_expr.clone());
        let s = self.nprocs as i64;
        Ok(match &self.dist {
            Dist::Replicated | Dist::OnProcessor(_) => (id_i, id_j),
            Dist::ColumnCyclic => (
                id_i,
                // (j-1) div S + 1
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Div {
                        num: j_expr.offset(-1),
                        den: s,
                        scale: 1,
                    }],
                },
            ),
            Dist::RowCyclic => (
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Div {
                        num: i_expr.offset(-1),
                        den: s,
                        scale: 1,
                    }],
                },
                id_j,
            ),
            Dist::ColumnBlock => (
                id_i,
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Mod {
                        num: j_expr.offset(-1),
                        den: self.col_panel() as i64,
                        scale: 1,
                    }],
                },
            ),
            Dist::RowBlock => (
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Mod {
                        num: i_expr.offset(-1),
                        den: self.row_panel() as i64,
                        scale: 1,
                    }],
                },
                id_j,
            ),
            Dist::ColumnBlockCyclic { block } => {
                let b = *block as i64;
                (
                    id_i,
                    // b*((j-1) div (b*S)) + (j-1) mod b + 1
                    LocalIndex {
                        base: Affine::constant(1),
                        terms: vec![
                            LocalTerm::Div {
                                num: j_expr.offset(-1),
                                den: b * s,
                                scale: b,
                            },
                            LocalTerm::Mod {
                                num: j_expr.offset(-1),
                                den: b,
                                scale: 1,
                            },
                        ],
                    },
                )
            }
            Dist::RowBlockCyclic { block } => {
                let b = *block as i64;
                (
                    LocalIndex {
                        base: Affine::constant(1),
                        terms: vec![
                            LocalTerm::Div {
                                num: i_expr.offset(-1),
                                den: b * s,
                                scale: b,
                            },
                            LocalTerm::Mod {
                                num: i_expr.offset(-1),
                                den: b,
                                scale: 1,
                            },
                        ],
                    },
                    id_j,
                )
            }
            Dist::Block2d { prows, pcols } => (
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Mod {
                        num: i_expr.offset(-1),
                        den: ceil_div(self.rows, *prows) as i64,
                        scale: 1,
                    }],
                },
                LocalIndex {
                    base: Affine::constant(1),
                    terms: vec![LocalTerm::Mod {
                        num: j_expr.offset(-1),
                        den: ceil_div(self.cols, *pcols) as i64,
                        scale: 1,
                    }],
                },
            ),
            Dist::ColumnAssigned { .. } => {
                return Err(MappingError::NoSymbolicLocal {
                    dist: self.dist.to_string(),
                })
            }
        })
    }

    /// **Alloc**: the local array shape each processor allocates
    /// (uniform across processors; edge processors may leave cells empty).
    pub fn alloc(&self) -> (usize, usize) {
        match &self.dist {
            Dist::Replicated | Dist::OnProcessor(_) => (self.rows, self.cols),
            Dist::ColumnCyclic | Dist::ColumnBlock => (self.rows, ceil_div(self.cols, self.nprocs)),
            Dist::RowCyclic | Dist::RowBlock => (ceil_div(self.rows, self.nprocs), self.cols),
            Dist::ColumnBlockCyclic { block } => {
                let blocks = ceil_div(self.cols, *block);
                (self.rows, ceil_div(blocks, self.nprocs) * block)
            }
            Dist::RowBlockCyclic { block } => {
                let blocks = ceil_div(self.rows, *block);
                (ceil_div(blocks, self.nprocs) * block, self.cols)
            }
            Dist::Block2d { prows, pcols } => {
                (ceil_div(self.rows, *prows), ceil_div(self.cols, *pcols))
            }
            Dist::ColumnAssigned { table } => {
                let owned_cols = |p: usize| {
                    (1..=self.cols as i64)
                        .filter(|c| Self::assigned_owner(table, *c) == p)
                        .count()
                };
                let widest = (0..self.nprocs).map(owned_cols).max().unwrap_or(0);
                (self.rows, widest.max(1))
            }
        }
    }

    /// Iterate over the global elements owned by processor `p`, in
    /// row-major global order. For [`Dist::Replicated`] every element is
    /// reported for every processor.
    pub fn owned_cells(&self, p: usize) -> impl Iterator<Item = (i64, i64)> + '_ {
        let (rows, cols) = (self.rows as i64, self.cols as i64);
        (1..=rows).flat_map(move |i| {
            (1..=cols).filter_map(move |j| self.owner(i, j).contains(p).then_some((i, j)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_cyclic_matches_paper() {
        // "column j is assigned to processor j mod s" (zero-based procs,
        // so our column 1 lands on P0).
        let d = DistInstance::new(Dist::ColumnCyclic, 8, 8, 4);
        assert_eq!(d.owner(3, 1), OwnerSet::One(0));
        assert_eq!(d.owner(3, 2), OwnerSet::One(1));
        assert_eq!(d.owner(3, 5), OwnerSet::One(0));
        assert_eq!(d.local(3, 5), (3, 2));
        assert_eq!(d.alloc(), (8, 2));
    }

    #[test]
    fn column_block_panels() {
        let d = DistInstance::new(Dist::ColumnBlock, 4, 8, 4);
        assert_eq!(d.owner(1, 1), OwnerSet::One(0));
        assert_eq!(d.owner(1, 2), OwnerSet::One(0));
        assert_eq!(d.owner(1, 3), OwnerSet::One(1));
        assert_eq!(d.owner(1, 8), OwnerSet::One(3));
        assert_eq!(d.local(2, 4), (2, 2));
        assert_eq!(d.alloc(), (4, 2));
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        let d = DistInstance::new(Dist::ColumnBlockCyclic { block: 2 }, 2, 8, 2);
        // blocks: {1,2}->P0, {3,4}->P1, {5,6}->P0, {7,8}->P1
        assert_eq!(d.owner(1, 2), OwnerSet::One(0));
        assert_eq!(d.owner(1, 3), OwnerSet::One(1));
        assert_eq!(d.owner(1, 6), OwnerSet::One(0));
        // local columns on P0: 1,2 (block one), 3,4 (block two: cols 5,6)
        assert_eq!(d.local(1, 5), (1, 3));
        assert_eq!(d.local(1, 6), (1, 4));
        assert_eq!(d.alloc(), (2, 4));
    }

    #[test]
    fn block2d_grid() {
        let d = DistInstance::new(Dist::Block2d { prows: 2, pcols: 2 }, 4, 4, 4);
        assert_eq!(d.owner(1, 1), OwnerSet::One(0));
        assert_eq!(d.owner(1, 3), OwnerSet::One(1));
        assert_eq!(d.owner(3, 1), OwnerSet::One(2));
        assert_eq!(d.owner(4, 4), OwnerSet::One(3));
        assert_eq!(d.local(3, 4), (1, 2));
        assert_eq!(d.alloc(), (2, 2));
    }

    #[test]
    fn replicated_owns_everywhere() {
        let d = DistInstance::new(Dist::Replicated, 2, 2, 3);
        assert_eq!(d.owner(1, 2), OwnerSet::All);
        assert_eq!(d.local(2, 2), (2, 2));
        assert_eq!(d.alloc(), (2, 2));
        assert_eq!(d.owned_cells(2).count(), 4);
    }

    #[test]
    fn on_processor_pins() {
        let d = DistInstance::new(Dist::OnProcessor(1), 3, 3, 2);
        assert_eq!(d.owner(2, 2), OwnerSet::One(1));
        assert_eq!(d.owned_cells(0).count(), 0);
        assert_eq!(d.owned_cells(1).count(), 9);
    }

    #[test]
    fn owned_cells_partition_for_non_replicated() {
        for dist in [
            Dist::ColumnCyclic,
            Dist::RowCyclic,
            Dist::ColumnBlock,
            Dist::RowBlock,
            Dist::ColumnBlockCyclic { block: 3 },
            Dist::Block2d { prows: 2, pcols: 2 },
        ] {
            let d = DistInstance::new(dist.clone(), 6, 7, 4);
            let total: usize = (0..4).map(|p| d.owned_cells(p).count()).sum();
            assert_eq!(total, 42, "partition failed for {dist}");
        }
    }

    #[test]
    fn local_fits_alloc() {
        for dist in [
            Dist::ColumnCyclic,
            Dist::RowCyclic,
            Dist::ColumnBlock,
            Dist::RowBlock,
            Dist::ColumnBlockCyclic { block: 2 },
            Dist::RowBlockCyclic { block: 3 },
            Dist::Block2d { prows: 2, pcols: 3 },
        ] {
            let d = DistInstance::new(dist.clone(), 7, 9, 6);
            let (lr, lc) = d.alloc();
            for i in 1..=7 {
                for j in 1..=9 {
                    let (li, lj) = d.local(i, j);
                    assert!(
                        li >= 1 && lj >= 1 && li as usize <= lr && lj as usize <= lc,
                        "{dist}: local({i},{j}) = ({li},{lj}) outside {lr}x{lc}"
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_owner_matches_concrete() {
        let d = DistInstance::new(Dist::ColumnCyclic, 8, 8, 4);
        // owner of A[i, j+1] at j = 5 equals direct owner(_, 6).
        let o = d
            .owner_expr(&Affine::var("i"), &Affine::var("j").offset(1))
            .expect("cyclic dists are analyzable");
        let got = o.eval(&|v| match v {
            "i" => 3,
            "j" => 5,
            _ => unreachable!(),
        });
        assert_eq!(got, d.owner(3, 6));
    }

    #[test]
    #[should_panic(expected = "grid must cover")]
    fn bad_grid_rejected() {
        let _ = DistInstance::new(Dist::Block2d { prows: 2, pcols: 2 }, 4, 4, 5);
    }
}

#[cfg(test)]
mod assigned_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn assigned_owner_follows_table() {
        let d = DistInstance::new(
            Dist::ColumnAssigned {
                table: Arc::new(vec![0, 0, 1]),
            },
            2,
            6,
            2,
        );
        assert_eq!(d.owner(1, 1), OwnerSet::One(0));
        assert_eq!(d.owner(1, 2), OwnerSet::One(0));
        assert_eq!(d.owner(1, 3), OwnerSet::One(1));
        // Table cycles past its length.
        assert_eq!(d.owner(1, 4), OwnerSet::One(0));
        assert_eq!(d.owner(1, 6), OwnerSet::One(1));
    }

    #[test]
    fn assigned_local_ranks_owned_columns() {
        let d = DistInstance::new(
            Dist::ColumnAssigned {
                table: Arc::new(vec![0, 1, 0, 1]),
            },
            3,
            4,
            2,
        );
        assert_eq!(d.local(2, 1), (2, 1)); // P0's first column
        assert_eq!(d.local(2, 3), (2, 2)); // P0's second column
        assert_eq!(d.local(1, 2), (1, 1)); // P1's first column
        assert_eq!(d.local(1, 4), (1, 2)); // P1's second column
        let (lr, lc) = d.alloc();
        assert_eq!((lr, lc), (3, 2));
    }

    #[test]
    fn assigned_partitions_all_columns() {
        let d = DistInstance::new(
            Dist::ColumnAssigned {
                table: Arc::new(vec![2, 0, 1, 0]),
            },
            4,
            9,
            3,
        );
        let total: usize = (0..3).map(|p| d.owned_cells(p).count()).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn weighted_table_is_proportional() {
        let Dist::ColumnAssigned { table } = Dist::column_weighted(&[1, 3]) else {
            panic!("expected table assignment");
        };
        assert_eq!(table.len(), 4);
        assert_eq!(table.iter().filter(|&&p| p == 0).count(), 1);
        assert_eq!(table.iter().filter(|&&p| p == 1).count(), 3);
    }

    #[test]
    fn assigned_is_not_analyzable() {
        assert!(!Dist::column_weighted(&[1, 1]).is_analyzable());
        assert!(Dist::ColumnCyclic.is_analyzable());
    }

    #[test]
    fn symbolic_queries_on_tables_return_typed_errors() {
        use crate::error::MappingError;
        let d = DistInstance::new(
            Dist::ColumnAssigned {
                table: Arc::new(vec![0, 1]),
            },
            2,
            4,
            2,
        );
        let i = Affine::var("i");
        let j = Affine::var("j");
        assert!(matches!(
            d.owner_expr(&i, &j),
            Err(MappingError::NoSymbolicOwner { .. })
        ));
        assert!(matches!(
            d.local_expr(&i, &j),
            Err(MappingError::NoSymbolicLocal { .. })
        ));
        // The concrete (non-symbolic) queries still work.
        assert_eq!(d.owner(1, 2), OwnerSet::One(1));
        assert_eq!(d.local(1, 3), (1, 2));
    }

    #[test]
    #[should_panic(expected = "outside the machine")]
    fn assigned_table_bounds_checked() {
        let _ = DistInstance::new(
            Dist::ColumnAssigned {
                table: Arc::new(vec![5]),
            },
            2,
            2,
            2,
        );
    }
}
