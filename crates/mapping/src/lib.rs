//! Domain decomposition: the *mapping* half of the paper's input.
//!
//! §2.3 of the paper defines a domain decomposition as (a) a processor for
//! each scalar (`a:P1`, or `a:ALL` for replication) and (b), for each
//! array, three functions:
//!
//! * **Map** — given the indices of a reference, the processor on which the
//!   element resides (its *owner*);
//! * **Local** — the element's location within the owner's local array;
//! * **Alloc** — the shape of the local array each processor allocates.
//!
//! The paper's running example wraps matrix columns around a ring "like a
//! dealer deals cards": `col-map(i,j) = j mod s`. This crate generalizes
//! that to the distribution families HPF later standardized — cyclic,
//! block, and block-cyclic in either dimension, two-dimensional blocks,
//! replication, and single-processor placement — while keeping the same
//! three-function interface ([`DistInstance`]).
//!
//! For compile-time resolution the compiler needs *symbolic* forms of these
//! functions: [`Affine`] index expressions, [`OwnerExpr`] owner
//! expressions, and the mapping-equation solver ([`solve_for`]) that turns
//! `owner(j) = p` into strided loop bounds — the step the paper describes
//! as *"we set the equations in the evaluators equal to the processor name
//! and solve for the loop variable"* (§3.2).
//!
//! # Examples
//!
//! ```
//! use pdc_mapping::{Dist, DistInstance, OwnerSet};
//!
//! // 8x8 matrix, columns wrapped around 4 processors.
//! let inst = DistInstance::new(Dist::ColumnCyclic, 8, 8, 4);
//! assert_eq!(inst.owner(1, 1), OwnerSet::One(0)); // column 1 lives on P0
//! assert_eq!(inst.owner(1, 6), OwnerSet::One(1)); // column 6 lives on P1
//! assert_eq!(inst.local(3, 6), (3, 2)); // …as its 2nd local column
//! assert_eq!(inst.alloc(), (8, 2)); // each proc holds 8x2
//! ```

mod affine;
mod decomp;
mod dist;
mod error;
mod owner;
mod solve;

pub use affine::Affine;
pub use decomp::{Decomposition, ScalarMap, ThreeVal};
pub use dist::{Dist, DistInstance, LocalIndex, LocalTerm};
pub use error::MappingError;
pub use owner::{OwnerExpr, OwnerSet};
pub use solve::{solve_for, IterSet, Solution};
