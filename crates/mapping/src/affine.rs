//! Affine index expressions.

use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `c0 + Σ ci·vi` over named integer variables.
///
/// Array subscripts in the programs the compiler handles (`i`, `j+1`,
/// `i-1`) are affine in the enclosing loop variables; the *subscript
/// analysis* of §3.2 extracts these forms, and the mapping-equation solver
/// operates on them. Subscripts that are not affine make the compiler fall
/// back to run-time resolution for the statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        Affine {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The variable `v` with coefficient 1.
    pub fn var(v: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v.into(), 1);
        Affine { terms, constant: 0 }
    }

    /// The constant part `c0`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Is this a constant (no variables)?
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The value, if constant.
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.constant)
    }

    /// Does `v` occur with non-zero coefficient?
    pub fn mentions(&self, v: &str) -> bool {
        self.terms.contains_key(v)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut terms = self.terms.clone();
        for (v, c) in &other.terms {
            let e = terms.entry(v.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                terms.remove(v);
            }
        }
        Affine {
            terms,
            constant: self.constant + other.constant,
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Multiply every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Add a constant offset.
    pub fn offset(&self, k: i64) -> Affine {
        Affine {
            terms: self.terms.clone(),
            constant: self.constant + k,
        }
    }

    /// Evaluate under a variable environment.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env`; the compiler only
    /// evaluates fully-bound expressions.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        self.constant + self.terms.iter().map(|(v, c)| c * env(v)).sum::<i64>()
    }

    /// Substitute `v := e`, producing a new affine expression.
    pub fn substitute(&self, v: &str, e: &Affine) -> Affine {
        match self.terms.get(v) {
            None => self.clone(),
            Some(&c) => {
                let mut rest = self.clone();
                rest.terms.remove(v);
                rest.add(&e.scale(c))
            }
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                let sign = if *c < 0 { "-" } else { "+" };
                let mag = c.abs();
                if mag == 1 {
                    write!(f, " {sign} {v}")?;
                } else {
                    write!(f, " {sign} {mag}*{v}")?;
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            let sign = if self.constant < 0 { "-" } else { "+" };
            write!(f, " {sign} {}", self.constant.abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_plus_const_display() {
        let e = Affine::var("j").offset(1);
        assert_eq!(e.to_string(), "j + 1");
        assert_eq!(Affine::constant(-3).to_string(), "-3");
        assert_eq!(Affine::var("i").scale(-1).to_string(), "-i");
    }

    #[test]
    fn add_cancels_terms() {
        let e = Affine::var("i").add(&Affine::var("i").scale(-1));
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn eval_respects_env() {
        let e = Affine::var("i").scale(2).add(&Affine::var("j")).offset(5);
        let v = e.eval(&|name| match name {
            "i" => 3,
            "j" => 4,
            _ => panic!("unknown var"),
        });
        assert_eq!(v, 2 * 3 + 4 + 5);
    }

    #[test]
    fn substitute_replaces_var() {
        // (2i + j) with i := j + 1  =>  3j + 2
        let e = Affine::var("i").scale(2).add(&Affine::var("j"));
        let sub = e.substitute("i", &Affine::var("j").offset(1));
        assert_eq!(sub.coeff("j"), 3);
        assert_eq!(sub.constant_part(), 2);
        assert!(!sub.mentions("i"));
    }

    #[test]
    fn mentions_and_vars() {
        let e = Affine::var("a").add(&Affine::var("b"));
        assert!(e.mentions("a"));
        assert!(!e.mentions("c"));
        let vs: Vec<_> = e.vars().collect();
        assert_eq!(vs, vec!["a", "b"]);
    }
}
