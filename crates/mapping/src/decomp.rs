//! Whole-program domain decompositions.

use crate::dist::Dist;
use crate::error::MappingError;
use std::collections::BTreeMap;
use std::fmt;

/// Placement of a scalar variable: `a:P1` or `a:ALL` (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarMap {
    /// Owned by one processor.
    On(usize),
    /// Replicated on all processors (each computes its own copy).
    All,
}

impl fmt::Display for ScalarMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarMap::On(p) => write!(f, "P{p}"),
            ScalarMap::All => write!(f, "ALL"),
        }
    }
}

/// Three-valued static knowledge, the outcome of the compile-time
/// membership test of §3.2: *"Three outcomes are possible: true, false,
/// and inconclusive."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeVal {
    /// The processor definitely participates.
    True,
    /// The processor definitely does not participate.
    False,
    /// Cannot be decided at compile time; emit a run-time test.
    Unknown,
}

impl ThreeVal {
    /// Three-valued conjunction.
    pub fn and(self, other: ThreeVal) -> ThreeVal {
        use ThreeVal::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: ThreeVal) -> ThreeVal {
        use ThreeVal::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }
}

/// The user-supplied domain decomposition for one program: the italicized
/// portion of Figure 1.
///
/// Scalars not mentioned default to [`ScalarMap::All`] — every processor
/// computes its own copy, which is the conventional SPMD treatment of loop
/// bounds and coefficients. Every *array* must be mapped explicitly; a
/// missing array mapping is a compile-time error in `pdc-core`.
///
/// # Examples
///
/// ```
/// use pdc_mapping::{Decomposition, Dist, ScalarMap};
///
/// let d = Decomposition::new(4)
///     .array("New", Dist::ColumnCyclic)
///     .array("Old", Dist::ColumnCyclic)
///     .scalar("c", ScalarMap::All);
/// assert_eq!(d.nprocs(), 4);
/// assert_eq!(d.array_dist("New"), Some(Dist::ColumnCyclic));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    nprocs: usize,
    scalars: BTreeMap<String, ScalarMap>,
    arrays: BTreeMap<String, Dist>,
}

impl Decomposition {
    /// A decomposition for a machine of `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs == 0`.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        Decomposition {
            nprocs,
            scalars: BTreeMap::new(),
            arrays: BTreeMap::new(),
        }
    }

    /// Number of processors the decomposition targets.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Map a scalar variable (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the mapping names a processor outside the machine.
    pub fn scalar(mut self, name: impl Into<String>, m: ScalarMap) -> Self {
        if let ScalarMap::On(p) = m {
            assert!(p < self.nprocs, "processor P{p} out of range");
        }
        self.scalars.insert(name.into(), m);
        self
    }

    /// Map an array variable (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already mapped: silently overwriting a prior
    /// `Dist` hid bugs in code that assembles decompositions
    /// programmatically. Use [`Decomposition::try_array`] to handle the
    /// duplicate as a typed error instead.
    pub fn array(self, name: impl Into<String>, d: Dist) -> Self {
        match self.try_array(name, d) {
            Ok(this) => this,
            Err(e) => panic!("{e}"),
        }
    }

    /// Map an array variable, reporting a duplicate registration as
    /// [`MappingError::DuplicateArray`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`MappingError::DuplicateArray`] if `name` is already mapped.
    pub fn try_array(mut self, name: impl Into<String>, d: Dist) -> Result<Self, MappingError> {
        let name = name.into();
        if self.arrays.contains_key(&name) {
            return Err(MappingError::DuplicateArray { name });
        }
        self.arrays.insert(name, d);
        Ok(self)
    }

    /// The mapping of scalar `name` ([`ScalarMap::All`] if unmapped).
    pub fn scalar_map(&self, name: &str) -> ScalarMap {
        self.scalars.get(name).copied().unwrap_or(ScalarMap::All)
    }

    /// The distribution of array `name`, if mapped.
    pub fn array_dist(&self, name: &str) -> Option<Dist> {
        self.arrays.get(name).cloned()
    }

    /// All mapped arrays in name order.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &Dist)> {
        self.arrays.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// All explicitly mapped scalars in name order.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, ScalarMap)> {
        self.scalars.iter().map(|(n, m)| (n.as_str(), *m))
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "decomposition on {} processors:", self.nprocs)?;
        for (n, m) in &self.scalars {
            writeln!(f, "  {n} : {m}")?;
        }
        for (n, d) in &self.arrays {
            writeln!(f, "  {n} : {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_scalar_defaults_to_all() {
        let d = Decomposition::new(2);
        assert_eq!(d.scalar_map("k"), ScalarMap::All);
    }

    #[test]
    fn explicit_mappings_round_trip() {
        let d = Decomposition::new(3)
            .scalar("a", ScalarMap::On(1))
            .array("A", Dist::RowCyclic);
        assert_eq!(d.scalar_map("a"), ScalarMap::On(1));
        assert_eq!(d.array_dist("A"), Some(Dist::RowCyclic));
        assert_eq!(d.array_dist("B"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scalar_processor_bounds_checked() {
        let _ = Decomposition::new(2).scalar("a", ScalarMap::On(2));
    }

    #[test]
    fn duplicate_array_registration_is_a_typed_error() {
        let d = Decomposition::new(2).array("A", Dist::ColumnCyclic);
        let err = d.try_array("A", Dist::RowCyclic).unwrap_err();
        assert_eq!(
            err,
            MappingError::DuplicateArray { name: "A".into() },
            "got: {err}"
        );
        assert!(err.to_string().contains("already mapped"));
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn duplicate_array_registration_panics_in_builder() {
        let _ = Decomposition::new(2)
            .array("A", Dist::ColumnCyclic)
            .array("A", Dist::RowCyclic);
    }

    #[test]
    fn try_array_keeps_the_first_mapping_on_error() {
        let d = Decomposition::new(2).array("A", Dist::ColumnCyclic);
        // The failed builder consumed `d`; rebuild and confirm semantics.
        let d2 = Decomposition::new(2)
            .array("A", Dist::ColumnCyclic)
            .try_array("B", Dist::RowBlock)
            .expect("fresh name registers");
        assert_eq!(d2.array_dist("A"), Some(Dist::ColumnCyclic));
        assert_eq!(d2.array_dist("B"), Some(Dist::RowBlock));
        assert_eq!(d.array_dist("A"), Some(Dist::ColumnCyclic));
    }

    #[test]
    fn three_valued_logic_tables() {
        use ThreeVal::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(Unknown.and(False), False);
        assert_eq!(Unknown.and(True), Unknown);
        assert_eq!(False.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(False.or(False), False);
    }

    #[test]
    fn display_lists_mappings() {
        let d = Decomposition::new(2)
            .scalar("a", ScalarMap::On(0))
            .array("A", Dist::ColumnCyclic);
        let s = d.to_string();
        assert!(s.contains("a : P0"));
        assert!(s.contains("A : column-cyclic"));
    }
}
