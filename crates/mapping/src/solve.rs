//! The mapping-equation solver.
//!
//! Compile-time resolution must restrict each processor's loops to "only
//! required loop iterations, rather than go through all iterations looking
//! for work" (§3.2). Given the symbolic owner of a statement and a target
//! processor `p`, [`solve_for`] solves `owner(v) = p` for a loop variable
//! `v`, producing an [`IterSet`] (a congruence class intersected with a
//! range) that the code generator turns into strided loop bounds — or
//! [`Solution::Guard`] when the equation cannot be solved statically, in
//! which case the compiler falls back to a run-time residue test (the
//! *inconclusive* outcome of §3.2).

use crate::affine::Affine;
use crate::owner::OwnerExpr;

/// A set of integers of the form `{ v : v ≡ residue (mod modulus), lo ≤ v ≤ hi }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterSet {
    /// Congruence modulus (≥ 1; 1 means no congruence constraint).
    pub modulus: i64,
    /// Congruence residue in `0..modulus`.
    pub residue: i64,
    /// Inclusive lower bound, if any.
    pub lo: Option<i64>,
    /// Inclusive upper bound, if any.
    pub hi: Option<i64>,
}

impl IterSet {
    /// The set of all integers.
    pub fn all() -> Self {
        IterSet {
            modulus: 1,
            residue: 0,
            lo: None,
            hi: None,
        }
    }

    /// Pure congruence `v ≡ r (mod m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 1`.
    pub fn stride(m: i64, r: i64) -> Self {
        assert!(m >= 1, "modulus must be positive");
        IterSet {
            modulus: m,
            residue: r.rem_euclid(m),
            lo: None,
            hi: None,
        }
    }

    /// Pure range `lo ≤ v ≤ hi` (either side may be unbounded).
    pub fn range(lo: Option<i64>, hi: Option<i64>) -> Self {
        IterSet {
            modulus: 1,
            residue: 0,
            lo,
            hi,
        }
    }

    /// Does the set contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        v.rem_euclid(self.modulus) == self.residue
            && self.lo.is_none_or(|lo| v >= lo)
            && self.hi.is_none_or(|hi| v <= hi)
    }

    /// Intersect two sets; `None` means the intersection is empty.
    pub fn intersect(&self, other: &IterSet) -> Option<IterSet> {
        let (m, r) = crt(self.modulus, self.residue, other.modulus, other.residue)?;
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if lo > hi {
                return None;
            }
        }
        Some(IterSet {
            modulus: m,
            residue: r,
            lo,
            hi,
        })
    }

    /// The smallest member ≥ `from`, if the set is non-empty above `from`.
    pub fn first_at_or_after(&self, from: i64) -> Option<i64> {
        let start = match self.lo {
            Some(lo) => from.max(lo),
            None => from,
        };
        let delta = (self.residue - start).rem_euclid(self.modulus);
        let candidate = start + delta;
        match self.hi {
            Some(hi) if candidate > hi => None,
            _ => Some(candidate),
        }
    }

    /// Enumerate members within `[from, to]` (for tests and interpreters).
    pub fn members_in(&self, from: i64, to: i64) -> Vec<i64> {
        let mut out = Vec::new();
        let Some(mut v) = self.first_at_or_after(from) else {
            return out;
        };
        let stop = match self.hi {
            Some(hi) => hi.min(to),
            None => to,
        };
        while v <= stop {
            out.push(v);
            v += self.modulus;
        }
        out
    }
}

/// Result of solving `owner(v) = p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// No iteration satisfies the equation — the processor has no role.
    Empty,
    /// The statically computed iteration set.
    Set(IterSet),
    /// The equation could not be solved; the compiler must emit a run-time
    /// ownership guard (the *inconclusive* case of §3.2).
    Guard,
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a,b)`.
fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a.abs(), a.signum(), 0)
    } else {
        let (g, x, y) = ext_gcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

/// Chinese-remainder combination of `v ≡ r1 (mod m1)` and `v ≡ r2 (mod m2)`.
/// `None` if incompatible.
fn crt(m1: i64, r1: i64, m2: i64, r2: i64) -> Option<(i64, i64)> {
    if m1 == 1 {
        return Some((m2, r2.rem_euclid(m2)));
    }
    if m2 == 1 {
        return Some((m1, r1.rem_euclid(m1)));
    }
    let (g, x, _) = ext_gcd(m1, m2);
    if (r2 - r1).rem_euclid(g) != 0 {
        return None;
    }
    let _ = x;
    let lcm = m1 / g * m2;
    // Walk r1's class in steps of m1 until it also satisfies the second
    // congruence; at most m2/g steps by the CRT existence argument.
    let step = m1;
    let mut v = r1.rem_euclid(lcm);
    for _ in 0..(m2 / g) {
        if v.rem_euclid(m2) == r2.rem_euclid(m2) {
            return Some((lcm, v));
        }
        v = (v + step).rem_euclid(lcm);
    }
    None
}

/// Try to view `expr` as `a·v + c` with `a ≠ 0` and `c` constant
/// (no other variables). Returns `(a, c)`.
fn as_single_var(expr: &Affine, v: &str) -> Option<(i64, i64)> {
    let a = expr.coeff(v);
    if a == 0 {
        return None;
    }
    let rest = expr.sub(&Affine::var(v).scale(a));
    rest.as_constant().map(|c| (a, c))
}

/// Solve `owner(…, v, …) = p` for variable `v`.
///
/// Variables other than `v` occurring in the owner make the solution
/// [`Solution::Guard`] (their values are unknown at this loop level);
/// owners independent of `v` reduce to membership: all iterations or none.
pub fn solve_for(owner: &OwnerExpr, v: &str, p: usize) -> Solution {
    match owner {
        OwnerExpr::All => Solution::Set(IterSet::all()),
        OwnerExpr::Const(q) => {
            if *q == p {
                Solution::Set(IterSet::all())
            } else {
                Solution::Empty
            }
        }
        OwnerExpr::CyclicMod { expr, s } => {
            let s = *s as i64;
            match as_single_var(expr, v) {
                Some((a, c)) => {
                    // a·v + c ≡ p (mod s)
                    let (g, inv, _) = ext_gcd(a, s);
                    let rhs = (p as i64 - c).rem_euclid(s);
                    if rhs.rem_euclid(g) != 0 {
                        return Solution::Empty;
                    }
                    let m = s / g;
                    let r = ((rhs / g) * inv.rem_euclid(m)).rem_euclid(m);
                    Solution::Set(IterSet::stride(m, r))
                }
                None => match expr.as_constant() {
                    Some(c) => {
                        if c.rem_euclid(s) == p as i64 {
                            Solution::Set(IterSet::all())
                        } else {
                            Solution::Empty
                        }
                    }
                    None => Solution::Guard,
                },
            }
        }
        OwnerExpr::BlockDiv {
            expr,
            block,
            nprocs,
        } => {
            let b = *block as i64;
            match as_single_var(expr, v) {
                // Only unit coefficients solve to a contiguous range.
                Some((1, c)) => {
                    let lo = p as i64 * b - c;
                    let hi = if p + 1 == *nprocs {
                        None // last processor clamps upward
                    } else {
                        Some((p as i64 + 1) * b - 1 - c)
                    };
                    Solution::Set(IterSet::range(Some(lo), hi))
                }
                Some((-1, c)) => {
                    // (c - v) div b = p  =>  p*b ≤ c - v ≤ (p+1)*b - 1
                    let hi = c - p as i64 * b;
                    let lo = if p + 1 == *nprocs {
                        None
                    } else {
                        Some(c - ((p as i64 + 1) * b - 1))
                    };
                    Solution::Set(IterSet::range(lo, Some(hi)))
                }
                Some(_) => Solution::Guard,
                None => match expr.as_constant() {
                    Some(c) => {
                        let owner = ((c.max(0) as usize) / block).min(*nprocs - 1);
                        if owner == p {
                            Solution::Set(IterSet::all())
                        } else {
                            Solution::Empty
                        }
                    }
                    None => Solution::Guard,
                },
            }
        }
        // Block-cyclic iteration sets are unions of ranges; we leave them
        // to run-time guards (still correct, just less specialized).
        OwnerExpr::BlockCyclicMod { expr, block, s } => match expr.as_constant() {
            Some(c) => {
                if (c.max(0) as usize / block) % s == p {
                    Solution::Set(IterSet::all())
                } else {
                    Solution::Empty
                }
            }
            None => Solution::Guard,
        },
        OwnerExpr::Grid { row, col, pcols } => {
            let prow = p / pcols;
            let pcol = p % pcols;
            let sr = solve_for(row, v, prow);
            let sc = solve_for(col, v, pcol);
            match (sr, sc) {
                (Solution::Empty, _) | (_, Solution::Empty) => Solution::Empty,
                (Solution::Guard, _) | (_, Solution::Guard) => Solution::Guard,
                (Solution::Set(a), Solution::Set(b)) => match a.intersect(&b) {
                    Some(s) => Solution::Set(s),
                    None => Solution::Empty,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_solves_to_stride() {
        // owner = (j-1) mod 4, solve owner = 2 for j: j ≡ 3 (mod 4).
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").offset(-1),
            s: 4,
        };
        match solve_for(&o, "j", 2) {
            Solution::Set(s) => {
                assert_eq!(s.modulus, 4);
                assert_eq!(s.residue, 3);
                assert_eq!(s.members_in(1, 12), vec![3, 7, 11]);
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_with_negative_coefficient() {
        // owner = (-j) mod 5 = 1 → j ≡ 4 (mod 5)
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").scale(-1),
            s: 5,
        };
        match solve_for(&o, "j", 1) {
            Solution::Set(s) => {
                for v in s.members_in(0, 30) {
                    assert_eq!((-v).rem_euclid(5), 1, "v={v}");
                }
                assert!(!s.members_in(0, 30).is_empty());
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_gcd_unsolvable_is_empty() {
        // 2j ≡ 1 (mod 4) has no solution.
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").scale(2),
            s: 4,
        };
        assert_eq!(solve_for(&o, "j", 1), Solution::Empty);
    }

    #[test]
    fn cyclic_gcd_solvable_halves_modulus() {
        // 2j ≡ 2 (mod 4)  →  j ≡ 1 (mod 2)
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").scale(2),
            s: 4,
        };
        match solve_for(&o, "j", 2) {
            Solution::Set(s) => {
                assert_eq!(s.modulus, 2);
                assert_eq!(s.members_in(0, 7), vec![1, 3, 5, 7]);
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn block_solves_to_range() {
        // owner = (j-1) div 4 over 4 procs; owner = 1 → j in [5, 8].
        let o = OwnerExpr::BlockDiv {
            expr: Affine::var("j").offset(-1),
            block: 4,
            nprocs: 4,
        };
        match solve_for(&o, "j", 1) {
            Solution::Set(s) => {
                assert_eq!(s.members_in(1, 16), vec![5, 6, 7, 8]);
            }
            other => panic!("expected set, got {other:?}"),
        }
        // Last processor is open above (clamping).
        match solve_for(&o, "j", 3) {
            Solution::Set(s) => {
                assert_eq!(s.lo, Some(13));
                assert_eq!(s.hi, None);
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn other_vars_force_guard() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("i").add(&Affine::var("j")),
            s: 4,
        };
        assert_eq!(solve_for(&o, "j", 0), Solution::Guard);
    }

    #[test]
    fn const_expr_reduces_to_membership() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::constant(5),
            s: 4,
        };
        assert_eq!(solve_for(&o, "j", 1), Solution::Set(IterSet::all()));
        assert_eq!(solve_for(&o, "j", 2), Solution::Empty);
    }

    #[test]
    fn grid_intersects_dimensions() {
        // 4x4 array, 2x2 grid of 4 procs, blocks of 2.
        let o = OwnerExpr::Grid {
            row: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::var("i").offset(-1),
                block: 2,
                nprocs: 2,
            }),
            col: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::var("j").offset(-1),
                block: 2,
                nprocs: 2,
            }),
            pcols: 2,
        };
        // Solving for i at p=3 (prow=1, pcol=1): i in [3,∞) (clamped dim),
        // col dimension independent of i → guard? No: col solved for "i"
        // gives All (const in i)… it is CyclicMod-free: BlockDiv over j
        // does not mention i, and j is not constant → Guard.
        assert_eq!(solve_for(&o, "i", 3), Solution::Guard);
        // But solving for i when the col part is replicated works:
        let o2 = OwnerExpr::Grid {
            row: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::var("i").offset(-1),
                block: 2,
                nprocs: 2,
            }),
            col: Box::new(OwnerExpr::Const(1)),
            pcols: 2,
        };
        match solve_for(&o2, "i", 3) {
            Solution::Set(s) => assert_eq!(s.lo, Some(3)),
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn iterset_intersect_crt() {
        // v ≡ 1 (mod 2) ∧ v ≡ 2 (mod 3)  →  v ≡ 5 (mod 6)
        let a = IterSet::stride(2, 1);
        let b = IterSet::stride(3, 2);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.modulus, 6);
        assert_eq!(c.residue, 5);
        // Incompatible congruences are empty.
        let d = IterSet::stride(2, 0);
        assert!(IterSet::stride(2, 1).intersect(&d).is_none());
    }

    #[test]
    fn iterset_first_and_members() {
        let s = IterSet {
            modulus: 4,
            residue: 3,
            lo: Some(5),
            hi: Some(20),
        };
        assert_eq!(s.first_at_or_after(0), Some(7));
        assert_eq!(s.first_at_or_after(8), Some(11));
        assert_eq!(s.members_in(0, 30), vec![7, 11, 15, 19]);
        assert!(s.contains(15));
        assert!(!s.contains(3)); // below lo
        assert!(!s.contains(23)); // above hi
    }
}
