//! Property tests of the mapping-equation solver: whatever `solve_for`
//! returns must agree, pointwise, with brute-force evaluation of the
//! owner expression.

use pdc_mapping::{solve_for, Affine, OwnerExpr, OwnerSet, Solution};
use proptest::prelude::*;

fn affine_strategy() -> impl Strategy<Value = Affine> {
    // a*j + c with small coefficients (including the paper's j-1, j, j+1).
    (-3i64..4, -5i64..6).prop_map(|(a, c)| Affine::var("j").scale(a).offset(c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cyclic: `solve_for` matches brute force over a window.
    #[test]
    fn cyclic_solutions_are_sound_and_complete(
        aff in affine_strategy(),
        s in 1usize..9,
        p in 0usize..9,
    ) {
        let p = p % s;
        let owner = OwnerExpr::CyclicMod { expr: aff.clone(), s };
        let sol = solve_for(&owner, "j", p);
        for j in -20i64..40 {
            let truth = owner.eval(&|v| {
                assert_eq!(v, "j");
                j
            }) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => prop_assert!(!truth, "j={j} should satisfy nothing"),
                Solution::Set(set) => prop_assert_eq!(
                    set.contains(j),
                    truth,
                    "j={} set={:?} aff={}", j, set, &aff
                ),
                Solution::Guard => {} // always safe
            }
        }
    }

    /// Block: `solve_for` matches brute force (unit coefficients solve to
    /// ranges; everything else must degrade safely).
    #[test]
    fn block_solutions_are_sound_and_complete(
        a in prop_oneof![Just(1i64), Just(-1i64), Just(2i64), Just(0i64)],
        c in -5i64..6,
        block in 1usize..6,
        nprocs in 1usize..5,
        p in 0usize..5,
    ) {
        let p = p % nprocs;
        let aff = Affine::var("j").scale(a).offset(c);
        let owner = OwnerExpr::BlockDiv { expr: aff, block, nprocs };
        let sol = solve_for(&owner, "j", p);
        for j in -20i64..40 {
            let truth = owner.eval(&|_| j) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => prop_assert!(!truth, "j={j}"),
                Solution::Set(set) => {
                    // BlockDiv clamps negatives to block 0; the solved
                    // range describes the un-clamped region, so only
                    // check where the expression is non-negative.
                    let v = match a {
                        0 => c,
                        _ => a * j + c,
                    };
                    if v >= 0 {
                        prop_assert_eq!(set.contains(j), truth, "j={}", j);
                    }
                }
                Solution::Guard => {}
            }
        }
    }

    /// Grid solutions (when not guarded) match brute force.
    #[test]
    fn grid_solutions_are_sound(
        s_row in 1usize..4,
        block in 1usize..4,
        p in 0usize..16,
    ) {
        let pcols = 2usize;
        let nprocs = s_row * pcols;
        let p = p % nprocs;
        // Row dimension fixed (const), column dimension cyclic over j:
        // solvable for j.
        let owner = OwnerExpr::Grid {
            row: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::constant(block as i64),
                block,
                nprocs: s_row,
            }),
            col: Box::new(OwnerExpr::CyclicMod {
                expr: Affine::var("j").offset(-1),
                s: pcols,
            }),
            pcols,
        };
        let sol = solve_for(&owner, "j", p);
        for j in 1i64..30 {
            let truth = owner.eval(&|_| j) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => prop_assert!(!truth, "j={j}"),
                Solution::Set(set) => prop_assert_eq!(set.contains(j), truth, "j={}", j),
                Solution::Guard => {}
            }
        }
    }

    /// IterSet::first_at_or_after returns exactly the first member.
    #[test]
    fn first_at_or_after_is_minimal(
        m in 1i64..8,
        r in 0i64..8,
        lo in -10i64..10,
        len in 0i64..20,
        from in -15i64..25,
    ) {
        let set = pdc_mapping::IterSet {
            modulus: m,
            residue: r.rem_euclid(m),
            lo: Some(lo),
            hi: Some(lo + len),
        };
        let first = set.first_at_or_after(from);
        // Brute force.
        let expected = (from..=lo + len + m).find(|v| set.contains(*v));
        prop_assert_eq!(first.filter(|v| set.contains(*v)), expected);
    }
}
