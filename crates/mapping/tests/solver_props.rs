//! Property tests of the mapping-equation solver: whatever `solve_for`
//! returns must agree, pointwise, with brute-force evaluation of the
//! owner expression. (Deterministic `pdc-testkit` cases; a failing case
//! prints its seed for replay.)

use pdc_mapping::{solve_for, Affine, OwnerExpr, OwnerSet, Solution};
use pdc_testkit::{cases, Rng};

/// a*j + c with small coefficients (including the paper's j-1, j, j+1).
fn random_affine(rng: &mut Rng) -> Affine {
    let a = rng.range_i64(-3, 4);
    let c = rng.range_i64(-5, 6);
    Affine::var("j").scale(a).offset(c)
}

/// Cyclic: `solve_for` matches brute force over a window.
#[test]
fn cyclic_solutions_are_sound_and_complete() {
    cases(256, "cyclic_solutions_are_sound_and_complete", |rng| {
        let aff = random_affine(rng);
        let s = rng.range_usize(1, 9);
        let p = rng.range_usize(0, 9) % s;
        let owner = OwnerExpr::CyclicMod {
            expr: aff.clone(),
            s,
        };
        let sol = solve_for(&owner, "j", p);
        for j in -20i64..40 {
            let truth = owner.eval(&|v| {
                assert_eq!(v, "j");
                j
            }) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => assert!(!truth, "j={j} should satisfy nothing"),
                Solution::Set(set) => {
                    assert_eq!(set.contains(j), truth, "j={j} set={set:?} aff={aff}")
                }
                Solution::Guard => {} // always safe
            }
        }
    });
}

/// Block: `solve_for` matches brute force (unit coefficients solve to
/// ranges; everything else must degrade safely).
#[test]
fn block_solutions_are_sound_and_complete() {
    cases(256, "block_solutions_are_sound_and_complete", |rng| {
        let a = *rng.pick(&[1i64, -1, 2, 0]);
        let c = rng.range_i64(-5, 6);
        let block = rng.range_usize(1, 6);
        let nprocs = rng.range_usize(1, 5);
        let p = rng.range_usize(0, 5) % nprocs;
        let aff = Affine::var("j").scale(a).offset(c);
        let owner = OwnerExpr::BlockDiv {
            expr: aff,
            block,
            nprocs,
        };
        let sol = solve_for(&owner, "j", p);
        for j in -20i64..40 {
            let truth = owner.eval(&|_| j) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => assert!(!truth, "j={j}"),
                Solution::Set(set) => {
                    // BlockDiv clamps negatives to block 0; the solved
                    // range describes the un-clamped region, so only
                    // check where the expression is non-negative.
                    let v = match a {
                        0 => c,
                        _ => a * j + c,
                    };
                    if v >= 0 {
                        assert_eq!(set.contains(j), truth, "j={j}");
                    }
                }
                Solution::Guard => {}
            }
        }
    });
}

/// Grid solutions (when not guarded) match brute force.
#[test]
fn grid_solutions_are_sound() {
    cases(256, "grid_solutions_are_sound", |rng| {
        let s_row = rng.range_usize(1, 4);
        let block = rng.range_usize(1, 4);
        let pcols = 2usize;
        let nprocs = s_row * pcols;
        let p = rng.range_usize(0, 16) % nprocs;
        // Row dimension fixed (const), column dimension cyclic over j:
        // solvable for j.
        let owner = OwnerExpr::Grid {
            row: Box::new(OwnerExpr::BlockDiv {
                expr: Affine::constant(block as i64),
                block,
                nprocs: s_row,
            }),
            col: Box::new(OwnerExpr::CyclicMod {
                expr: Affine::var("j").offset(-1),
                s: pcols,
            }),
            pcols,
        };
        let sol = solve_for(&owner, "j", p);
        for j in 1i64..30 {
            let truth = owner.eval(&|_| j) == OwnerSet::One(p);
            match &sol {
                Solution::Empty => assert!(!truth, "j={j}"),
                Solution::Set(set) => assert_eq!(set.contains(j), truth, "j={j}"),
                Solution::Guard => {}
            }
        }
    });
}

/// IterSet::first_at_or_after returns exactly the first member.
#[test]
fn first_at_or_after_is_minimal() {
    cases(256, "first_at_or_after_is_minimal", |rng| {
        let m = rng.range_i64(1, 8);
        let r = rng.range_i64(0, 8);
        let lo = rng.range_i64(-10, 10);
        let len = rng.range_i64(0, 20);
        let from = rng.range_i64(-15, 25);
        let set = pdc_mapping::IterSet {
            modulus: m,
            residue: r.rem_euclid(m),
            lo: Some(lo),
            hi: Some(lo + len),
        };
        let first = set.first_at_or_after(from);
        // Brute force.
        let expected = (from..=lo + len + m).find(|v| set.contains(*v));
        assert_eq!(first.filter(|v| set.contains(*v)), expected);
    });
}
