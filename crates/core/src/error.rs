//! Compiler errors.

use pdc_lang::{LangError, Span};
use std::error::Error;
use std::fmt;

/// A failure in the process-decomposition compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Front-end failure (parse/check/interpreter).
    Lang(LangError),
    /// A construct outside the compilable subset (with the reason).
    Unsupported {
        /// What was not supported and why.
        message: String,
        /// Where.
        span: Span,
    },
    /// The program is recursive; the compiler inlines procedure calls, so
    /// recursion cannot be compiled (the paper's full interprocedural
    /// analysis is future work; the sequential interpreter still runs
    /// recursive programs).
    Recursion {
        /// The cycle, as a call chain.
        cycle: Vec<String>,
    },
    /// An array is used but has no mapping in the decomposition.
    MissingMapping {
        /// Array name.
        name: String,
    },
    /// The entry procedure was not found.
    NoEntry {
        /// The requested name.
        name: String,
    },
    /// The static communication-safety analyzer *proved* the compiled
    /// program faulty — it would deadlock, fault, or double-write an
    /// I-structure at run time. Only emitted when the analysis was exact
    /// (inexact analyses degrade to remarks instead).
    StaticAnalysis {
        /// The error-severity findings, in analyzer order.
        diagnostics: Vec<pdc_analyze::Diagnostic>,
    },
    /// The automatic decomposition search found no viable candidate:
    /// every enumerated decomposition either failed to compile or lost
    /// static exactness (the tuner refuses to rank on inexact scores).
    Tune {
        /// What the search reported.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "{e}"),
            CoreError::Unsupported { message, .. } => {
                write!(f, "unsupported construct: {message}")
            }
            CoreError::Recursion { cycle } => {
                write!(
                    f,
                    "recursive call chain cannot be compiled: {}",
                    cycle.join(" -> ")
                )
            }
            CoreError::MissingMapping { name } => {
                write!(f, "array `{name}` has no mapping in the decomposition")
            }
            CoreError::NoEntry { name } => write!(f, "entry procedure `{name}` not found"),
            CoreError::StaticAnalysis { diagnostics } => {
                write!(
                    f,
                    "static analysis found {} communication error(s)",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "; {}", d.message)?;
                }
                Ok(())
            }
            CoreError::Tune { message } => {
                write!(f, "automatic decomposition search failed: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CoreError::Recursion {
            cycle: vec!["f".into(), "g".into(), "f".into()],
        };
        assert!(e.to_string().contains("f -> g -> f"));
        assert!(CoreError::MissingMapping { name: "A".into() }
            .to_string()
            .contains("`A`"));
    }
}
