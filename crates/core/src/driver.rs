//! End-to-end pipeline: compile → distribute inputs → simulate → gather →
//! (optionally) check against the sequential interpreter.

use crate::analysis::{Analysis, EvalOwner};
use crate::compile_time;
use crate::inline::{inline_program, Inlined, ParamMapMode, ParamMaps};
use crate::runtime_res;
use crate::CoreError;
use pdc_analyze::AnalysisReport;
use pdc_istructure::IMatrix;
use pdc_lang::ast::{Block, Stmt};
use pdc_lang::interp::Interpreter;
use pdc_lang::value::Value;
use pdc_lang::Program;
use pdc_machine::{Backend, CheckpointCfg, CostModel, FaultPlan, ProcId, RelConfig, Tag};
use pdc_mapping::{Decomposition, DistInstance};
use pdc_opt::{optimize_with_remarks, OptLevel, OptReport};
use pdc_report::{Phase, Prediction, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::SpmdProgram;
use pdc_spmd::run::{RunOutcome, SpmdMachine};
use pdc_spmd::{Scalar, SpmdError};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which code generator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// §3.1: one generic guarded program on every processor.
    Runtime,
    /// §3.2: per-processor specialization with solved loop bounds.
    CompileTime,
}

/// A compilation job: the program plus everything the compiler needs to
/// know about the target configuration.
#[derive(Debug, Clone)]
pub struct Job<'a> {
    /// The source program.
    pub program: &'a Program,
    /// Entry procedure name.
    pub entry: &'a str,
    /// The domain decomposition (includes the machine size).
    pub decomp: Decomposition,
    /// Declared parameter mappings for procedures (§5.1).
    pub param_maps: ParamMaps,
    /// Mapping-polymorphism mode (§5.1).
    pub mode: ParamMapMode,
    /// Compile-time-known scalar parameters (e.g. `n = 128`), used to
    /// fold allocation extents for the block distribution families.
    pub const_params: HashMap<String, i64>,
    /// Explicit extents for input arrays (alternative to `const_params`).
    pub extent_overrides: HashMap<String, (usize, usize)>,
    /// Execution backend for the compiled program (simulated by default).
    pub backend: Backend,
    /// Fault plan and retransmission policy the execution should run
    /// under. `None` (the default) runs the raw, fault-free fabric.
    pub fault_plan: Option<(FaultPlan, RelConfig)>,
    /// Checkpoint/restart policy; `None` (the default) takes no
    /// checkpoints, so an injected crash kills the run. See
    /// [`Job::with_checkpoints`].
    pub checkpoints: Option<CheckpointCfg>,
    /// Retransmission-policy override for the reliable-delivery layer
    /// (§ satellite: service-level callers could not reach [`RelConfig`]
    /// before). `Some` forces the reliable protocol on even without a
    /// fault plan and wins over the [`RelConfig`] bundled into
    /// [`Job::with_fault_plan`].
    pub retransmit: Option<RelConfig>,
    /// Wall-clock receive timeout for the threaded backend; `None` uses
    /// [`DEFAULT_RECV_TIMEOUT`](pdc_machine::DEFAULT_RECV_TIMEOUT).
    /// Ignored by the simulator, which detects deadlock exactly.
    pub recv_timeout: Option<std::time::Duration>,
    /// Event-trace buffer cap; `None` (the default) disables tracing.
    pub trace_cap: Option<usize>,
    /// Record full runtime metrics (lock-free counters, histograms,
    /// per-channel tables) during execution; read the snapshot back with
    /// [`Execution::metrics`]. The flight recorder is always on
    /// regardless. Off by default.
    pub metrics: bool,
    /// Optimization level for the generated code; `None` (the default)
    /// leaves the resolver output untouched (equivalent to
    /// [`OptLevel::O0`] but skips the pipeline entirely).
    pub opt_level: Option<OptLevel>,
    /// Run the static communication-safety analyzer (`pdc-analyze`) over
    /// the final code. `None` (the default) enables it at O1 and above;
    /// `Some(false)` disables it, `Some(true)` forces it on. When the
    /// analysis is exact and finds errors, [`compile`] returns
    /// [`CoreError::StaticAnalysis`] instead of letting the program
    /// deadlock or fault at run time.
    pub verify_static: Option<bool>,
    /// Search for the decomposition automatically instead of trusting
    /// [`Job::decomp`] verbatim. When set, [`compile`] enumerates the
    /// candidate space around the seed decomposition ([`Job::decomp`]
    /// supplies the machine size, the arrays to distribute, and the
    /// scalars whose placement is swept), scores every candidate with
    /// the exact static cost and makespan models under this
    /// [`CostModel`], and compiles the winner. The search is recorded as
    /// [`Phase::Tune`] remarks and in [`Compiled::tune`].
    pub auto_decomposition: Option<CostModel>,
}

impl<'a> Job<'a> {
    /// A job with default options.
    pub fn new(program: &'a Program, entry: &'a str, decomp: Decomposition) -> Self {
        Job {
            program,
            entry,
            decomp,
            param_maps: ParamMaps::new(),
            mode: ParamMapMode::Monomorphic,
            const_params: HashMap::new(),
            extent_overrides: HashMap::new(),
            backend: Backend::Simulated,
            fault_plan: None,
            checkpoints: None,
            retransmit: None,
            recv_timeout: None,
            trace_cap: None,
            metrics: false,
            opt_level: None,
            verify_static: None,
            auto_decomposition: None,
        }
    }

    /// Record a compile-time-known scalar parameter.
    pub fn with_const(mut self, name: impl Into<String>, value: i64) -> Self {
        self.const_params.insert(name.into(), value);
        self
    }

    /// Select the execution backend for this job (simulated by default).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Inject faults from `plan` during execution, running the machine's
    /// reliable-delivery protocol. Outputs are unchanged (the protocol
    /// recovers every message); timing and the
    /// [`FaultReport`](pdc_machine::FaultReport) reflect the damage.
    pub fn with_fault_plan(mut self, plan: FaultPlan, cfg: RelConfig) -> Self {
        self.fault_plan = Some((plan, cfg));
        self
    }

    /// Inject processor *crashes* from `plan` (built with
    /// [`FaultPlan::with_crash`] or
    /// [`FaultPlan::with_crash_rate`](pdc_machine::FaultPlan::with_crash_rate))
    /// under the default retransmission policy — tune it with
    /// [`Job::with_retransmit_cfg`]. Combine with
    /// [`Job::with_checkpoints`] so the crashes are survivable; without
    /// checkpoints a crash fails the run with
    /// [`MachineError::Crashed`](pdc_machine::MachineError::Crashed).
    pub fn with_crash_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some((plan, RelConfig::default()));
        self
    }

    /// Checkpoint every processor's complete execution state every
    /// `interval_ops` charged operations and restart crashed processors
    /// from their last snapshot. For the full knob set (coordinated
    /// mode, reboot cost, per-word snapshot cost) use
    /// [`Job::with_checkpoint_cfg`].
    pub fn with_checkpoints(self, interval_ops: u64) -> Self {
        self.with_checkpoint_cfg(CheckpointCfg::every(interval_ops))
    }

    /// Like [`Job::with_checkpoints`] with an explicit [`CheckpointCfg`].
    pub fn with_checkpoint_cfg(mut self, cfg: CheckpointCfg) -> Self {
        self.checkpoints = Some(cfg);
        self
    }

    /// Override the reliable-delivery retransmission policy (timeouts,
    /// backoff, retry budget). Forces the reliable protocol on even when
    /// no fault plan is set; when a [`Job::with_fault_plan`] bundled its
    /// own [`RelConfig`], this one wins.
    pub fn with_retransmit_cfg(mut self, cfg: RelConfig) -> Self {
        self.retransmit = Some(cfg);
        self
    }

    /// Override the threaded backend's wall-clock receive timeout
    /// (defaults to
    /// [`DEFAULT_RECV_TIMEOUT`](pdc_machine::DEFAULT_RECV_TIMEOUT)).
    /// Ignored on the simulator, which detects deadlock exactly.
    pub fn with_recv_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Record an event trace (up to `cap` events) during execution; read
    /// it back with [`Execution::trace`]. Works on both backends.
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace_cap = Some(cap);
        self
    }

    /// Record full runtime metrics during execution (counters,
    /// histograms, per-channel traffic tables) on either backend; read
    /// the snapshot back with [`Execution::metrics`].
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Run the §4 optimization pipeline on the generated code at the
    /// given level (the paper's Optimized I/II/III variants).
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = Some(level);
        self
    }

    /// Force the static communication-safety analyzer on or off
    /// (defaults to on at O1 and above). See [`Job::verify_static`].
    pub fn with_verify_static(mut self, enabled: bool) -> Self {
        self.verify_static = Some(enabled);
        self
    }

    /// Search for the best decomposition automatically under the iPSC/2
    /// cost model instead of compiling [`Job::decomp`] verbatim. See
    /// [`Job::auto_decomposition`].
    pub fn with_auto_decomposition(self) -> Self {
        self.with_auto_decomposition_under(CostModel::ipsc2())
    }

    /// Like [`Job::with_auto_decomposition`], scoring candidates under
    /// an explicit machine cost model.
    pub fn with_auto_decomposition_under(mut self, cost: CostModel) -> Self {
        self.auto_decomposition = Some(cost);
        self
    }
}

/// A compiled program bundled with the analysis that produced it (needed
/// later to distribute inputs consistently).
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The per-processor target program.
    pub spmd: SpmdProgram,
    /// The mapping analysis.
    pub analysis: Analysis,
    /// The inlined source (kept for diagnostics and tests).
    pub inlined: Inlined,
    /// The execution backend the job requested (used by [`execute`]).
    pub backend: Backend,
    /// Fault plan the job requested (used by [`execute`]).
    pub fault_plan: Option<(FaultPlan, RelConfig)>,
    /// Checkpoint policy the job requested (used by [`execute`]).
    pub checkpoints: Option<CheckpointCfg>,
    /// Retransmission override the job requested (used by [`execute`]).
    pub retransmit: Option<RelConfig>,
    /// Threaded receive timeout the job requested (used by [`execute`]).
    pub recv_timeout: Option<std::time::Duration>,
    /// Trace cap the job requested (used by [`execute`]).
    pub trace_cap: Option<usize>,
    /// Whether the job requested full runtime metrics (used by
    /// [`execute`]).
    pub metrics: bool,
    /// The full remark stream, in pipeline order: analysis, resolution,
    /// optimization passes, cost model.
    pub remarks: Vec<Remark>,
    /// What the optimization pipeline did (all-zero when the job set no
    /// [`Job::with_opt_level`]).
    pub opt_report: OptReport,
    /// Static per-channel message-cost prediction for the *final* code
    /// (after optimization). Verified against observation by
    /// [`Execution::verify_predictions`].
    pub prediction: Prediction,
    /// Static communication-safety analysis of the final code (`None`
    /// when the job disabled it or the default left it off below O1).
    /// When present and [`verified`](AnalysisReport::verified), the
    /// program provably cannot deadlock, orphan messages, or double-write
    /// an I-structure element for this problem size.
    pub verification: Option<AnalysisReport>,
    /// Source span of each assignment statement, keyed by statement id
    /// (`sid = tag / TAG_STRIDE`). Used to resolve IR-level remarks and
    /// trace tags back to source.
    pub stmt_spans: BTreeMap<u32, pdc_lang::Span>,
    /// The decomposition search, when the job asked for
    /// [`Job::with_auto_decomposition`]: every candidate with its exact
    /// score or rejection reason, and the winner this compilation used.
    pub tune: Option<pdc_tune::TuneResult>,
}

impl Compiled {
    /// The remark stream rendered as human-readable text.
    pub fn remarks_text(&self) -> String {
        pdc_report::render_text(&self.remarks)
    }

    /// Resolve a communication tag back to the source span of the
    /// assignment it implements (`sid = tag / TAG_STRIDE`). Used to
    /// anchor analyzer diagnostics and trace events to source.
    pub fn resolve_tag_span(&self, tag: u32) -> Option<pdc_lang::Span> {
        self.stmt_spans
            .get(&(tag / compile_time::TAG_STRIDE))
            .copied()
    }

    /// The static environment (scalar constants and preloaded-array
    /// instances) the cost model and analyzer interpreted this program
    /// under — for re-running either over a mutated copy in tests.
    pub fn static_env(
        &self,
        const_params: &HashMap<String, i64>,
    ) -> (BTreeMap<String, i64>, BTreeMap<String, DistInstance>) {
        static_env(&self.analysis, const_params)
    }

    /// The source span of the first write to `array` in the inlined
    /// program — the anchor for double-write diagnostics, whose IR
    /// statements carry no communication tags.
    pub fn resolve_array_span(&self, array: &str) -> Option<pdc_lang::Span> {
        array_write_span(&self.inlined.body, array)
    }

    /// The remark stream as deterministic JSON.
    pub fn remarks_json(&self) -> String {
        pdc_report::remarks_json(&self.remarks)
    }
}

/// Run the front half of the pipeline: inline, analyze, generate.
///
/// # Errors
///
/// Any [`CoreError`] from inlining, analysis, or code generation.
pub fn compile(job: &Job<'_>, strategy: Strategy) -> Result<Compiled, CoreError> {
    if job.auto_decomposition.is_some() {
        return compile_auto(job, strategy);
    }
    let inlined = inline_program(
        job.program,
        job.entry,
        &job.decomp,
        &job.param_maps,
        job.mode,
    )?;
    let analysis = Analysis::build(
        &inlined,
        &job.decomp,
        &job.const_params,
        &job.extent_overrides,
    )?;
    let mut sink = RemarkSink::new();
    emit_analysis_remarks(&inlined.body, &analysis, &mut sink);
    let denv: BTreeMap<String, i64> = job
        .const_params
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for r in pdc_analyze::depend_remarks(&inlined.body, &job.decomp, &denv) {
        sink.emit(r);
    }
    let (spmd, stmt_spans) = match strategy {
        Strategy::Runtime => runtime_res::compile_with_remarks(&inlined, &analysis, &mut sink)?,
        Strategy::CompileTime => {
            compile_time::compile_with_remarks(&inlined, &analysis, &mut sink)?
        }
    };
    let (spmd, opt_report) = match job.opt_level {
        Some(level) => optimize_with_remarks(&spmd, level, &mut sink),
        None => (spmd, OptReport::default()),
    };
    let mut remarks = sink.into_remarks();
    // Optimization passes run on the SPMD IR, which carries no spans;
    // their remarks name the communication tag instead. Statement ids are
    // processor-independent, so `tag / TAG_STRIDE` resolves the source
    // statement.
    for r in &mut remarks {
        if r.span.is_none() {
            if let Some(tag) = r.tag {
                if let Some(span) = stmt_spans.get(&(tag / compile_time::TAG_STRIDE)) {
                    r.span = Some(*span);
                }
            }
        }
    }
    let prediction = predict_compiled(&spmd, &analysis, &job.const_params, &mut remarks);
    let verify = job
        .verify_static
        .unwrap_or(!matches!(job.opt_level, None | Some(OptLevel::O0)));
    let verification = if verify {
        let (env, arrays) = static_env(&analysis, &job.const_params);
        let report = pdc_analyze::analyze(&spmd, &env, &arrays);
        for mut r in report.remarks() {
            // Tag-carrying findings resolve spans like optimizer remarks;
            // double writes carry the array instead — anchor them to the
            // first source write of that array.
            if r.span.is_none() {
                if let Some(tag) = r.tag {
                    r.span = stmt_spans.get(&(tag / compile_time::TAG_STRIDE)).copied();
                }
            }
            remarks.push(r);
        }
        for d in &report.diagnostics {
            if let (None, Some(array)) = (d.tag, &d.array) {
                if let Some(span) = array_write_span(&inlined.body, array) {
                    if let Some(r) = remarks.iter_mut().rev().find(|r| {
                        r.phase == Phase::Analyze && r.span.is_none() && r.message == d.message
                    }) {
                        r.span = Some(span);
                    }
                }
            }
        }
        if report.exact && report.has_errors() {
            return Err(CoreError::StaticAnalysis {
                diagnostics: report.errors().cloned().collect(),
            });
        }
        Some(report)
    } else {
        None
    };
    Ok(Compiled {
        spmd,
        analysis,
        inlined,
        backend: job.backend,
        fault_plan: job.fault_plan.clone(),
        checkpoints: job.checkpoints,
        retransmit: job.retransmit,
        recv_timeout: job.recv_timeout,
        trace_cap: job.trace_cap,
        metrics: job.metrics,
        remarks,
        opt_report,
        prediction,
        verification,
        stmt_spans,
        tune: None,
    })
}

/// Run the automatic decomposition search ([`Job::auto_decomposition`])
/// and compile the winner.
///
/// Candidates are compiled with static verification off (the winner is
/// re-verified) and scored by [`pdc_tune::search`]; the winning
/// decomposition and optimization level are then compiled under the
/// job's own settings. The whole search is appended to the remark
/// stream as [`Phase::Tune`]: one `applied` remark for the selection,
/// one `missed` remark per losing candidate with its exact score or
/// rejection reason — deterministic, so the remark JSON is byte-stable
/// across runs.
fn compile_auto(job: &Job<'_>, strategy: Strategy) -> Result<Compiled, CoreError> {
    let cost = job
        .auto_decomposition
        .expect("compile_auto requires auto_decomposition");
    let space = pdc_tune::SearchSpace::from_seed(&job.decomp, job.opt_level);
    let candidates = pdc_tune::enumerate(&space);
    let searched = candidates.len();
    // Source-level legality pre-filter: when the exact dependence
    // analysis cannot prove the source nests (non-affine subscripts,
    // unresolved bounds), every optimization pass will refuse to fire,
    // so candidates that turn the optimizer on cannot beat their O0
    // twin — reject them before compiling and costing, with the
    // analysis's own reason as the rejection witness.
    let denv: BTreeMap<String, i64> = job
        .const_params
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let dep_inexact: Option<String> =
        pdc_depend::ast::nests(job.program)
            .into_iter()
            .find_map(|(proc, nest)| {
                let info = pdc_depend::ast::analyze_for_env(nest, &denv);
                (!info.exact).then(|| {
                    let why = info
                        .notes
                        .first()
                        .cloned()
                        .unwrap_or_else(|| "subscripts or bounds are not affine".into());
                    format!("procedure `{proc}`: {why}")
                })
            });
    let result = pdc_tune::search(candidates, &cost, |cand| {
        if !matches!(cand.opt_level, None | Some(OptLevel::O0)) {
            if let Some(why) = &dep_inexact {
                return Err(format!("illegal: dependence analysis inexact: {why}"));
            }
        }
        let mut cjob = job.clone();
        cjob.auto_decomposition = None;
        cjob.decomp = cand.decomp.clone();
        cjob.opt_level = cand.opt_level;
        // Candidate compiles skip the safety analyzer: exactness pruning
        // already rejects anything the models cannot fully evaluate, and
        // the winner is re-verified below under the job's own settings.
        cjob.verify_static = Some(false);
        let compiled = compile(&cjob, strategy).map_err(|e| format!("compile failed: {e}"))?;
        let (env, arrays) = compiled.static_env(&cjob.const_params);
        Ok(pdc_tune::CandidateProgram {
            spmd: compiled.spmd,
            env,
            arrays,
            prediction: Some(compiled.prediction),
        })
    })
    .map_err(|e| CoreError::Tune {
        message: e.to_string(),
    })?;

    let winner = result.winner();
    let mut fjob = job.clone();
    fjob.auto_decomposition = None;
    fjob.decomp = winner.candidate.decomp.clone();
    fjob.opt_level = winner.candidate.opt_level;
    let mut compiled = compile(&fjob, strategy)?;

    let score = result.winner_score();
    compiled.remarks.push(
        Remark::new(
            Phase::Tune,
            RemarkKind::Applied,
            format!("selected decomposition `{}`", winner.candidate.label),
        )
        .detail("candidates", searched)
        .detail("viable", result.viable())
        .detail("makespan", score.makespan)
        .detail("messages", score.messages)
        .detail("words", score.words),
    );
    for (i, e) in result.evaluated.iter().enumerate() {
        if i == result.winner {
            continue;
        }
        let r = Remark::new(
            Phase::Tune,
            RemarkKind::Missed,
            format!("candidate `{}`", e.candidate.label),
        );
        compiled.remarks.push(match &e.outcome {
            Ok(s) => r
                .detail("makespan", s.makespan)
                .detail("messages", s.messages)
                .detail("words", s.words),
            Err(reason) => r.detail("rejected", reason),
        });
    }
    compiled.tune = Some(result);
    Ok(compiled)
}

/// The scalar environment and preloaded-array instances the static
/// models (cost prediction, safety analysis) interpret the final code
/// under.
fn static_env(
    analysis: &Analysis,
    const_params: &HashMap<String, i64>,
) -> (BTreeMap<String, i64>, BTreeMap<String, DistInstance>) {
    let env: BTreeMap<String, i64> = const_params.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut arrays: BTreeMap<String, DistInstance> = BTreeMap::new();
    for name in analysis.arrays().keys() {
        if let Ok(inst) = analysis.inst(name) {
            arrays.insert(name.clone(), inst);
        }
    }
    (env, arrays)
}

/// The source span of the first write to `array` in the inlined program
/// — the anchor for double-write diagnostics, whose IR statements carry
/// no tags.
fn array_write_span(block: &Block, array: &str) -> Option<pdc_lang::Span> {
    for stmt in &block.stmts {
        match stmt {
            Stmt::ArrayWrite { array: a, span, .. } if a == array => return Some(*span),
            Stmt::For { body, .. } => {
                if let Some(s) = array_write_span(body, array) {
                    return Some(s);
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if let Some(s) = array_write_span(then_blk, array) {
                    return Some(s);
                }
                if let Some(b) = else_blk {
                    if let Some(s) = array_write_span(b, array) {
                        return Some(s);
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// Walk the inlined source and emit one [`Phase::Analysis`] remark per
/// assignment: who evaluates it and who owns each coercible operand —
/// the *evaluators*/*participants* attributes of §3.2 made visible.
fn emit_analysis_remarks(block: &Block, analysis: &Analysis, sink: &mut RemarkSink) {
    fn owner_desc(o: &EvalOwner) -> String {
        match o {
            EvalOwner::All => "ALL".to_owned(),
            EvalOwner::Expr(e) => e.to_string(),
            EvalOwner::Dynamic => "run-time".to_owned(),
        }
    }
    for stmt in &block.stmts {
        if let Ok(Some(roles)) = analysis.roles(stmt) {
            let remote = roles
                .operands
                .iter()
                .filter(|o| o.owner != roles.eval)
                .count();
            let mut r = if roles.eval == EvalOwner::Dynamic {
                Remark::new(
                    Phase::Analysis,
                    RemarkKind::Missed,
                    "left-hand-side owner is not statically analyzable; \
                     only run-time resolution is possible",
                )
            } else {
                Remark::new(
                    Phase::Analysis,
                    RemarkKind::Applied,
                    format!("evaluator {}", owner_desc(&roles.eval)),
                )
            }
            .with_span(stmt.span())
            .detail("operands", roles.operands.len())
            .detail("coercible", remote);
            for (k, op) in roles.operands.iter().enumerate() {
                r = r.detail(format!("owner{k}"), owner_desc(&op.owner));
            }
            sink.emit(r);
        }
        match stmt {
            Stmt::For { body, .. } => emit_analysis_remarks(body, analysis, sink),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                emit_analysis_remarks(then_blk, analysis, sink);
                if let Some(b) = else_blk {
                    emit_analysis_remarks(b, analysis, sink);
                }
            }
            _ => {}
        }
    }
}

/// Run the static cost model over the final code and append its remarks.
fn predict_compiled(
    spmd: &SpmdProgram,
    analysis: &Analysis,
    const_params: &HashMap<String, i64>,
    remarks: &mut Vec<Remark>,
) -> Prediction {
    let (env, arrays) = static_env(analysis, const_params);
    let prediction = pdc_report::predict(spmd, &env, &arrays);
    remarks.push(
        Remark::new(
            Phase::CostModel,
            RemarkKind::Applied,
            format!(
                "predicted {} message(s), {} payload word(s) over {} channel(s)",
                prediction.total_messages(),
                prediction.total_words(),
                prediction.sends.len()
            ),
        )
        .detail("exact", prediction.exact)
        .detail("balanced", prediction.protocol_consistent()),
    );
    for note in &prediction.notes {
        remarks.push(Remark::new(
            Phase::CostModel,
            RemarkKind::Missed,
            note.clone(),
        ));
    }
    prediction
}

/// Input bindings for an execution.
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    /// Scalar entry parameters.
    pub scalars: Vec<(String, Scalar)>,
    /// Array entry parameters (global matrices, distributed per the
    /// decomposition before the run).
    pub arrays: Vec<(String, IMatrix<Scalar>)>,
}

impl Inputs {
    /// No inputs.
    pub fn new() -> Self {
        Inputs::default()
    }

    /// Bind a scalar parameter.
    pub fn scalar(mut self, name: impl Into<String>, v: Scalar) -> Self {
        self.scalars.push((name.into(), v));
        self
    }

    /// Bind an array parameter.
    pub fn array(mut self, name: impl Into<String>, m: IMatrix<Scalar>) -> Self {
        self.arrays.push((name.into(), m));
        self
    }
}

/// The result of simulating a compiled program.
#[derive(Debug)]
pub struct Execution {
    /// Scheduler/fabric report (`outcome.report.stats.makespan()` is the
    /// simulated time).
    pub outcome: RunOutcome,
    /// The machine, for gathers and white-box inspection.
    pub machine: SpmdMachine,
    /// The static cost prediction carried over from [`Compiled`], so the
    /// run can be checked against it with
    /// [`Execution::verify_predictions`].
    pub prediction: Prediction,
    /// Number of processors the program was compiled for.
    pub n_procs: usize,
}

/// Outcome of checking a static [`Prediction`] against an actual run.
#[derive(Debug, Clone, Default)]
pub struct PredictionReport {
    /// Distinct `(src, dst, tag)` channels compared (union of predicted
    /// and observed).
    pub checked_channels: usize,
    /// Human-readable discrepancies; empty iff the prediction held.
    pub mismatches: Vec<String>,
    /// Whether the model claimed exactness ([`Prediction::exact`]). An
    /// inexact prediction may legitimately mismatch.
    pub statically_exact: bool,
    /// Whether the per-channel word counts were additionally checked
    /// against the event trace's communication matrix (requires a
    /// complete trace).
    pub trace_checked: bool,
}

impl PredictionReport {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl Execution {
    /// Gather a distributed array by name.
    ///
    /// # Errors
    ///
    /// See [`SpmdMachine::gather`].
    pub fn gather(&self, name: &str) -> Result<IMatrix<Scalar>, SpmdError> {
        self.machine.gather(name)
    }

    /// Total messages exchanged (the footnote-3 metric).
    pub fn messages(&self) -> u64 {
        self.outcome.report.stats.network.messages
    }

    /// Simulated execution time in cycles (the Figures 6/7 metric).
    pub fn makespan(&self) -> u64 {
        self.outcome.report.stats.makespan().0
    }

    /// The event trace of the run (empty unless the job enabled tracing
    /// with [`Job::with_trace`]).
    pub fn trace(&self) -> &pdc_machine::Trace {
        &self.outcome.report.trace
    }

    /// The runtime-metrics snapshot of the run. Always present; unless
    /// the job enabled [`Job::with_metrics`] only the always-on flight
    /// recorder has content (`full` is false).
    pub fn metrics(&self) -> &pdc_machine::MetricsSnapshot {
        &self.outcome.report.metrics
    }

    /// Check the compile-time cost prediction against what the run
    /// actually did:
    ///
    /// 1. per-`(src, dst, tag)` message counts vs. the scheduler's
    ///    [`pair_messages`](pdc_machine::RunReport::pair_messages)
    ///    (program-level counts, so this holds under fault injection
    ///    too);
    /// 2. total payload words vs. the fabric counters (fault-free runs
    ///    only — retransmissions inflate the raw counters);
    /// 3. when a complete event trace is present, per-channel messages
    ///    *and* words vs. the trace's communication matrix.
    ///
    /// On a fault-free simulator run of a program the model marked
    /// [`exact`](Prediction::exact), every check must pass.
    pub fn verify_predictions(&self) -> PredictionReport {
        let pred = &self.prediction;
        let mut rep = PredictionReport {
            statically_exact: pred.exact,
            ..PredictionReport::default()
        };
        let observed = &self.outcome.report.pair_messages;
        let mut keys: BTreeSet<(usize, usize, u32)> = pred.sends.keys().copied().collect();
        keys.extend(observed.keys().map(|(s, d, t)| (s.0, d.0, t.0)));
        for k in keys {
            rep.checked_channels += 1;
            let want = pred.sends.get(&k).map_or(0, |c| c.messages);
            let got = observed
                .get(&(ProcId(k.0), ProcId(k.1), Tag(k.2)))
                .copied()
                .unwrap_or(0);
            if want != got {
                rep.mismatches.push(format!(
                    "P{}->P{} tag {}: predicted {} message(s), observed {}",
                    k.0, k.1, k.2, want, got
                ));
            }
        }
        if self.outcome.report.fault.is_none() {
            let want = pred.total_words();
            let got = self.outcome.report.stats.network.words;
            if want != got {
                rep.mismatches.push(format!(
                    "total payload: predicted {want} word(s), observed {got}"
                ));
            }
        }
        let trace = &self.outcome.report.trace;
        if !trace.is_empty() && trace.dropped() == 0 {
            rep.trace_checked = true;
            let analysis = pdc_machine::trace_analysis::analyze(trace, self.n_procs);
            let traced: BTreeMap<(usize, usize, u32), (u64, u64)> = analysis
                .comm
                .iter()
                .map(|e| ((e.src.0, e.dst.0, e.tag.0), (e.messages, e.words)))
                .collect();
            let mut keys: BTreeSet<(usize, usize, u32)> = pred.sends.keys().copied().collect();
            keys.extend(traced.keys().copied());
            for k in keys {
                let want = pred.sends.get(&k).copied().unwrap_or_default();
                let (got_m, got_w) = traced.get(&k).copied().unwrap_or((0, 0));
                if want.messages != got_m || want.words != got_w {
                    rep.mismatches.push(format!(
                        "trace P{}->P{} tag {}: predicted {} message(s)/{} word(s), \
                         traced {got_m}/{got_w}",
                        k.0, k.1, k.2, want.messages, want.words
                    ));
                }
            }
        }
        rep
    }
}

/// Run a compiled program on the backend its [`Job`] selected
/// ([`Backend::Simulated`] unless overridden with
/// [`Job::with_backend`]).
///
/// # Errors
///
/// Lowering and machine errors as [`SpmdError`].
pub fn execute(
    compiled: &Compiled,
    inputs: &Inputs,
    cost: CostModel,
) -> Result<Execution, SpmdError> {
    execute_on(compiled, inputs, cost, compiled.backend)
}

/// Like [`execute`] but with an explicit backend, for differential tests
/// that run one compilation on both backends.
///
/// # Errors
///
/// Lowering and machine errors as [`SpmdError`].
pub fn execute_on(
    compiled: &Compiled,
    inputs: &Inputs,
    cost: CostModel,
    backend: Backend,
) -> Result<Execution, SpmdError> {
    // The job-level receive timeout applies whenever this compilation
    // runs on the threaded backend, however the backend was chosen.
    let backend = match (backend, compiled.recv_timeout) {
        (Backend::Threaded { .. }, Some(recv_timeout)) => Backend::Threaded { recv_timeout },
        (b, _) => b,
    };
    let mut machine = SpmdMachine::new(&compiled.spmd, cost)?.with_backend(backend);
    match (&compiled.fault_plan, compiled.retransmit) {
        // A retransmit override wins over the fault plan's bundled
        // config, and alone it forces the reliable protocol on.
        (Some((plan, cfg)), rel) => {
            machine = machine.with_faults_cfg(plan.clone(), rel.unwrap_or(*cfg));
        }
        (None, Some(cfg)) => machine = machine.with_reliable_delivery(cfg),
        (None, None) => {}
    }
    if let Some(ckpt) = compiled.checkpoints {
        machine = machine.with_checkpoints(ckpt);
    }
    if let Some(cap) = compiled.trace_cap {
        machine = machine.with_trace(cap);
    }
    if compiled.metrics {
        machine = machine.with_metrics();
    }
    for (name, v) in &inputs.scalars {
        machine.preset_var(name, *v);
    }
    for (name, data) in &inputs.arrays {
        let dist = compiled
            .analysis
            .array(name)
            .map_err(|e| SpmdError::Gather {
                message: e.to_string(),
            })?
            .dist
            .clone();
        machine.preload_array(name, dist, data);
    }
    let outcome = machine.run()?;
    Ok(Execution {
        outcome,
        machine,
        prediction: compiled.prediction.clone(),
        n_procs: compiled.spmd.n_procs(),
    })
}

/// Run the *sequential* program on the same inputs with the reference
/// interpreter — the semantics every compiled execution must match.
///
/// # Errors
///
/// Any interpreter error, as [`CoreError::Lang`].
pub fn run_sequential(program: &Program, entry: &str, inputs: &Inputs) -> Result<Value, CoreError> {
    let proc = program.proc(entry).ok_or_else(|| CoreError::NoEntry {
        name: entry.to_owned(),
    })?;
    let mut args = Vec::new();
    for p in &proc.params {
        if let Some((_, v)) = inputs.scalars.iter().find(|(n, _)| n == p) {
            args.push(scalar_to_value(*v));
        } else if let Some((_, m)) = inputs.arrays.iter().find(|(n, _)| n == p) {
            args.push(matrix_to_value(m));
        } else {
            return Err(CoreError::Unsupported {
                message: format!("no input bound for parameter `{p}`"),
                span: proc.span,
            });
        }
    }
    let mut interp = Interpreter::new(program);
    interp.run(entry, &args).map_err(CoreError::Lang)
}

/// Convert a machine scalar to an interpreter value.
pub fn scalar_to_value(s: Scalar) -> Value {
    match s {
        Scalar::Int(v) => Value::Int(v),
        Scalar::Float(v) => Value::Float(v),
        Scalar::Bool(v) => Value::Bool(v),
    }
}

/// Convert a scalar matrix to an interpreter matrix value.
pub fn matrix_to_value(m: &IMatrix<Scalar>) -> Value {
    let out = Value::new_matrix(m.rows(), m.cols());
    if let Value::Matrix(h) = &out {
        let mut h = h.borrow_mut();
        for i in 1..=m.rows() as i64 {
            for j in 1..=m.cols() as i64 {
                if let Some(v) = m.peek(i, j) {
                    h.write(i, j, scalar_to_value(*v)).expect("fresh matrix");
                }
            }
        }
    }
    out
}

/// Compare a gathered matrix against a sequential matrix result,
/// returning the first mismatch as `(i, j, gathered, sequential)`.
pub fn first_mismatch(
    gathered: &IMatrix<Scalar>,
    sequential: &Value,
) -> Option<(i64, i64, Option<Scalar>, Option<Value>)> {
    let Value::Matrix(h) = sequential else {
        return Some((0, 0, None, Some(sequential.clone())));
    };
    let h = h.borrow();
    if (h.rows(), h.cols()) != (gathered.rows(), gathered.cols()) {
        return Some((0, 0, None, None));
    }
    for i in 1..=gathered.rows() as i64 {
        for j in 1..=gathered.cols() as i64 {
            let g = gathered.peek(i, j).copied();
            let s = h.peek(i, j).cloned();
            let same = match (&g, &s) {
                (None, None) => true,
                (Some(gv), Some(sv)) => &scalar_to_value(*gv) == sv,
                _ => false,
            };
            if !same {
                return Some((i, j, g, s));
            }
        }
    }
    None
}

/// Build a deterministic input matrix: `cell(i,j) = (i*31 + j*17) mod 97`.
/// Used by tests, examples, and benches as the standard workload.
pub fn standard_input(rows: usize, cols: usize) -> IMatrix<Scalar> {
    let mut m = IMatrix::new(rows, cols);
    for i in 1..=rows as i64 {
        for j in 1..=cols as i64 {
            m.write(i, j, Scalar::Int((i * 31 + j * 17) % 97))
                .expect("fresh matrix");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn runtime_resolution_gs_matches_sequential() {
        let program = programs::gauss_seidel();
        let n = 8usize;
        let s = 4usize;
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let compiled = compile(&job, Strategy::Runtime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", standard_input(n, n));
        let exec = execute(&compiled, &inputs, CostModel::zero()).unwrap();
        let gathered = exec.gather("New").unwrap();
        let seq = run_sequential(&program, "gs_iteration", &inputs).unwrap();
        assert_eq!(first_mismatch(&gathered, &seq), None);
        // Interior coercion traffic exists.
        assert!(exec.messages() > 0);
        assert_eq!(exec.outcome.report.undelivered, 0);
    }

    #[test]
    fn runtime_resolution_message_count_formula() {
        // Two remote operands per interior point: 2 * (n-2)^2 messages,
        // minus the points whose neighbour columns coincide... with
        // column-cyclic on s >= 2 every interior point's New[i,j-1] and
        // Old[i,j+1] are remote, giving exactly 2 (n-2)^2 messages
        // (boundary-copy statements are always local).
        let program = programs::gauss_seidel();
        let n = 10usize;
        for s in [2usize, 5] {
            let job = Job::new(
                &program,
                "gs_iteration",
                programs::wavefront_decomposition(s),
            )
            .with_const("n", n as i64);
            let compiled = compile(&job, Strategy::Runtime).unwrap();
            let inputs = Inputs::new()
                .scalar("n", Scalar::Int(n as i64))
                .array("Old", standard_input(n, n));
            let exec = execute(&compiled, &inputs, CostModel::zero()).unwrap();
            assert_eq!(exec.messages(), 2 * (n as u64 - 2).pow(2), "s = {s}");
        }
    }

    #[test]
    fn single_processor_needs_no_messages() {
        let program = programs::gauss_seidel();
        let n = 6usize;
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(1),
        )
        .with_const("n", n as i64);
        let compiled = compile(&job, Strategy::Runtime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", standard_input(n, n));
        let exec = execute(&compiled, &inputs, CostModel::ipsc2()).unwrap();
        assert_eq!(exec.messages(), 0);
        let gathered = exec.gather("New").unwrap();
        let seq = run_sequential(&program, "gs_iteration", &inputs).unwrap();
        assert_eq!(first_mismatch(&gathered, &seq), None);
    }

    #[test]
    fn figure4_runtime_distributes_scalars() {
        let program = programs::figure4();
        let job = Job::new(&program, "main", programs::figure4_decomposition(4));
        let compiled = compile(&job, Strategy::Runtime).unwrap();
        let exec = execute(&compiled, &Inputs::new(), CostModel::ipsc2()).unwrap();
        // a: P1 -> P3 and b: P2 -> P3 — exactly two messages.
        assert_eq!(exec.messages(), 2);
        assert_eq!(exec.machine.vm(3).var("c"), Some(Scalar::Int(12)));
        // Non-evaluators never define c.
        assert_eq!(exec.machine.vm(0).var("c"), None);
    }
}

/// Build a [`Decomposition`] from the program's own `map { … }` header —
/// the italicized annotations of the paper's Figure 1, carried in source
/// form — for a machine of `nprocs` processors.
///
/// # Errors
///
/// [`CoreError::Unsupported`] if a named processor or 2-D grid does not
/// fit the machine.
pub fn decomposition_from_source(
    program: &Program,
    nprocs: usize,
) -> Result<Decomposition, CoreError> {
    use pdc_lang::ast::DistSpec;
    use pdc_mapping::{Dist, ScalarMap};
    let mut d = Decomposition::new(nprocs);
    for decl in &program.map_decls {
        let bad = |message: String| CoreError::Unsupported {
            message,
            span: decl.span,
        };
        match decl.spec {
            DistSpec::All => {
                // `all` works for scalars and arrays alike; record both.
                d = d
                    .scalar(decl.name.clone(), ScalarMap::All)
                    .array(decl.name.clone(), Dist::Replicated);
            }
            DistSpec::Proc(p) => {
                if p >= nprocs {
                    return Err(bad(format!(
                        "`{}` is mapped to P{p}, but the machine has {nprocs} processors",
                        decl.name
                    )));
                }
                d = d
                    .scalar(decl.name.clone(), ScalarMap::On(p))
                    .array(decl.name.clone(), Dist::OnProcessor(p));
            }
            DistSpec::ColumnCyclic => d = d.array(decl.name.clone(), Dist::ColumnCyclic),
            DistSpec::RowCyclic => d = d.array(decl.name.clone(), Dist::RowCyclic),
            DistSpec::ColumnBlock => d = d.array(decl.name.clone(), Dist::ColumnBlock),
            DistSpec::RowBlock => d = d.array(decl.name.clone(), Dist::RowBlock),
            DistSpec::ColumnBlockCyclic(b) => {
                d = d.array(decl.name.clone(), Dist::ColumnBlockCyclic { block: b })
            }
            DistSpec::RowBlockCyclic(b) => {
                d = d.array(decl.name.clone(), Dist::RowBlockCyclic { block: b })
            }
            DistSpec::Block2d(pr, pc) => {
                if pr * pc != nprocs {
                    return Err(bad(format!(
                        "`{}` uses a {pr}x{pc} grid, but the machine has {nprocs} processors",
                        decl.name
                    )));
                }
                d = d.array(
                    decl.name.clone(),
                    Dist::Block2d {
                        prows: pr,
                        pcols: pc,
                    },
                )
            }
        }
    }
    Ok(d)
}

#[cfg(test)]
mod map_decl_tests {
    use super::*;
    use pdc_mapping::{Dist, ScalarMap};

    #[test]
    fn source_map_block_builds_decomposition() {
        let program = pdc_lang::parse(
            "map {
                New : column_cyclic;
                Old : column_block_cyclic(2);
                c : all;
                x : proc(1);
                G : block2d(2, 2);
             }
             procedure main() { return 0; }",
        )
        .unwrap();
        let d = decomposition_from_source(&program, 4).unwrap();
        assert_eq!(d.array_dist("New"), Some(Dist::ColumnCyclic));
        assert_eq!(
            d.array_dist("Old"),
            Some(Dist::ColumnBlockCyclic { block: 2 })
        );
        assert_eq!(d.scalar_map("c"), ScalarMap::All);
        assert_eq!(d.scalar_map("x"), ScalarMap::On(1));
        assert_eq!(
            d.array_dist("G"),
            Some(Dist::Block2d { prows: 2, pcols: 2 })
        );
    }

    #[test]
    fn out_of_range_processor_rejected() {
        let program =
            pdc_lang::parse("map { x : proc(9); } procedure main() { return 0; }").unwrap();
        let err = decomposition_from_source(&program, 4).unwrap_err();
        assert!(err.to_string().contains("P9"));
    }

    #[test]
    fn wrong_grid_rejected() {
        let program =
            pdc_lang::parse("map { G : block2d(3, 3); } procedure main() { return 0; }").unwrap();
        let err = decomposition_from_source(&program, 4).unwrap_err();
        assert!(err.to_string().contains("3x3 grid"));
    }

    #[test]
    fn source_mapped_wavefront_compiles_and_runs() {
        // The whole pipeline driven from source-level mappings alone.
        let src = format!(
            "map {{ New : column_cyclic; Old : column_cyclic; }}\n{}",
            crate::programs::GAUSS_SEIDEL
        );
        let program = pdc_lang::parse(&src).unwrap();
        let n = 8usize;
        let decomp = decomposition_from_source(&program, 2).unwrap();
        let job = Job::new(&program, "gs_iteration", decomp).with_const("n", n as i64);
        let compiled = compile(&job, Strategy::CompileTime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", standard_input(n, n));
        let exec = execute(&compiled, &inputs, CostModel::ipsc2()).unwrap();
        let gathered = exec.gather("New").unwrap();
        let seq = run_sequential(&program, "gs_iteration", &inputs).unwrap();
        assert_eq!(first_mismatch(&gathered, &seq), None);
    }
}
