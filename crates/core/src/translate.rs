//! Bridges between the source AST, the mapping algebra, and the target IR:
//! affine subscript extraction (§3.2's "subscript analysis"), operand
//! collection for the coerce machinery, and expression translation.

use crate::CoreError;
use pdc_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use pdc_mapping::{Affine, LocalIndex, OwnerExpr};
use pdc_spmd::ir::{SBinOp, SExpr, SUnOp};

/// Map a source binary operator to its target counterpart.
pub fn binop(op: BinOp) -> SBinOp {
    match op {
        BinOp::Add => SBinOp::Add,
        BinOp::Sub => SBinOp::Sub,
        BinOp::Mul => SBinOp::Mul,
        BinOp::Div => SBinOp::Div,
        BinOp::FloorDiv => SBinOp::FloorDiv,
        BinOp::Mod => SBinOp::Mod,
        BinOp::Eq => SBinOp::Eq,
        BinOp::Ne => SBinOp::Ne,
        BinOp::Lt => SBinOp::Lt,
        BinOp::Le => SBinOp::Le,
        BinOp::Gt => SBinOp::Gt,
        BinOp::Ge => SBinOp::Ge,
        BinOp::And => SBinOp::And,
        BinOp::Or => SBinOp::Or,
        BinOp::Min => SBinOp::Min,
        BinOp::Max => SBinOp::Max,
    }
}

/// Map a source unary operator to its target counterpart.
pub fn unop(op: UnOp) -> SUnOp {
    match op {
        UnOp::Neg => SUnOp::Neg,
        UnOp::Not => SUnOp::Not,
    }
}

/// Extract the affine form of a subscript expression, if it has one
/// (variables may be loop variables or run-time scalars; constants fold).
/// `None` means the subscript is not affine and the statement must fall
/// back to run-time resolution.
pub fn extract_affine(e: &Expr) -> Option<Affine> {
    match &e.kind {
        ExprKind::Int(v) => Some(Affine::constant(*v)),
        ExprKind::Var(v) => Some(Affine::var(v.clone())),
        ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } => extract_affine(operand).map(|a| a.scale(-1)),
        ExprKind::Binary { op, lhs, rhs } => {
            let l = extract_affine(lhs);
            let r = extract_affine(rhs);
            match op {
                BinOp::Add => Some(l?.add(&r?)),
                BinOp::Sub => Some(l?.sub(&r?)),
                BinOp::Mul => {
                    let (a, b) = (l?, r?);
                    if let Some(k) = a.as_constant() {
                        Some(b.scale(k))
                    } else {
                        b.as_constant().map(|k| a.scale(k))
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Render an affine expression as target arithmetic.
pub fn affine_to_sexpr(a: &Affine) -> SExpr {
    let mut acc: Option<SExpr> = None;
    for v in a.vars().map(str::to_owned).collect::<Vec<_>>() {
        let c = a.coeff(&v);
        let term = if c == 1 {
            SExpr::var(v)
        } else if c == -1 {
            SExpr::Un(SUnOp::Neg, Box::new(SExpr::var(v)))
        } else {
            SExpr::int(c).mul(SExpr::var(v))
        };
        acc = Some(match acc {
            None => term,
            Some(e) => e.add(term),
        });
    }
    let c = a.constant_part();
    match acc {
        None => SExpr::int(c),
        Some(e) if c == 0 => e,
        Some(e) if c > 0 => e.add(SExpr::int(c)),
        Some(e) => e.sub(SExpr::int(-c)),
    }
}

/// Render a symbolic owner as target arithmetic producing the owner's
/// processor id. Replicated owners become `mynode()` (a replicated datum
/// is always locally available, mirroring the VM's `OwnerOf`).
pub fn owner_to_sexpr(o: &OwnerExpr) -> SExpr {
    match o {
        OwnerExpr::Const(p) => SExpr::int(*p as i64),
        OwnerExpr::All => SExpr::my_node(),
        OwnerExpr::CyclicMod { expr, s } => affine_to_sexpr(expr).imod(SExpr::int(*s as i64)),
        OwnerExpr::BlockDiv {
            expr,
            block,
            nprocs,
        } => affine_to_sexpr(expr)
            .idiv(SExpr::int(*block as i64))
            .min(SExpr::int(*nprocs as i64 - 1)),
        OwnerExpr::BlockCyclicMod { expr, block, s } => affine_to_sexpr(expr)
            .idiv(SExpr::int(*block as i64))
            .imod(SExpr::int(*s as i64)),
        OwnerExpr::Grid { row, col, pcols } => owner_to_sexpr(row)
            .mul(SExpr::int(*pcols as i64))
            .add(owner_to_sexpr(col)),
    }
}

/// Render a Local-function component as target arithmetic.
pub fn local_index_to_sexpr(li: &LocalIndex) -> SExpr {
    use pdc_mapping::LocalTerm;
    let mut e = affine_to_sexpr(&li.base);
    for t in &li.terms {
        let term = match t {
            LocalTerm::Div { num, den, scale } => {
                let d = affine_to_sexpr(num).idiv(SExpr::int(*den));
                if *scale == 1 {
                    d
                } else {
                    SExpr::int(*scale).mul(d)
                }
            }
            LocalTerm::Mod { num, den, scale } => {
                let m = affine_to_sexpr(num).imod(SExpr::int(*den));
                if *scale == 1 {
                    m
                } else {
                    SExpr::int(*scale).mul(m)
                }
            }
        };
        e = e.add(term);
    }
    e
}

/// An operand of a statement's right-hand side that may need coercion:
/// either an I-structure read or a read of a processor-mapped scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `B[i…]`.
    ArrayRead {
        /// Array name.
        array: String,
        /// Source subscripts.
        indices: Vec<Expr>,
    },
    /// A scalar variable with a `One(p)` mapping.
    ScalarVar {
        /// Variable name.
        name: String,
    },
}

/// Collect the coercible operands of an expression in a fixed left-to-
/// right walk order. `is_mapped_scalar` decides which plain variables
/// count as operands (those mapped to a single processor).
pub fn collect_operands(e: &Expr, is_mapped_scalar: &dyn Fn(&str) -> bool) -> Vec<Operand> {
    let mut out = Vec::new();
    walk(e, is_mapped_scalar, &mut out);
    out
}

fn walk(e: &Expr, is_mapped: &dyn Fn(&str) -> bool, out: &mut Vec<Operand>) {
    match &e.kind {
        ExprKind::ArrayRead { array, indices } => {
            out.push(Operand::ArrayRead {
                array: array.clone(),
                indices: indices.clone(),
            });
        }
        ExprKind::Var(v) => {
            if is_mapped(v) {
                out.push(Operand::ScalarVar { name: v.clone() });
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk(lhs, is_mapped, out);
            walk(rhs, is_mapped, out);
        }
        ExprKind::Unary { operand, .. } => walk(operand, is_mapped, out),
        ExprKind::Alloc { dims } => {
            for d in dims {
                walk(d, is_mapped, out);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk(a, is_mapped, out);
            }
        }
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) => {}
    }
}

/// Translate an expression to target IR, replacing each operand (in the
/// same walk order as [`collect_operands`]) with the provided expression
/// (usually a coercion temporary).
///
/// # Errors
///
/// [`CoreError::Unsupported`] for calls or allocations in value position.
pub fn translate_with_operands(
    e: &Expr,
    is_mapped_scalar: &dyn Fn(&str) -> bool,
    replacements: &mut std::vec::IntoIter<SExpr>,
) -> Result<SExpr, CoreError> {
    match &e.kind {
        ExprKind::Int(v) => Ok(SExpr::Int(*v)),
        ExprKind::Float(v) => Ok(SExpr::Float(*v)),
        ExprKind::Bool(v) => Ok(SExpr::Bool(*v)),
        ExprKind::Var(v) => {
            if is_mapped_scalar(v) {
                replacements.next().ok_or_else(|| CoreError::Unsupported {
                    message: "operand replacement underflow".into(),
                    span: e.span,
                })
            } else {
                Ok(SExpr::var(v.clone()))
            }
        }
        ExprKind::ArrayRead { .. } => replacements.next().ok_or_else(|| CoreError::Unsupported {
            message: "operand replacement underflow".into(),
            span: e.span,
        }),
        ExprKind::Binary { op, lhs, rhs } => Ok(SExpr::Bin(
            binop(*op),
            Box::new(translate_with_operands(
                lhs,
                is_mapped_scalar,
                replacements,
            )?),
            Box::new(translate_with_operands(
                rhs,
                is_mapped_scalar,
                replacements,
            )?),
        )),
        ExprKind::Unary { op, operand } => Ok(SExpr::Un(
            unop(*op),
            Box::new(translate_with_operands(
                operand,
                is_mapped_scalar,
                replacements,
            )?),
        )),
        ExprKind::Call { name, .. } => Err(CoreError::Unsupported {
            message: format!("call to `{name}` survived inlining"),
            span: e.span,
        }),
        ExprKind::Alloc { .. } => Err(CoreError::Unsupported {
            message: "array allocation in value position".into(),
            span: e.span,
        }),
    }
}

/// Translate a *simple* expression: scalars, loop variables, literals,
/// arithmetic — no array reads, no mapped scalars, no calls. Used for
/// loop bounds and subscript arithmetic, which every participant
/// evaluates locally.
///
/// # Errors
///
/// [`CoreError::Unsupported`] if the expression reads arrays or calls.
pub fn translate_simple(e: &Expr) -> Result<SExpr, CoreError> {
    translate_with_operands(e, &|_| false, &mut Vec::new().into_iter()).map_err(|err| match err {
        CoreError::Unsupported { span, .. } => CoreError::Unsupported {
            message: "expression must be computable by every participant \
                          (no array reads here)"
                .into(),
            span,
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_lang::parse;
    use pdc_spmd::ir::expr_to_string;

    fn first_expr(src: &str) -> Expr {
        // Parse `procedure f(...) { return <expr>; }` and dig it out.
        let p = parse(src).unwrap();
        match &p.procs[0].body.stmts[0] {
            pdc_lang::ast::Stmt::Return { value, .. } => value.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn affine_extraction_handles_paper_subscripts() {
        let e = first_expr("procedure f(i, j) { return j + 1; }");
        let a = extract_affine(&e).unwrap();
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.constant_part(), 1);

        let e = first_expr("procedure f(i, j) { return 2 * i - j; }");
        let a = extract_affine(&e).unwrap();
        assert_eq!(a.coeff("i"), 2);
        assert_eq!(a.coeff("j"), -1);
    }

    #[test]
    fn non_affine_subscripts_are_rejected() {
        let e = first_expr("procedure f(i, j) { return i * j; }");
        assert!(extract_affine(&e).is_none());
        let e = first_expr("procedure f(i, j) { return i mod 2; }");
        assert!(extract_affine(&e).is_none());
    }

    #[test]
    fn affine_to_sexpr_round_trip_rendering() {
        let a = Affine::var("j").offset(1);
        assert_eq!(expr_to_string(&affine_to_sexpr(&a)), "(j + 1)");
        let z = Affine::constant(-3);
        assert_eq!(expr_to_string(&affine_to_sexpr(&z)), "-3");
    }

    #[test]
    fn owner_to_sexpr_renders_cyclic() {
        let o = OwnerExpr::CyclicMod {
            expr: Affine::var("j").offset(-1),
            s: 8,
        };
        assert_eq!(expr_to_string(&owner_to_sexpr(&o)), "((j - 1) mod 8)");
    }

    #[test]
    fn collect_and_replace_operands() {
        let e = first_expr("procedure f(i, j, A, c) { return A[i, j] + c * A[i + 1, j]; }");
        let is_mapped = |v: &str| v == "c";
        let ops = collect_operands(&e, &is_mapped);
        assert_eq!(ops.len(), 3); // A[i,j], c, A[i+1,j]
        assert!(matches!(&ops[0], Operand::ArrayRead { array, .. } if array == "A"));
        assert!(matches!(&ops[1], Operand::ScalarVar { name } if name == "c"));
        let reps = vec![SExpr::var("t0"), SExpr::var("t1"), SExpr::var("t2")];
        let out = translate_with_operands(&e, &is_mapped, &mut reps.into_iter()).unwrap();
        assert_eq!(expr_to_string(&out), "(t0 + (t1 * t2))");
    }

    #[test]
    fn translate_simple_rejects_array_reads() {
        let e = first_expr("procedure f(A, i) { return A[i]; }");
        assert!(translate_simple(&e).is_err());
        let e = first_expr("procedure f(i) { return i * 2 + 1; }");
        assert_eq!(
            expr_to_string(&translate_simple(&e).unwrap()),
            "((i * 2) + 1)"
        );
    }
}
