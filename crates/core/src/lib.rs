//! **Process decomposition through locality of reference** — the paper's
//! primary contribution (Rogers & Pingali, Cornell TR 88-935 / PLDI 1989).
//!
//! Given a sequential Id Nouveau program (`pdc-lang`) and a domain
//! decomposition (`pdc-mapping`), this crate derives per-processor SPMD
//! message-passing programs (`pdc-spmd`) under the *owner-computes* rule:
//!
//! 1. the owner of a variable or array element computes its value;
//! 2. the owner communicates the value to any processor that requires it;
//! 3. every statement is examined by every processor to determine its role
//!    (run-time resolution), or the compiler determines the roles
//!    statically and specializes the code per processor (compile-time
//!    resolution).
//!
//! The two code generators are:
//!
//! * [`runtime_res::compile`] — §3.1's *run-time resolution*: one generic
//!   program for all processors; every statement is wrapped in ownership
//!   guards and every remote operand moves through an element-granularity
//!   `coerce`.
//! * [`compile_time::compile`] — §3.2's *compile-time resolution*: the
//!   mapping information is propagated over the AST as *evaluators* and
//!   *participants* sets ([`analysis`]), the membership of each processor
//!   is decided three-valuedly, loop bounds are restricted by solving the
//!   mapping equations, and statically-false code is deleted.
//!
//! Supporting machinery: procedure inlining with per-call-site mapping
//! instantiation ([`inline`], implementing the §5.1 *mapping polymorphism*
//! extension), canonical paper programs ([`programs`]), the handwritten
//! Figure 3 baseline ([`handwritten`]), and an end-to-end driver
//! ([`driver`]) that compiles, runs on the simulated iPSC/2, gathers the
//! distributed result, and checks it against the sequential interpreter.

pub mod analysis;
pub mod compile_time;
pub mod driver;
pub mod handwritten;
pub mod inline;
pub mod programs;
pub mod runtime_res;
pub mod translate;

mod error;

pub use error::CoreError;
pub use pdc_machine::Backend;
