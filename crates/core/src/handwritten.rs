//! The handwritten message-passing Gauss-Seidel of Figure 3 — the target
//! the compiler output is measured against.
//!
//! The matrix is wrapped by column around a ring of `S` processors. Per
//! owned column, in ascending order:
//!
//! * the *old* column is sent **left** in one vectorized message (column
//!   `c` feeds the evaluator of column `c-1`);
//! * boundary columns (1 and `n`) are copied locally from `Old`;
//! * interior columns receive the old column `c+1` from the **right**,
//!   then compute in blocks of `blksize` rows: receive a block of new
//!   column `c-1` values from the left, compute the matching block of
//!   column `c`, and send it right — pipelining computation with
//!   communication exactly as §4 describes;
//! * the owner of boundary column 1 feeds the pipeline by sending its
//!   copied column right in the same block sizes.
//!
//! The block size trades message count against wavefront parallelism; the
//! paper reports 2,142 messages for the handwritten code on a 128×128
//! grid (footnote 3), which this builder reproduces (see EXPERIMENTS.md).

use pdc_mapping::Dist;
use pdc_spmd::ir::{SExpr, SStmt, SpmdProgram};

/// Tag for the vectorized old-column stream.
const TAG_OLD: u32 = 1_000_001;
/// Tag for the blocked new-value stream.
const TAG_NEW: u32 = 1_000_002;

/// Build the handwritten program for `nprocs` processors with the given
/// block size. The grid size `n` is read from the preset variable `n` at
/// run time; `Old` must be preloaded column-cyclically and the result is
/// written to the distributed array `New`.
///
/// # Panics
///
/// Panics if `nprocs == 0` or `blksize == 0`.
pub fn gauss_seidel(nprocs: usize, blksize: usize) -> SpmdProgram {
    assert!(nprocs > 0, "need at least one processor");
    assert!(blksize > 0, "block size must be positive");
    if nprocs == 1 {
        return SpmdProgram::new(vec![single_processor_body()]);
    }
    let bodies = (0..nprocs)
        .map(|p| processor_body(p, nprocs, blksize))
        .collect();
    SpmdProgram::new(bodies)
}

/// Local read `A[i, local(c)]` of a column-cyclic array.
fn col_read(array: &str, i: SExpr, local_col: SExpr) -> SExpr {
    SExpr::ARead {
        array: array.into(),
        idx: vec![i, local_col],
    }
}

/// Local write `A[i, local(c)] = v`.
fn col_write(array: &str, i: SExpr, local_col: SExpr, value: SExpr) -> SStmt {
    SStmt::AWrite {
        array: array.into(),
        idx: vec![i, local_col],
        value,
    }
}

fn n() -> SExpr {
    SExpr::var("n")
}

/// One processor needs no messages: plain sequential sweep over its local
/// (complete) matrix.
fn single_processor_body() -> Vec<SStmt> {
    let mut body = vec![SStmt::AllocDist {
        array: "New".into(),
        rows: n(),
        cols: n(),
        dist: Dist::ColumnCyclic,
    }];
    // Boundary copies (columns 1 and n over all rows; rows 1 and n over
    // interior columns).
    body.push(SStmt::For {
        var: "i".into(),
        lo: SExpr::int(1),
        hi: n(),
        step: SExpr::int(1),
        body: vec![
            col_write(
                "New",
                SExpr::var("i"),
                SExpr::int(1),
                col_read("Old", SExpr::var("i"), SExpr::int(1)),
            ),
            col_write(
                "New",
                SExpr::var("i"),
                n(),
                col_read("Old", SExpr::var("i"), n()),
            ),
        ],
    });
    body.push(SStmt::For {
        var: "j".into(),
        lo: SExpr::int(2),
        hi: n().sub(SExpr::int(1)),
        step: SExpr::int(1),
        body: vec![
            col_write(
                "New",
                SExpr::int(1),
                SExpr::var("j"),
                col_read("Old", SExpr::int(1), SExpr::var("j")),
            ),
            col_write(
                "New",
                n(),
                SExpr::var("j"),
                col_read("Old", n(), SExpr::var("j")),
            ),
        ],
    });
    body.push(SStmt::For {
        var: "j".into(),
        lo: SExpr::int(2),
        hi: n().sub(SExpr::int(1)),
        step: SExpr::int(1),
        body: vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(2),
            hi: n().sub(SExpr::int(1)),
            step: SExpr::int(1),
            body: vec![col_write(
                "New",
                SExpr::var("i"),
                SExpr::var("j"),
                col_read("New", SExpr::var("i").sub(SExpr::int(1)), SExpr::var("j"))
                    .add(col_read(
                        "New",
                        SExpr::var("i"),
                        SExpr::var("j").sub(SExpr::int(1)),
                    ))
                    .add(col_read(
                        "Old",
                        SExpr::var("i").add(SExpr::int(1)),
                        SExpr::var("j"),
                    ))
                    .add(col_read(
                        "Old",
                        SExpr::var("i"),
                        SExpr::var("j").add(SExpr::int(1)),
                    ))
                    .idiv(SExpr::int(4)),
            )],
        }],
    });
    body
}

/// The Figure 3 body for (non-degenerate) processor `p` of `s`.
fn processor_body(p: usize, s: usize, blksize: usize) -> Vec<SStmt> {
    let left = (p + s - 1) % s;
    let right = (p + 1) % s;
    let blk = blksize as i64;
    let c = || SExpr::var("c");
    let i = || SExpr::var("i");
    // local column index of global column c: (c-1) div S + 1.
    let lc = || {
        c().sub(SExpr::int(1))
            .idiv(SExpr::int(s as i64))
            .add(SExpr::int(1))
    };

    let mut body = vec![
        SStmt::Comment(format!("handwritten wavefront, processor {p} of {s}")),
        SStmt::AllocDist {
            array: "New".into(),
            rows: n(),
            cols: n(),
            dist: Dist::ColumnCyclic,
        },
        SStmt::AllocBuf {
            buf: "oldcol".into(),
            len: n(),
        },
        SStmt::AllocBuf {
            buf: "rnew".into(),
            len: SExpr::int(blk),
        },
        SStmt::AllocBuf {
            buf: "snew".into(),
            len: SExpr::int(blk),
        },
    ];

    // Per owned column, ascending: c = p+1, p+1+S, …
    let mut group: Vec<SStmt> = Vec::new();

    // -- send the old column left (it feeds the evaluator of column c-1,
    //    which exists and is interior when c >= 3).
    group.push(SStmt::If {
        cond: c().ge(SExpr::int(3)),
        then: vec![
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: n(),
                step: SExpr::int(1),
                body: vec![SStmt::BufWrite {
                    buf: "oldcol".into(),
                    idx: i().sub(SExpr::int(1)),
                    value: col_read("Old", i(), lc()),
                }],
            },
            SStmt::SendBuf {
                to: SExpr::int(left as i64),
                tag: TAG_OLD,
                buf: "oldcol".into(),
                lo: SExpr::int(0),
                hi: n().sub(SExpr::int(1)),
            },
        ],
        els: vec![],
    });

    // -- boundary columns are copied from Old (all rows).
    group.push(SStmt::If {
        cond: c().eq(SExpr::int(1)).or(c().eq(n())),
        then: vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: n(),
            step: SExpr::int(1),
            body: vec![col_write("New", i(), lc(), col_read("Old", i(), lc()))],
        }],
        els: vec![],
    });

    // -- the owner of column 1 feeds the pipeline: send its (copied)
    //    column right in blocks, matching the interior block protocol.
    group.push(SStmt::If {
        cond: c().eq(SExpr::int(1)).and(n().ge(SExpr::int(4))),
        then: vec![block_loop_send_only(blk, right)],
        els: vec![],
    });

    // -- interior columns: row copies, old column from the right, block
    //    pipeline.
    let interior = c().ge(SExpr::int(2)).and(c().le(n().sub(SExpr::int(1))));
    let mut interior_code: Vec<SStmt> = vec![
        col_write(
            "New",
            SExpr::int(1),
            lc(),
            col_read("Old", SExpr::int(1), lc()),
        ),
        col_write("New", n(), lc(), col_read("Old", n(), lc())),
        // Receive the old column c+1 from the right.
        SStmt::RecvBuf {
            from: SExpr::int(right as i64),
            tag: TAG_OLD,
            buf: "oldcol".into(),
            lo: SExpr::int(0),
            hi: n().sub(SExpr::int(1)),
        },
    ];
    interior_code.push(block_loop_compute(blk, p, s, left, right));
    group.push(SStmt::If {
        cond: interior,
        then: interior_code,
        els: vec![],
    });

    body.push(SStmt::For {
        var: "c".into(),
        lo: SExpr::int(p as i64 + 1),
        hi: n(),
        step: SExpr::int(s as i64),
        body: group,
    });
    body
}

/// Block bounds shared by sender and receiver:
/// `lo_i = 2 + k·blk`, `hi_i = min(lo_i + blk - 1, n-1)`.
fn block_bounds(blk: i64) -> (SStmt, SStmt) {
    (
        SStmt::Let {
            var: "lo_i".into(),
            value: SExpr::int(2).add(SExpr::var("k").mul(SExpr::int(blk))),
        },
        SStmt::Let {
            var: "hi_i".into(),
            value: SExpr::var("lo_i")
                .add(SExpr::int(blk - 1))
                .min(SExpr::var("n").sub(SExpr::int(1))),
        },
    )
}

/// `for k = 0 to (n-3) div blk` — the block loop header bounds.
fn block_count_hi(blk: i64) -> SExpr {
    SExpr::var("n").sub(SExpr::int(3)).idiv(SExpr::int(blk))
}

/// The pipeline-feeding loop of the column-1 owner: read already-copied
/// boundary values and send them right in blocks.
fn block_loop_send_only(blk: i64, right: usize) -> SStmt {
    let (lo_stmt, hi_stmt) = block_bounds(blk);
    let lc1 = SExpr::int(1); // column 1 is always local column 1
    SStmt::For {
        var: "k".into(),
        lo: SExpr::int(0),
        hi: block_count_hi(blk),
        step: SExpr::int(1),
        body: vec![
            lo_stmt,
            hi_stmt,
            SStmt::For {
                var: "i".into(),
                lo: SExpr::var("lo_i"),
                hi: SExpr::var("hi_i"),
                step: SExpr::int(1),
                body: vec![SStmt::BufWrite {
                    buf: "snew".into(),
                    idx: SExpr::var("i").sub(SExpr::var("lo_i")),
                    value: col_read("New", SExpr::var("i"), lc1.clone()),
                }],
            },
            SStmt::SendBuf {
                to: SExpr::int(right as i64),
                tag: TAG_NEW,
                buf: "snew".into(),
                lo: SExpr::int(0),
                hi: SExpr::var("hi_i").sub(SExpr::var("lo_i")),
            },
        ],
    }
}

/// The interior block pipeline: receive a block of new column `c-1`
/// values, compute the matching block of column `c`, send it right while
/// the wavefront allows (column `c+1` interior).
fn block_loop_compute(blk: i64, _p: usize, s: usize, left: usize, right: usize) -> SStmt {
    let (lo_stmt, hi_stmt) = block_bounds(blk);
    let i = || SExpr::var("i");
    let lc = || {
        SExpr::var("c")
            .sub(SExpr::int(1))
            .idiv(SExpr::int(s as i64))
            .add(SExpr::int(1))
    };
    let compute = col_read("New", i().sub(SExpr::int(1)), lc())
        .add(SExpr::BufRead {
            buf: "rnew".into(),
            idx: Box::new(i().sub(SExpr::var("lo_i"))),
        })
        .add(col_read("Old", i().add(SExpr::int(1)), lc()))
        .add(SExpr::BufRead {
            buf: "oldcol".into(),
            idx: Box::new(i().sub(SExpr::int(1))),
        })
        .idiv(SExpr::int(4));
    SStmt::For {
        var: "k".into(),
        lo: SExpr::int(0),
        hi: block_count_hi(blk),
        step: SExpr::int(1),
        body: vec![
            lo_stmt,
            hi_stmt,
            // Receive a block of new values for column c-1.
            SStmt::RecvBuf {
                from: SExpr::int(left as i64),
                tag: TAG_NEW,
                buf: "rnew".into(),
                lo: SExpr::int(0),
                hi: SExpr::var("hi_i").sub(SExpr::var("lo_i")),
            },
            // Compute the block and stage it for sending.
            SStmt::For {
                var: "i".into(),
                lo: SExpr::var("lo_i"),
                hi: SExpr::var("hi_i"),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Let {
                        var: "tmp".into(),
                        value: compute,
                    },
                    col_write("New", i(), lc(), SExpr::var("tmp")),
                    SStmt::BufWrite {
                        buf: "snew".into(),
                        idx: i().sub(SExpr::var("lo_i")),
                        value: SExpr::var("tmp"),
                    },
                ],
            },
            // Send the block right while the next column is interior.
            SStmt::If {
                cond: SExpr::var("c").le(SExpr::var("n").sub(SExpr::int(2))),
                then: vec![SStmt::SendBuf {
                    to: SExpr::int(right as i64),
                    tag: TAG_NEW,
                    buf: "snew".into(),
                    lo: SExpr::int(0),
                    hi: SExpr::var("hi_i").sub(SExpr::var("lo_i")),
                }],
                els: vec![],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{self, Inputs};
    use crate::programs;
    use pdc_machine::CostModel;
    use pdc_spmd::run::SpmdMachine;
    use pdc_spmd::Scalar;

    fn run_handwritten(n: usize, s: usize, blk: usize) -> (SpmdMachine, u64) {
        let prog = gauss_seidel(s, blk);
        let mut m = SpmdMachine::new(&prog, CostModel::ipsc2()).unwrap();
        m.preset_var("n", Scalar::Int(n as i64));
        m.preload_array("Old", Dist::ColumnCyclic, &driver::standard_input(n, n));
        let out = m.run().unwrap();
        let msgs = out.report.stats.network.messages;
        (m, msgs)
    }

    #[test]
    fn handwritten_matches_sequential() {
        let program = programs::gauss_seidel();
        for (n, s, blk) in [(8usize, 2usize, 2usize), (9, 3, 4), (12, 4, 3), (6, 1, 2)] {
            let (m, _) = run_handwritten(n, s, blk);
            let gathered = m.gather("New").unwrap();
            let inputs = Inputs::new()
                .scalar("n", Scalar::Int(n as i64))
                .array("Old", driver::standard_input(n, n));
            let seq = driver::run_sequential(&program, "gs_iteration", &inputs).unwrap();
            assert_eq!(
                driver::first_mismatch(&gathered, &seq),
                None,
                "mismatch for n={n} s={s} blk={blk}"
            );
        }
    }

    #[test]
    fn handwritten_message_count_is_modest() {
        // old columns: one vector message per column c in 3..=n, plus the
        // blocked new streams: columns 1..=n-2 send ceil((n-2)/blk)
        // blocks each.
        let n = 16usize;
        let blk = 4usize;
        let (_, msgs) = run_handwritten(n, 4, blk);
        let old_msgs = (n - 2) as u64; // c = 3..=n
        let blocks = ((n - 2) as u64).div_ceil(blk as u64);
        let new_msgs = (n - 2) as u64 * blocks; // c = 1..=n-2
        assert_eq!(msgs, old_msgs + new_msgs);
    }

    #[test]
    fn single_processor_handwritten_is_message_free() {
        let (m, msgs) = run_handwritten(8, 1, 4);
        assert_eq!(msgs, 0);
        assert!(m.gather("New").unwrap().is_fully_defined());
    }
}
