//! **Run-time resolution** (§3.1): the simple but inefficient strategy.
//!
//! Every processor receives the *same* program. Three rules drive the
//! generation of code:
//!
//! 1. the owner of a variable or array element computes its value;
//! 2. the owner is responsible for communicating the value to any
//!    processor that requires it;
//! 3. every statement is examined by every processor to determine its
//!    role (if any) in the execution of the statement.
//!
//! Each assignment therefore compiles to: compute the evaluator (the
//! owner of the left-hand side) and the owner of every operand *at run
//! time*; owners that are not the evaluator send their element
//! (`coerce`); the evaluator receives or reads each operand, computes,
//! and writes. The generated code is identical on all processors and
//! dispatches on `mynode()`, exactly like Figure 4b of the paper.

use crate::analysis::{Analysis, EvalOwner};
use crate::inline::Inlined;
use crate::translate::{owner_to_sexpr, translate_simple, translate_with_operands, Operand};
use crate::CoreError;
use pdc_lang::ast::{Block, Expr, ExprKind, Stmt};
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use std::collections::BTreeMap;

/// Maximum operands per statement (tag-space partitioning).
const MAX_OPERANDS: usize = 64;

/// Compile the inlined program with run-time resolution.
///
/// # Errors
///
/// [`CoreError::Unsupported`] for constructs outside the compilable
/// subset (conditions reading arrays, too many operands, …).
pub fn compile(inlined: &Inlined, analysis: &Analysis) -> Result<SpmdProgram, CoreError> {
    compile_with_remarks(inlined, analysis, &mut RemarkSink::new()).map(|(p, _)| p)
}

/// [`compile`], additionally emitting one Missed remark per assignment —
/// with run-time resolution *nothing* is decided statically: every
/// processor evaluates the membership tests at run time — and returning
/// the statement-id → source-span map (message tag `t` belongs to
/// statement `t / 64`).
///
/// # Errors
///
/// [`CoreError::Unsupported`] for constructs outside the compilable
/// subset (conditions reading arrays, too many operands, …).
pub fn compile_with_remarks(
    inlined: &Inlined,
    analysis: &Analysis,
    sink: &mut RemarkSink,
) -> Result<(SpmdProgram, BTreeMap<u32, pdc_lang::Span>), CoreError> {
    let mut cg = Codegen {
        analysis,
        next_sid: 0,
        spans: BTreeMap::new(),
    };
    let body = cg.block(&inlined.body)?;
    for (sid, span) in &cg.spans {
        sink.emit(
            Remark::new(
                Phase::RuntimeRes,
                RemarkKind::Missed,
                "every processor tests its role in this statement at run time",
            )
            .with_span(*span)
            .detail("stmt", sid),
        );
    }
    Ok((SpmdProgram::uniform(analysis.nprocs(), body), cg.spans))
}

struct Codegen<'a> {
    analysis: &'a Analysis,
    next_sid: u32,
    /// Source span of each assignment's statement id.
    spans: BTreeMap<u32, pdc_lang::Span>,
}

/// The SPMD expression that computes an owner at run time.
fn owner_sexpr(owner: &EvalOwner, op: Option<&Operand>) -> Result<SExpr, CoreError> {
    match owner {
        EvalOwner::All => Ok(SExpr::my_node()),
        EvalOwner::Expr(oe) => Ok(owner_to_sexpr(oe)),
        EvalOwner::Dynamic => match op {
            Some(Operand::ArrayRead { array, indices }) => Ok(SExpr::OwnerOf {
                array: array.clone(),
                idx: indices
                    .iter()
                    .map(translate_simple)
                    .collect::<Result<_, _>>()?,
            }),
            _ => Err(CoreError::Unsupported {
                message: "dynamic owner without an array reference".into(),
                span: pdc_lang::Span::default(),
            }),
        },
    }
}

/// The SPMD expression reading an operand locally on its owner.
fn operand_read(op: &Operand) -> Result<SExpr, CoreError> {
    match op {
        Operand::ArrayRead { array, indices } => Ok(SExpr::AReadGlobal {
            array: array.clone(),
            idx: indices
                .iter()
                .map(translate_simple)
                .collect::<Result<_, _>>()?,
        }),
        Operand::ScalarVar { name } => Ok(SExpr::var(name.clone())),
    }
}

impl Codegen<'_> {
    fn block(&mut self, b: &Block) -> Result<Vec<SStmt>, CoreError> {
        let mut out = Vec::new();
        for s in &b.stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<SStmt>) -> Result<(), CoreError> {
        match s {
            Stmt::Let { name, init, span } => {
                if let ExprKind::Alloc { dims } = &init.kind {
                    let info = self.analysis.array(name)?;
                    let (rows, cols) = match dims.as_slice() {
                        [n] => (SExpr::int(1), translate_simple(n)?),
                        [r, c] => (translate_simple(r)?, translate_simple(c)?),
                        _ => unreachable!("parser enforces 1 or 2 dims"),
                    };
                    out.push(SStmt::AllocDist {
                        array: name.clone(),
                        rows,
                        cols,
                        dist: info.dist.clone(),
                    });
                    return Ok(());
                }
                let roles = self.analysis.roles(s)?.expect("scalar let has roles");
                self.assignment(
                    AssignTarget::Scalar { name: name.clone() },
                    init,
                    roles.eval,
                    &roles.operands,
                    *span,
                    out,
                )
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                span,
            } => {
                let roles = self.analysis.roles(s)?.expect("array write has roles");
                let idx: Vec<SExpr> = indices
                    .iter()
                    .map(translate_simple)
                    .collect::<Result<_, _>>()?;
                self.assignment(
                    AssignTarget::Array {
                        array: array.clone(),
                        idx,
                    },
                    value,
                    roles.eval,
                    &roles.operands,
                    *span,
                    out,
                )
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let body = self.block(body)?;
                out.push(SStmt::For {
                    var: var.clone(),
                    lo: translate_simple(lo)?,
                    hi: translate_simple(hi)?,
                    step: match step {
                        Some(e) => translate_simple(e)?,
                        None => SExpr::int(1),
                    },
                    body,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let then = self.block(then_blk)?;
                let els = match else_blk {
                    Some(b) => self.block(b)?,
                    None => Vec::new(),
                };
                out.push(SStmt::If {
                    cond: translate_simple(cond)?,
                    then,
                    els,
                });
                Ok(())
            }
            Stmt::Return { .. } => {
                out.push(SStmt::Comment(
                    "return value is gathered by the driver".into(),
                ));
                Ok(())
            }
            Stmt::ExprStmt { span, .. } => Err(CoreError::Unsupported {
                message: "call survived inlining".into(),
                span: *span,
            }),
        }
    }

    /// The owner-computes skeleton shared by scalar and array
    /// assignments.
    fn assignment(
        &mut self,
        target: AssignTarget,
        rhs: &Expr,
        eval: EvalOwner,
        operands: &[crate::analysis::OperandInfo],
        span: pdc_lang::Span,
        out: &mut Vec<SStmt>,
    ) -> Result<(), CoreError> {
        if operands.len() >= MAX_OPERANDS {
            return Err(CoreError::Unsupported {
                message: format!("statement has more than {MAX_OPERANDS} operands"),
                span,
            });
        }
        let sid = self.next_sid;
        self.next_sid += 1;
        self.spans.insert(sid, span);
        let tag = |k: usize| sid * MAX_OPERANDS as u32 + k as u32;
        let is_mapped = |v: &str| self.analysis.is_pinned_scalar(v);

        match eval {
            EvalOwner::All => {
                // Every processor evaluates; pinned operands broadcast.
                let mut replacements = Vec::new();
                for (k, oi) in operands.iter().enumerate() {
                    match &oi.owner {
                        EvalOwner::All => replacements.push(operand_read(&oi.operand)?),
                        owner => {
                            let own_var = format!("$own{sid}_{k}");
                            let t_var = format!("$t{sid}_{k}");
                            out.push(SStmt::Let {
                                var: own_var.clone(),
                                value: owner_sexpr(owner, Some(&oi.operand))?,
                            });
                            // Owner: read locally and send to everyone else.
                            let q = format!("$q{sid}_{k}");
                            out.push(SStmt::If {
                                cond: SExpr::var(own_var.clone()).eq(SExpr::my_node()),
                                then: vec![
                                    SStmt::Let {
                                        var: t_var.clone(),
                                        value: operand_read(&oi.operand)?,
                                    },
                                    SStmt::For {
                                        var: q.clone(),
                                        lo: SExpr::int(0),
                                        hi: SExpr::NProcs.sub(SExpr::int(1)),
                                        step: SExpr::int(1),
                                        body: vec![SStmt::If {
                                            cond: SExpr::var(q.clone()).ne(SExpr::my_node()),
                                            then: vec![SStmt::Send {
                                                to: SExpr::var(q.clone()),
                                                tag: tag(k),
                                                values: vec![SExpr::var(t_var.clone())],
                                            }],
                                            els: vec![],
                                        }],
                                    },
                                ],
                                els: vec![SStmt::Recv {
                                    from: SExpr::var(own_var.clone()),
                                    tag: tag(k),
                                    into: vec![RecvTarget::Var(t_var.clone())],
                                }],
                            });
                            replacements.push(SExpr::var(t_var));
                        }
                    }
                }
                let value =
                    translate_with_operands(rhs, &is_mapped, &mut replacements.into_iter())?;
                out.push(target.store(value));
                Ok(())
            }
            eval => {
                // Single (possibly index-dependent) evaluator.
                let eval_var = format!("$eval{sid}");
                out.push(SStmt::Let {
                    var: eval_var.clone(),
                    value: match &target {
                        AssignTarget::Array { array, idx } if eval == EvalOwner::Dynamic => {
                            SExpr::OwnerOf {
                                array: array.clone(),
                                idx: idx.clone(),
                            }
                        }
                        _ => owner_sexpr(&eval, None).map_err(|_| CoreError::Unsupported {
                            message: "dynamic evaluator for a scalar".into(),
                            span,
                        })?,
                    },
                });
                // Sender roles: owners that are not the evaluator.
                let mut own_vars: Vec<Option<String>> = Vec::new();
                for (k, oi) in operands.iter().enumerate() {
                    match &oi.owner {
                        EvalOwner::All => own_vars.push(None),
                        owner => {
                            let own_var = format!("$own{sid}_{k}");
                            out.push(SStmt::Let {
                                var: own_var.clone(),
                                value: owner_sexpr(owner, Some(&oi.operand))?,
                            });
                            out.push(SStmt::If {
                                cond: SExpr::var(own_var.clone())
                                    .eq(SExpr::my_node())
                                    .and(SExpr::var(eval_var.clone()).ne(SExpr::my_node())),
                                then: vec![SStmt::Send {
                                    to: SExpr::var(eval_var.clone()),
                                    tag: tag(k),
                                    values: vec![operand_read(&oi.operand)?],
                                }],
                                els: vec![],
                            });
                            own_vars.push(Some(own_var));
                        }
                    }
                }
                // Evaluator role: receive/read operands, compute, store.
                let mut eval_body = Vec::new();
                let mut replacements = Vec::new();
                for (k, oi) in operands.iter().enumerate() {
                    match &own_vars[k] {
                        None => replacements.push(operand_read(&oi.operand)?),
                        Some(own_var) => {
                            let t_var = format!("$t{sid}_{k}");
                            eval_body.push(SStmt::If {
                                cond: SExpr::var(own_var.clone()).eq(SExpr::my_node()),
                                then: vec![SStmt::Let {
                                    var: t_var.clone(),
                                    value: operand_read(&oi.operand)?,
                                }],
                                els: vec![SStmt::Recv {
                                    from: SExpr::var(own_var.clone()),
                                    tag: tag(k),
                                    into: vec![RecvTarget::Var(t_var.clone())],
                                }],
                            });
                            replacements.push(SExpr::var(t_var));
                        }
                    }
                }
                let value =
                    translate_with_operands(rhs, &is_mapped, &mut replacements.into_iter())?;
                eval_body.push(target.store(value));
                out.push(SStmt::If {
                    cond: SExpr::var(eval_var).eq(SExpr::my_node()),
                    then: eval_body,
                    els: vec![],
                });
                Ok(())
            }
        }
    }
}

/// Where an assignment's result goes.
enum AssignTarget {
    Scalar { name: String },
    Array { array: String, idx: Vec<SExpr> },
}

impl AssignTarget {
    fn store(&self, value: SExpr) -> SStmt {
        match self {
            AssignTarget::Scalar { name } => SStmt::Let {
                var: name.clone(),
                value,
            },
            AssignTarget::Array { array, idx } => SStmt::AWriteGlobal {
                array: array.clone(),
                idx: idx.clone(),
                value,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inline::{inline_program, ParamMapMode, ParamMaps};
    use pdc_lang::parse;
    use pdc_mapping::{Decomposition, Dist, ScalarMap};
    use std::collections::HashMap;

    pub(crate) fn compile_src(src: &str, entry: &str, decomp: &Decomposition) -> SpmdProgram {
        let p = parse(src).unwrap();
        let inl = inline_program(
            &p,
            entry,
            decomp,
            &ParamMaps::new(),
            ParamMapMode::Monomorphic,
        )
        .unwrap();
        let a = crate::analysis::Analysis::build(&inl, decomp, &HashMap::new(), &HashMap::new())
            .unwrap();
        compile(&inl, &a).unwrap()
    }

    #[test]
    fn figure4b_shape() {
        // a:P1, b:P2, c:P3 — every processor gets guarded code.
        let d = Decomposition::new(4)
            .scalar("a", ScalarMap::On(1))
            .scalar("b", ScalarMap::On(2))
            .scalar("c", ScalarMap::On(3));
        let prog = compile_src(
            "procedure main() { let a = 5; let b = 7; let c = a + b; return c; }",
            "main",
            &d,
        );
        assert_eq!(prog.n_procs(), 4);
        let text = prog.to_string();
        // Uniform program, dispatching on mynode().
        assert!(text.contains("all 4 processors"));
        assert!(text.contains("mynode()"));
        // The evaluator of `c` is the constant processor 3.
        assert!(text.contains("$eval2 = 3;"));
    }

    #[test]
    fn array_write_uses_global_accesses() {
        let d = Decomposition::new(2).array("A", Dist::ColumnCyclic);
        let prog = compile_src(
            "procedure main(n) {
                let A = matrix(n, n);
                for j = 1 to n do {
                    for i = 1 to n do { A[i, j] = i + j; }
                }
                return A[1, 1];
            }",
            "main",
            &d,
        );
        let text = prog.to_string();
        assert!(text.contains("dist_alloc"));
        assert!(text.contains("is_write_global(A"));
        // Evaluator is the symbolic column owner (j-1) mod 2.
        assert!(text.contains("mod 2"));
    }

    #[test]
    fn condition_reading_arrays_is_unsupported() {
        let p = parse(
            "procedure main(A, n) {
                if A[1,1] > 0 then { A[1,2] = 1; }
                return 0;
            }",
        )
        .unwrap();
        let d = Decomposition::new(2).array("A", Dist::ColumnCyclic);
        let inl =
            inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic).unwrap();
        let a =
            crate::analysis::Analysis::build(&inl, &d, &HashMap::new(), &HashMap::new()).unwrap();
        let err = compile(&inl, &a).unwrap_err();
        assert!(err.to_string().contains("every participant"));
    }
}
