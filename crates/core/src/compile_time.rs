//! **Compile-time resolution** (§3.2): specialize the generic
//! run-time-resolution program for each processor.
//!
//! For every assignment the compiler knows the symbolic owner of the
//! left-hand side (the *evaluators*) and of every operand. For a concrete
//! processor `p` it decides membership three-valuedly:
//!
//! * **True** — emit the code unconditionally;
//! * **False** — delete the code (the processor has no role);
//! * **Inconclusive** — emit a run-time ownership guard, exactly the
//!   paper's fallback.
//!
//! Constraints over loop variables are obtained by *solving the mapping
//! equations* (`owner(v) = p`, [`pdc_mapping::solve_for`]); the solutions
//! first appear as residue/range guards and two clean-up passes then
//! restore the shape of the paper's Figure 5:
//!
//! * [`hoist_guards`] — a guard independent of the enclosing loop variable
//!   moves out of the loop (splitting the loop body per role, which is the
//!   loop distribution visible in Figure 5);
//! * [`stride_loops`] — a loop whose body is a single residue-guarded
//!   block becomes a strided loop (`for j = first to N by S`).

use crate::analysis::{Analysis, EvalOwner, OperandInfo};
use crate::inline::Inlined;
use crate::translate::{
    extract_affine, local_index_to_sexpr, owner_to_sexpr, translate_simple,
    translate_with_operands, Operand,
};
use crate::CoreError;
use pdc_lang::ast::{Block, Expr, ExprKind, Stmt};
use pdc_mapping::{solve_for, Affine, IterSet, OwnerExpr, Solution};
use pdc_report::{Phase, Remark, RemarkKind, RemarkSink};
use pdc_spmd::ir::{expr_to_string, RecvTarget, SBinOp, SExpr, SStmt, SpmdProgram};
use std::collections::BTreeMap;

/// Maximum operands per statement (tag-space partitioning; must match
/// run-time resolution so the two strategies are comparable).
const MAX_OPERANDS: usize = 64;

/// The width of each statement's tag block: message tag `t` belongs to
/// statement `t / TAG_STRIDE`, operand `t % TAG_STRIDE`.
pub const TAG_STRIDE: u32 = MAX_OPERANDS as u32;

/// Compile the inlined program with compile-time resolution: one
/// specialized body per processor.
///
/// # Errors
///
/// [`CoreError::Unsupported`] for constructs outside the compilable
/// subset.
pub fn compile(inlined: &Inlined, analysis: &Analysis) -> Result<SpmdProgram, CoreError> {
    compile_with_remarks(inlined, analysis, &mut RemarkSink::new()).map(|(p, _)| p)
}

/// [`compile`], additionally emitting one remark per (statement,
/// specialization decision) — aggregated over processors, with a `procs`
/// detail counting how many made the same decision — and returning the
/// statement-id → source-span map (message tag `t` belongs to statement
/// `t / TAG_STRIDE`).
///
/// # Errors
///
/// [`CoreError::Unsupported`] for constructs outside the compilable
/// subset.
pub fn compile_with_remarks(
    inlined: &Inlined,
    analysis: &Analysis,
    sink: &mut RemarkSink,
) -> Result<(SpmdProgram, BTreeMap<u32, pdc_lang::Span>), CoreError> {
    let mut bodies = Vec::with_capacity(analysis.nprocs());
    let mut events: BTreeMap<(u32, Ev), usize> = BTreeMap::new();
    let mut spans: BTreeMap<u32, pdc_lang::Span> = BTreeMap::new();
    for p in 0..analysis.nprocs() {
        let mut cg = Codegen {
            analysis,
            p,
            next_sid: 0,
            loops: Vec::new(),
            events: Vec::new(),
            spans: BTreeMap::new(),
        };
        let mut body = cg.block(&inlined.body)?;
        body = cleanup(body);
        body = hoist_guards(body);
        body = cleanup(body);
        body = stride_loops(body);
        body = cleanup(body);
        bodies.push(body);
        for e in cg.events {
            *events.entry(e).or_insert(0) += 1;
        }
        if p == 0 {
            // Statement ids are assigned in AST walk order, identically
            // on every processor.
            spans = cg.spans;
        }
    }
    for ((sid, ev), procs) in &events {
        let mut r = ev.remark();
        if let Some(k) = ev.operand() {
            r = r.with_tag(sid * TAG_STRIDE + k as u32);
        }
        if let Some(span) = spans.get(sid) {
            r = r.with_span(*span);
        }
        sink.emit(r.detail("procs", procs));
    }
    Ok((SpmdProgram::new(bodies), spans))
}

/// One per-processor specialization decision, recorded during code
/// generation and aggregated across processors into remarks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// The evaluator role is statically absent on this processor.
    EvalDeleted,
    /// Evaluator iterations of a loop variable restricted to a stride.
    EvalRestricted { var: String, modulus: i64 },
    /// A run-time ownership guard decides the evaluator role.
    EvalGuarded,
    /// Replicated target: every processor evaluates its own copy.
    EvalReplicated,
    /// The sender role for operand `k` is statically absent.
    SendDeleted { k: usize },
    /// No send for operand `k`: its owner is always the evaluator.
    SendElided { k: usize },
    /// The `dest != mynode` guard was statically deleted for operand `k`.
    SendGuardDeleted { k: usize },
    /// A run-time destination guard protects the send of operand `k`.
    SendGuarded { k: usize },
    /// The owner of a pinned operand broadcasts it to all processors.
    Broadcast { k: usize },
    /// Operand `k` is always remote here: an unconditional receive.
    RecvAlways { k: usize },
    /// Operand `k` is always local here: a direct read, no message.
    ReadLocal { k: usize },
    /// Local-or-receive for operand `k` is dispatched at run time.
    ReadRuntime { k: usize },
}

impl Ev {
    fn remark(&self) -> Remark {
        use RemarkKind::{Applied, Missed};
        let r = |kind, msg: &str| Remark::new(Phase::CompileTime, kind, msg);
        match self {
            Ev::EvalDeleted => r(Applied, "evaluator role statically deleted"),
            Ev::EvalRestricted { var, modulus } => r(
                Applied,
                "restricted evaluator iterations to a residue class",
            )
            .detail("var", var)
            .detail("stride", modulus),
            Ev::EvalGuarded => r(Missed, "runtime ownership guard decides the evaluator role"),
            Ev::EvalReplicated => r(
                Applied,
                "replicated target: every processor evaluates its own copy",
            ),
            Ev::SendDeleted { .. } => r(Applied, "sender role statically deleted"),
            Ev::SendElided { .. } => r(
                Applied,
                "send elided: operand owner is always the evaluator",
            ),
            Ev::SendGuardDeleted { .. } => r(
                Applied,
                "destination guard statically deleted (owner and evaluator never coincide)",
            ),
            Ev::SendGuarded { .. } => r(Missed, "runtime destination guard protects the send"),
            Ev::Broadcast { .. } => r(
                Applied,
                "pinned operand broadcast by its owner to all processors",
            ),
            Ev::RecvAlways { .. } => {
                r(Applied, "operand always remote here: unconditional receive")
            }
            Ev::ReadLocal { .. } => r(Applied, "operand always local here: direct read"),
            Ev::ReadRuntime { .. } => r(Missed, "local-or-receive dispatched at run time"),
        }
    }

    /// The operand index the event concerns, if any.
    fn operand(&self) -> Option<usize> {
        match self {
            Ev::SendDeleted { k }
            | Ev::SendElided { k }
            | Ev::SendGuardDeleted { k }
            | Ev::SendGuarded { k }
            | Ev::Broadcast { k }
            | Ev::RecvAlways { k }
            | Ev::ReadLocal { k }
            | Ev::ReadRuntime { k } => Some(*k),
            _ => None,
        }
    }
}

/// A static condition for processor membership: a conjunction of per-loop-
/// variable iteration sets and residual run-time guards.
#[derive(Debug, Clone)]
enum Cond {
    /// Statically false: the role never applies to this processor.
    Never,
    /// Conjunction of constraints (empty = statically true).
    Parts {
        per_var: Vec<(String, IterSet)>,
        guards: Vec<SExpr>,
    },
}

impl Cond {
    fn always() -> Cond {
        Cond::Parts {
            per_var: Vec::new(),
            guards: Vec::new(),
        }
    }

    fn guard(g: SExpr) -> Cond {
        Cond::Parts {
            per_var: Vec::new(),
            guards: vec![g],
        }
    }

    fn is_always(&self) -> bool {
        matches!(self, Cond::Parts { per_var, guards } if per_var.is_empty() && guards.is_empty())
    }

    fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::Never, _) | (_, Cond::Never) => Cond::Never,
            (
                Cond::Parts {
                    mut per_var,
                    mut guards,
                },
                Cond::Parts {
                    per_var: pv2,
                    guards: g2,
                },
            ) => {
                for (v, s) in pv2 {
                    if let Some((_, existing)) = per_var.iter_mut().find(|(w, _)| *w == v) {
                        match existing.intersect(&s) {
                            Some(merged) => *existing = merged,
                            None => return Cond::Never,
                        }
                    } else {
                        per_var.push((v, s));
                    }
                }
                guards.extend(g2);
                Cond::Parts { per_var, guards }
            }
        }
    }

    fn push_guard(&mut self, g: SExpr) {
        if let Cond::Parts { guards, .. } = self {
            guards.push(g);
        }
    }

    /// Wrap `code` in the guards of this condition; per-variable guards
    /// are ordered outermost loop first so the hoisting pass can peel
    /// them from the outside.
    fn wrap(&self, code: Vec<SStmt>, loop_order: &[String]) -> Vec<SStmt> {
        let Cond::Parts { per_var, guards } = self else {
            return Vec::new();
        };
        let mut ordered: Vec<&(String, IterSet)> = per_var.iter().collect();
        ordered.sort_by_key(|(v, _)| loop_order.iter().position(|w| w == v));
        let mut out = code;
        // Innermost guard closest to the code: wrap guards in reverse.
        for g in guards.iter().rev() {
            out = vec![SStmt::If {
                cond: g.clone(),
                then: out,
                els: vec![],
            }];
        }
        for (v, s) in ordered.iter().rev() {
            if let Some(g) = iterset_guard(v, s) {
                out = vec![SStmt::If {
                    cond: g,
                    then: out,
                    els: vec![],
                }];
            }
        }
        out
    }
}

/// Render the guard for `v ∈ s`; `None` when the set is all integers.
fn iterset_guard(v: &str, s: &IterSet) -> Option<SExpr> {
    let mut conjuncts = Vec::new();
    if s.modulus > 1 {
        conjuncts.push(
            SExpr::var(v)
                .imod(SExpr::int(s.modulus))
                .eq(SExpr::int(s.residue)),
        );
    }
    if let Some(lo) = s.lo {
        conjuncts.push(SExpr::Bin(
            SBinOp::Ge,
            Box::new(SExpr::var(v)),
            Box::new(SExpr::int(lo)),
        ));
    }
    if let Some(hi) = s.hi {
        conjuncts.push(SExpr::var(v).le(SExpr::int(hi)));
    }
    conjuncts.into_iter().reduce(|a, b| a.and(b))
}

/// `a` covers `b`: every member of `b` is in `a` (conservative).
fn covers(a: &IterSet, b: &IterSet) -> bool {
    let congruence_ok = b.modulus % a.modulus == 0 && b.residue.rem_euclid(a.modulus) == a.residue;
    let lo_ok = match (a.lo, b.lo) {
        (None, _) => true,
        (Some(al), Some(bl)) => al <= bl,
        (Some(_), None) => false,
    };
    let hi_ok = match (a.hi, b.hi) {
        (None, _) => true,
        (Some(ah), Some(bh)) => ah >= bh,
        (Some(_), None) => false,
    };
    congruence_ok && lo_ok && hi_ok
}

struct Codegen<'a> {
    analysis: &'a Analysis,
    p: usize,
    next_sid: u32,
    /// Enclosing loop variables, outermost first.
    loops: Vec<String>,
    /// Specialization decisions made on this processor, per statement.
    events: Vec<(u32, Ev)>,
    /// Source span of each statement id (identical on every processor).
    spans: BTreeMap<u32, pdc_lang::Span>,
}

impl Codegen<'_> {
    /// The membership condition `p ∈ owner` as static constraints.
    fn cond_for(&self, owner: &EvalOwner, op: Option<&Operand>) -> Result<Cond, CoreError> {
        match owner {
            EvalOwner::All => Ok(Cond::always()),
            EvalOwner::Expr(oe) => Ok(self.cond_from_expr(oe)),
            EvalOwner::Dynamic => match op {
                Some(Operand::ArrayRead { array, indices }) => Ok(Cond::guard(
                    SExpr::OwnerOf {
                        array: array.clone(),
                        idx: indices
                            .iter()
                            .map(translate_simple)
                            .collect::<Result<_, _>>()?,
                    }
                    .eq(SExpr::int(self.p as i64)),
                )),
                _ => Err(CoreError::Unsupported {
                    message: "dynamic owner without an array reference".into(),
                    span: pdc_lang::Span::default(),
                }),
            },
        }
    }

    fn cond_from_expr(&self, oe: &OwnerExpr) -> Cond {
        self.cond_from_expr_for(oe, self.p)
    }

    fn cond_from_expr_for(&self, oe: &OwnerExpr, p: usize) -> Cond {
        if let OwnerExpr::Grid { row, col, pcols } = oe {
            let prow = p / pcols;
            let pcol = p % pcols;
            return self
                .cond_from_expr_for(row, prow)
                .and(self.cond_from_expr_for(col, pcol));
        }
        let loop_vars: Vec<String> = oe
            .vars()
            .into_iter()
            .filter(|v| self.loops.contains(v))
            .collect();
        match loop_vars.as_slice() {
            [] => {
                // No loop variables: constant or run-time scalars.
                match oe.as_owner_set() {
                    Some(set) => {
                        if set.contains(p) {
                            Cond::always()
                        } else {
                            Cond::Never
                        }
                    }
                    None => Cond::guard(owner_to_sexpr(oe).eq(SExpr::int(p as i64))),
                }
            }
            [v] => match solve_for(oe, v, p) {
                Solution::Set(s) => Cond::Parts {
                    per_var: vec![(v.clone(), s)],
                    guards: Vec::new(),
                },
                Solution::Empty => Cond::Never,
                Solution::Guard => Cond::guard(owner_to_sexpr(oe).eq(SExpr::int(p as i64))),
            },
            _ => Cond::guard(owner_to_sexpr(oe).eq(SExpr::int(p as i64))),
        }
    }

    fn block(&mut self, b: &Block) -> Result<Vec<SStmt>, CoreError> {
        let mut out = Vec::new();
        for s in &b.stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<SStmt>) -> Result<(), CoreError> {
        match s {
            Stmt::Let { name, init, span } => {
                if let ExprKind::Alloc { dims } = &init.kind {
                    let info = self.analysis.array(name)?;
                    let (rows, cols) = match dims.as_slice() {
                        [n] => (SExpr::int(1), translate_simple(n)?),
                        [r, c] => (translate_simple(r)?, translate_simple(c)?),
                        _ => unreachable!("parser enforces 1 or 2 dims"),
                    };
                    out.push(SStmt::AllocDist {
                        array: name.clone(),
                        rows,
                        cols,
                        dist: info.dist.clone(),
                    });
                    return Ok(());
                }
                let roles = self.analysis.roles(s)?.expect("scalar let has roles");
                self.assignment(
                    Target::Scalar { name: name.clone() },
                    init,
                    &roles.eval,
                    &roles.operands,
                    *span,
                    out,
                )
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                span,
            } => {
                let roles = self.analysis.roles(s)?.expect("array write has roles");
                self.assignment(
                    Target::Array {
                        array: array.clone(),
                        indices: indices.clone(),
                    },
                    value,
                    &roles.eval,
                    &roles.operands,
                    *span,
                    out,
                )
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                self.loops.push(var.clone());
                let inner = self.block(body);
                self.loops.pop();
                let inner = inner?;
                if inner.is_empty() {
                    return Ok(());
                }
                out.push(SStmt::For {
                    var: var.clone(),
                    lo: translate_simple(lo)?,
                    hi: translate_simple(hi)?,
                    step: match step {
                        Some(e) => translate_simple(e)?,
                        None => SExpr::int(1),
                    },
                    body: inner,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let then = self.block(then_blk)?;
                let els = match else_blk {
                    Some(b) => self.block(b)?,
                    None => Vec::new(),
                };
                if then.is_empty() && els.is_empty() {
                    return Ok(());
                }
                out.push(SStmt::If {
                    cond: translate_simple(cond)?,
                    then,
                    els,
                });
                Ok(())
            }
            Stmt::Return { .. } => Ok(()),
            Stmt::ExprStmt { span, .. } => Err(CoreError::Unsupported {
                message: "call survived inlining".into(),
                span: *span,
            }),
        }
    }

    /// Local read of an operand on its owner.
    fn read_local(&self, op: &Operand) -> Result<SExpr, CoreError> {
        match op {
            Operand::ScalarVar { name } => Ok(SExpr::var(name.clone())),
            Operand::ArrayRead { array, indices } => self.read_array_local(array, indices),
        }
    }

    fn read_array_local(&self, array: &str, indices: &[Expr]) -> Result<SExpr, CoreError> {
        let affines: Option<Vec<Affine>> = if self.analysis.array(array)?.dist.is_analyzable() {
            indices.iter().map(extract_affine).collect()
        } else {
            None // table assignments: the VM applies Local at run time
        };
        match affines {
            Some(affs) => {
                let inst = self.analysis.inst(array)?;
                let (i_aff, j_aff) = match affs.as_slice() {
                    [j] => (Affine::constant(1), j.clone()),
                    [i, j] => (i.clone(), j.clone()),
                    _ => {
                        return Err(CoreError::Unsupported {
                            message: "arrays have one or two dimensions".into(),
                            span: pdc_lang::Span::default(),
                        })
                    }
                };
                match inst.local_expr(&i_aff, &j_aff) {
                    Ok((li, lj)) => {
                        let idx = if affs.len() == 1 {
                            vec![local_index_to_sexpr(&lj)]
                        } else {
                            vec![local_index_to_sexpr(&li), local_index_to_sexpr(&lj)]
                        };
                        Ok(SExpr::ARead {
                            array: array.to_owned(),
                            idx,
                        })
                    }
                    // No symbolic Local function: let the VM apply Local
                    // at run time, exactly like the table-assignment path.
                    Err(_) => Ok(SExpr::AReadGlobal {
                        array: array.to_owned(),
                        idx: indices
                            .iter()
                            .map(translate_simple)
                            .collect::<Result<_, _>>()?,
                    }),
                }
            }
            None => Ok(SExpr::AReadGlobal {
                array: array.to_owned(),
                idx: indices
                    .iter()
                    .map(translate_simple)
                    .collect::<Result<_, _>>()?,
            }),
        }
    }

    /// Local write of the assignment target on its owner.
    fn write_local(&self, target: &Target, value: SExpr) -> Result<SStmt, CoreError> {
        match target {
            Target::Scalar { name } => Ok(SStmt::Let {
                var: name.clone(),
                value,
            }),
            Target::Array { array, indices } => {
                let read = self.read_array_local(array, indices)?;
                match read {
                    SExpr::ARead { array, idx } => Ok(SStmt::AWrite { array, idx, value }),
                    SExpr::AReadGlobal { array, idx } => {
                        Ok(SStmt::AWriteGlobal { array, idx, value })
                    }
                    _ => unreachable!("read_array_local returns array reads"),
                }
            }
        }
    }

    /// The run-time expression for an owner (used as a send destination
    /// or receive source).
    fn owner_runtime_expr(
        &self,
        owner: &EvalOwner,
        op: Option<&Operand>,
        target: Option<&Target>,
    ) -> Result<SExpr, CoreError> {
        match owner {
            EvalOwner::All => Ok(SExpr::int(self.p as i64)),
            EvalOwner::Expr(oe) => Ok(owner_to_sexpr(oe)),
            EvalOwner::Dynamic => {
                let (array, indices) = match (op, target) {
                    (Some(Operand::ArrayRead { array, indices }), _) => {
                        (array.clone(), indices.clone())
                    }
                    (_, Some(Target::Array { array, indices })) => (array.clone(), indices.clone()),
                    _ => {
                        return Err(CoreError::Unsupported {
                            message: "dynamic owner without an array reference".into(),
                            span: pdc_lang::Span::default(),
                        })
                    }
                };
                Ok(SExpr::OwnerOf {
                    array,
                    idx: indices
                        .iter()
                        .map(translate_simple)
                        .collect::<Result<_, _>>()?,
                })
            }
        }
    }

    fn assignment(
        &mut self,
        target: Target,
        rhs: &Expr,
        eval: &EvalOwner,
        operands: &[OperandInfo],
        span: pdc_lang::Span,
        out: &mut Vec<SStmt>,
    ) -> Result<(), CoreError> {
        if operands.len() >= MAX_OPERANDS {
            return Err(CoreError::Unsupported {
                message: format!("statement has more than {MAX_OPERANDS} operands"),
                span,
            });
        }
        let sid = self.next_sid;
        self.next_sid += 1;
        self.spans.insert(sid, span);
        let tag = |k: usize| sid * MAX_OPERANDS as u32 + k as u32;

        if matches!(eval, EvalOwner::All) {
            self.events.push((sid, Ev::EvalReplicated));
            return self.assignment_replicated(target, rhs, operands, sid, tag, out);
        }

        let eval_cond = self.cond_for(eval, None).or_else(|_| match &target {
            Target::Array { array, indices } => Ok::<_, CoreError>(Cond::guard(
                SExpr::OwnerOf {
                    array: array.clone(),
                    idx: indices
                        .iter()
                        .map(translate_simple)
                        .collect::<Result<_, _>>()?,
                }
                .eq(SExpr::int(self.p as i64)),
            )),
            Target::Scalar { .. } => Err(CoreError::Unsupported {
                message: "dynamic evaluator for a scalar".into(),
                span,
            }),
        })?;
        match &eval_cond {
            Cond::Never => self.events.push((sid, Ev::EvalDeleted)),
            Cond::Parts { per_var, guards } => {
                for (v, s) in per_var {
                    if s.modulus > 1 {
                        self.events.push((
                            sid,
                            Ev::EvalRestricted {
                                var: v.clone(),
                                modulus: s.modulus,
                            },
                        ));
                    }
                }
                if !guards.is_empty() {
                    self.events.push((sid, Ev::EvalGuarded));
                }
            }
        }
        let eval_dest = self.owner_runtime_expr(eval, None, Some(&target))?;

        // ---- sender roles ----
        for (k, oi) in operands.iter().enumerate() {
            if matches!(oi.owner, EvalOwner::All) {
                continue; // replicated operands are read locally everywhere
            }
            if owner_equals(&oi.owner, eval) {
                self.events.push((sid, Ev::SendElided { k }));
                continue; // owner is always the evaluator: pure local read
            }
            let own_cond = self.cond_for(&oi.owner, Some(&oi.operand))?;
            if matches!(own_cond, Cond::Never) {
                self.events.push((sid, Ev::SendDeleted { k }));
                continue;
            }
            // (owner == p) ∧ ¬(eval == p):
            let mut send_cond = own_cond.clone();
            let negation_static = match (&own_cond, &eval_cond) {
                (_, Cond::Never) => true, // eval never here: always send
                (
                    Cond::Parts {
                        per_var: pv_own,
                        guards: g_own,
                    },
                    Cond::Parts {
                        per_var: pv_eval,
                        guards: g_eval,
                    },
                ) if g_own.is_empty() && g_eval.is_empty() => {
                    // Disjoint on some shared variable → never both.
                    let disjoint = pv_own.iter().any(|(v, a)| {
                        pv_eval
                            .iter()
                            .find(|(w, _)| w == v)
                            .is_some_and(|(_, b)| a.intersect(b).is_none())
                    });
                    if disjoint {
                        true
                    } else {
                        // own ⊆ eval on every axis → never send at all.
                        let own_subsets_eval = pv_eval.iter().all(|(v, b)| {
                            pv_own
                                .iter()
                                .find(|(w, _)| w == v)
                                .is_some_and(|(_, a)| covers(b, a))
                        }) && pv_eval.len() >= pv_own.len()
                            && pv_own
                                .iter()
                                .all(|(v, _)| pv_eval.iter().any(|(w, _)| w == v));
                        if own_subsets_eval && eval_cond.is_always() {
                            // owner implies evaluator: no send role.
                            self.events.push((sid, Ev::SendElided { k }));
                            continue;
                        }
                        false
                    }
                }
                _ => false,
            };
            if negation_static {
                self.events.push((sid, Ev::SendGuardDeleted { k }));
            } else {
                self.events.push((sid, Ev::SendGuarded { k }));
                send_cond.push_guard(eval_dest.clone().ne(SExpr::int(self.p as i64)));
            }
            let code = vec![
                SStmt::Let {
                    var: format!("$v{sid}_{k}"),
                    value: self.read_local(&oi.operand)?,
                },
                SStmt::Send {
                    to: eval_dest.clone(),
                    tag: tag(k),
                    values: vec![SExpr::var(format!("$v{sid}_{k}"))],
                },
            ];
            out.extend(send_cond.wrap(code, &self.loops));
        }

        // ---- evaluator role ----
        if matches!(eval_cond, Cond::Never) {
            return Ok(());
        }
        let mut body = Vec::new();
        let mut replacements = Vec::new();
        for (k, oi) in operands.iter().enumerate() {
            if matches!(oi.owner, EvalOwner::All) || owner_equals(&oi.owner, eval) {
                replacements.push(self.read_local(&oi.operand)?);
                continue;
            }
            let own_cond = self.cond_for(&oi.owner, Some(&oi.operand))?;
            let src = self.owner_runtime_expr(&oi.owner, Some(&oi.operand), None)?;
            let t_var = format!("$t{sid}_{k}");
            let relation = self.operand_relation(&own_cond, &eval_cond);
            match relation {
                Rel::AlwaysLocal => {
                    self.events.push((sid, Ev::ReadLocal { k }));
                    body.push(SStmt::Let {
                        var: t_var.clone(),
                        value: self.read_local(&oi.operand)?,
                    });
                }
                Rel::AlwaysRemote => {
                    self.events.push((sid, Ev::RecvAlways { k }));
                    body.push(SStmt::Recv {
                        from: src,
                        tag: tag(k),
                        into: vec![RecvTarget::Var(t_var.clone())],
                    });
                }
                Rel::Runtime => {
                    self.events.push((sid, Ev::ReadRuntime { k }));
                    body.push(SStmt::If {
                        cond: src.clone().eq(SExpr::int(self.p as i64)),
                        then: vec![SStmt::Let {
                            var: t_var.clone(),
                            value: self.read_local(&oi.operand)?,
                        }],
                        els: vec![SStmt::Recv {
                            from: src,
                            tag: tag(k),
                            into: vec![RecvTarget::Var(t_var.clone())],
                        }],
                    });
                }
            }
            replacements.push(SExpr::var(t_var));
        }
        let is_mapped = |v: &str| self.analysis.is_pinned_scalar(v);
        let value = translate_with_operands(rhs, &is_mapped, &mut replacements.into_iter())?;
        body.push(self.write_local(&target, value)?);
        out.extend(eval_cond.wrap(body, &self.loops));
        Ok(())
    }

    /// Whether, at iterations where the evaluator condition holds on this
    /// processor, the operand is local, remote, or undecidable.
    fn operand_relation(&self, own: &Cond, eval: &Cond) -> Rel {
        match (own, eval) {
            (Cond::Never, _) => Rel::AlwaysRemote,
            (o, _) if o.is_always() => Rel::AlwaysLocal,
            (
                Cond::Parts {
                    per_var: pv_own,
                    guards: g_own,
                },
                Cond::Parts {
                    per_var: pv_eval,
                    guards: g_eval,
                },
            ) if g_own.is_empty() && g_eval.is_empty() => {
                // Single shared variable with comparable sets?
                if let [(v, a)] = pv_own.as_slice() {
                    if let Some((_, b)) = pv_eval.iter().find(|(w, _)| w == v) {
                        if covers(a, b) {
                            return Rel::AlwaysLocal;
                        }
                        if a.intersect(b).is_none() {
                            return Rel::AlwaysRemote;
                        }
                    }
                }
                Rel::Runtime
            }
            _ => Rel::Runtime,
        }
    }

    /// Replicated left-hand side: every processor evaluates its own copy.
    /// Pinned operands are broadcast by their owner.
    fn assignment_replicated(
        &mut self,
        target: Target,
        rhs: &Expr,
        operands: &[OperandInfo],
        sid: u32,
        tag: impl Fn(usize) -> u32,
        out: &mut Vec<SStmt>,
    ) -> Result<(), CoreError> {
        let mut replacements = Vec::new();
        for (k, oi) in operands.iter().enumerate() {
            match &oi.owner {
                EvalOwner::All => replacements.push(self.read_local(&oi.operand)?),
                owner => {
                    let own_cond = self.cond_for(owner, Some(&oi.operand))?;
                    let src = self.owner_runtime_expr(owner, Some(&oi.operand), None)?;
                    let t_var = format!("$b{}_{k}", self.next_sid);
                    match own_cond {
                        c if c.is_always() => {
                            self.events.push((sid, Ev::Broadcast { k }));
                            // This processor owns it: read and broadcast.
                            out.push(SStmt::Let {
                                var: t_var.clone(),
                                value: self.read_local(&oi.operand)?,
                            });
                            for q in 0..self.analysis.nprocs() {
                                if q != self.p {
                                    out.push(SStmt::Send {
                                        to: SExpr::int(q as i64),
                                        tag: tag(k),
                                        values: vec![SExpr::var(t_var.clone())],
                                    });
                                }
                            }
                        }
                        Cond::Never => {
                            self.events.push((sid, Ev::RecvAlways { k }));
                            out.push(SStmt::Recv {
                                from: src,
                                tag: tag(k),
                                into: vec![RecvTarget::Var(t_var.clone())],
                            });
                        }
                        _ => {
                            self.events.push((sid, Ev::ReadRuntime { k }));
                            // Undecidable owner: guard at run time.
                            let q_var = format!("$q{}_{k}", self.next_sid);
                            let mut sends = vec![SStmt::Let {
                                var: t_var.clone(),
                                value: self.read_local(&oi.operand)?,
                            }];
                            sends.push(SStmt::For {
                                var: q_var.clone(),
                                lo: SExpr::int(0),
                                hi: SExpr::int(self.analysis.nprocs() as i64 - 1),
                                step: SExpr::int(1),
                                body: vec![SStmt::If {
                                    cond: SExpr::var(q_var.clone()).ne(SExpr::int(self.p as i64)),
                                    then: vec![SStmt::Send {
                                        to: SExpr::var(q_var.clone()),
                                        tag: tag(k),
                                        values: vec![SExpr::var(t_var.clone())],
                                    }],
                                    els: vec![],
                                }],
                            });
                            out.push(SStmt::If {
                                cond: src.clone().eq(SExpr::int(self.p as i64)),
                                then: sends,
                                els: vec![SStmt::Recv {
                                    from: src,
                                    tag: tag(k),
                                    into: vec![RecvTarget::Var(t_var.clone())],
                                }],
                            });
                        }
                    }
                    replacements.push(SExpr::var(t_var));
                }
            }
        }
        let is_mapped = |v: &str| self.analysis.is_pinned_scalar(v);
        let value = translate_with_operands(rhs, &is_mapped, &mut replacements.into_iter())?;
        out.push(self.write_local(&target, value)?);
        Ok(())
    }
}

fn owner_equals(a: &EvalOwner, b: &EvalOwner) -> bool {
    match (a, b) {
        (EvalOwner::Expr(x), EvalOwner::Expr(y)) => x == y,
        _ => false,
    }
}

/// Whether the operand is local/remote/undecidable at evaluation time.
enum Rel {
    AlwaysLocal,
    AlwaysRemote,
    Runtime,
}

/// Where an assignment's result goes (source-level view; local indices
/// are derived by the code generator).
enum Target {
    Scalar { name: String },
    Array { array: String, indices: Vec<Expr> },
}

// ---------------------------------------------------------------------
// Clean-up passes
// ---------------------------------------------------------------------

/// Does `e` mention variable `v`?
fn mentions(e: &SExpr, v: &str) -> bool {
    match e {
        SExpr::Var(w) => w == v,
        SExpr::Int(_) | SExpr::Float(_) | SExpr::Bool(_) | SExpr::MyNode | SExpr::NProcs => false,
        SExpr::Bin(_, a, b) => mentions(a, v) || mentions(b, v),
        SExpr::Un(_, a) => mentions(a, v),
        SExpr::ARead { idx, .. }
        | SExpr::AReadGlobal { idx, .. }
        | SExpr::OwnerOf { idx, .. }
        | SExpr::LocalOf { idx, .. } => idx.iter().any(|e| mentions(e, v)),
        SExpr::BufRead { idx, .. } => mentions(idx, v),
    }
}

/// Does this statement list perform anything but reads and sends?
fn sends_only(body: &[SStmt]) -> bool {
    body.iter().all(|s| match s {
        SStmt::Let { var, .. } => var.starts_with('$'),
        SStmt::Send { .. } | SStmt::SendBuf { .. } | SStmt::Comment(_) => true,
        SStmt::For { body, .. } => sends_only(body),
        SStmt::If { then, els, .. } => sends_only(then) && sends_only(els),
        _ => false,
    })
}

/// Split a conjunction into its conjuncts.
fn conjuncts(e: &SExpr) -> Vec<SExpr> {
    match e {
        SExpr::Bin(SBinOp::And, a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other.clone()],
    }
}

/// The `(expr, modulus, residue)` of a residue test `expr mod m == r`.
fn residue_test(e: &SExpr) -> Option<(String, i64, i64)> {
    if let SExpr::Bin(SBinOp::Eq, lhs, rhs) = e {
        if let (SExpr::Bin(SBinOp::Mod, base, m), SExpr::Int(r)) = (&**lhs, &**rhs) {
            if let SExpr::Int(m) = &**m {
                return Some((expr_to_string(base), *m, *r));
            }
        }
    }
    None
}

/// Hoist loop-invariant guards out of loops, splitting the loop per
/// guarded block (the loop distribution visible in Figure 5).
///
/// `for v { if g1 {A1} … if gk {Ak} }` becomes
/// `if g1 { for v {A1} } … if gk { for v {Ak} }` when every `g_i` is
/// independent of `v` and the blocks cannot interfere: each pair is
/// either mutually exclusive (distinct residues of one expression) or
/// both blocks only read and send.
pub fn hoist_guards(body: Vec<SStmt>) -> Vec<SStmt> {
    body.into_iter()
        .map(|s| match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let body = hoist_guards(body);
                let all_guarded = !body.is_empty()
                    && body.iter().all(|s| {
                        matches!(s, SStmt::If { cond, els, .. }
                             if els.is_empty() && !mentions(cond, &var))
                    });
                if !all_guarded {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    };
                }
                // Check pairwise safety.
                let parts: Vec<(SExpr, Vec<SStmt>)> = body
                    .into_iter()
                    .map(|s| match s {
                        SStmt::If { cond, then, .. } => (cond, then),
                        _ => unreachable!("checked guarded"),
                    })
                    .collect();
                let safe = |a: &(SExpr, Vec<SStmt>), b: &(SExpr, Vec<SStmt>)| {
                    // Mutually exclusive residues of the same base?
                    if let (Some((ba, ma, ra)), Some((bb, mb, rb))) = (
                        residue_test(&conjuncts(&a.0)[0]),
                        residue_test(&conjuncts(&b.0)[0]),
                    ) {
                        if ba == bb && ma == mb && ra != rb {
                            return true;
                        }
                    }
                    sends_only(&a.1) && sends_only(&b.1)
                };
                let all_safe = parts.len() < 2
                    || parts
                        .iter()
                        .enumerate()
                        .all(|(i, a)| parts.iter().skip(i + 1).all(|b| safe(a, b)));
                if !all_safe {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body: parts
                            .into_iter()
                            .map(|(cond, then)| SStmt::If {
                                cond,
                                then,
                                els: vec![],
                            })
                            .collect(),
                    };
                }
                // Hoist: one guarded loop per block. Wrap multiple blocks
                // in a sequence — the caller flattens via cleanup().
                let hoisted: Vec<SStmt> = parts
                    .into_iter()
                    .map(|(cond, then)| SStmt::If {
                        cond,
                        then: vec![SStmt::For {
                            var: var.clone(),
                            lo: lo.clone(),
                            hi: hi.clone(),
                            step: step.clone(),
                            body: then,
                        }],
                        els: vec![],
                    })
                    .collect();
                if hoisted.len() == 1 {
                    hoisted.into_iter().next().unwrap()
                } else {
                    // Temporary container; flattened by cleanup().
                    SStmt::If {
                        cond: SExpr::Bool(true),
                        then: hoisted,
                        els: vec![],
                    }
                }
            }
            SStmt::If { cond, then, els } => SStmt::If {
                cond,
                then: hoist_guards(then),
                els: hoist_guards(els),
            },
            other => other,
        })
        .collect()
}

/// Convert `for v = lo to hi by 1 { if (v mod m == r) ∧ rest { B } }`
/// into `for v = first to hi by m { if rest { B } }` — the strided loops
/// of Figure 5 (`for j = p to N by S`).
pub fn stride_loops(body: Vec<SStmt>) -> Vec<SStmt> {
    body.into_iter()
        .map(|s| match s {
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let body = stride_loops(body);
                if step != SExpr::int(1) || body.len() != 1 {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    };
                }
                let SStmt::If { cond, then, els } = body[0].clone() else {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    };
                };
                if !els.is_empty() {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body: vec![SStmt::If { cond, then, els }],
                    };
                }
                // Find a conjunct `(v + c) mod m == r`.
                let cs = conjuncts(&cond);
                let mut found: Option<(i64, i64, i64)> = None; // (c, m, r)
                let mut rest = Vec::new();
                for c in cs {
                    if found.is_none() {
                        if let Some((base, m, r)) = residue_test(&c) {
                            if let Some(off) = base_offset(&c, &var) {
                                let _ = base;
                                found = Some((off, m, r));
                                continue;
                            }
                        }
                    }
                    rest.push(c);
                }
                let Some((c, m, r)) = found else {
                    return SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body: vec![SStmt::If { cond, then, els }],
                    };
                };
                // first = lo + ((r - c - lo) mod m)
                let first = match &lo {
                    SExpr::Int(l) => SExpr::int(l + (r - c - l).rem_euclid(m)),
                    lo => lo
                        .clone()
                        .add(SExpr::int(r - c).sub(lo.clone()).imod(SExpr::int(m))),
                };
                let inner = match rest.into_iter().reduce(|a, b| a.and(b)) {
                    None => then,
                    Some(g) => vec![SStmt::If {
                        cond: g,
                        then,
                        els: vec![],
                    }],
                };
                SStmt::For {
                    var,
                    lo: first,
                    hi,
                    step: SExpr::int(m),
                    body: stride_loops(inner),
                }
            }
            SStmt::If { cond, then, els } => SStmt::If {
                cond,
                then: stride_loops(then),
                els: stride_loops(els),
            },
            other => other,
        })
        .collect()
}

/// If `cond` is `(v + c) mod m == r` (with `c` possibly 0 or negative),
/// return `c`.
fn base_offset(cond: &SExpr, v: &str) -> Option<i64> {
    let SExpr::Bin(SBinOp::Eq, lhs, _) = cond else {
        return None;
    };
    let SExpr::Bin(SBinOp::Mod, base, _) = &**lhs else {
        return None;
    };
    match &**base {
        SExpr::Var(w) if w == v => Some(0),
        SExpr::Bin(SBinOp::Add, a, b) => match (&**a, &**b) {
            (SExpr::Var(w), SExpr::Int(c)) if w == v => Some(*c),
            _ => None,
        },
        SExpr::Bin(SBinOp::Sub, a, b) => match (&**a, &**b) {
            (SExpr::Var(w), SExpr::Int(c)) if w == v => Some(-*c),
            _ => None,
        },
        _ => None,
    }
}

/// Remove empty loops/ifs, flatten `if (true) { … }` containers, and
/// merge adjacent guards with identical conditions (so that e.g. the two
/// boundary-row copies of a column share one residue test and the loop
/// can then be strided).
pub fn cleanup(body: Vec<SStmt>) -> Vec<SStmt> {
    let out = cleanup_inner(body);
    merge_adjacent_ifs(out)
}

fn merge_adjacent_ifs(body: Vec<SStmt>) -> Vec<SStmt> {
    let mut out: Vec<SStmt> = Vec::new();
    for s in body {
        let s = match s {
            SStmt::If { cond, then, els } => SStmt::If {
                cond,
                then: merge_adjacent_ifs(then),
                els: merge_adjacent_ifs(els),
            },
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => SStmt::For {
                var,
                lo,
                hi,
                step,
                body: merge_adjacent_ifs(body),
            },
            other => other,
        };
        match (out.last_mut(), s) {
            (
                Some(SStmt::If {
                    cond: c1,
                    then: t1,
                    els: e1,
                }),
                SStmt::If {
                    cond: c2,
                    then: t2,
                    els: e2,
                },
            ) if *c1 == c2 && e1.is_empty() && e2.is_empty() => {
                t1.extend(t2);
            }
            (_, s) => out.push(s),
        }
    }
    out
}

fn cleanup_inner(body: Vec<SStmt>) -> Vec<SStmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            SStmt::If { cond, then, els } => {
                let then = cleanup_inner(then);
                let els = cleanup_inner(els);
                if cond == SExpr::Bool(true) {
                    out.extend(then);
                } else if then.is_empty() && els.is_empty() {
                    // drop
                } else {
                    out.push(SStmt::If { cond, then, els });
                }
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let body = cleanup_inner(body);
                if !body.is_empty() {
                    out.push(SStmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    });
                }
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::driver::{self, Inputs, Job, Strategy};
    use crate::programs;
    use pdc_machine::CostModel;
    use pdc_mapping::{Decomposition, Dist, ScalarMap};
    use pdc_spmd::Scalar;

    #[test]
    fn figure4d_specialization() {
        // P1: a := 5; send. P2: b := 7; send. P3: recv, recv, add.
        // Other processors: nothing.
        let program = programs::figure4();
        let job = Job::new(&program, "main", programs::figure4_decomposition(4));
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let text = compiled.spmd.to_string();
        assert!(text.contains("P0:"), "specialized per processor:\n{text}");
        // P0 has no code at all (it participates in nothing).
        let p0: Vec<_> = compiled.spmd.body(0).to_vec();
        assert!(p0.is_empty(), "P0 should be empty, got {p0:?}");
        // P3 receives from both owners and computes.
        let p3 = compiled.spmd.body(3);
        let s = format!("{p3:?}");
        assert!(s.contains("Recv"));
        // And no ownership guards remain anywhere (all membership was
        // decided statically).
        assert!(!text.contains("mynode"));
    }

    #[test]
    fn figure4_compile_time_runs_with_two_messages() {
        let program = programs::figure4();
        let job = Job::new(&program, "main", programs::figure4_decomposition(4));
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let exec = driver::execute(&compiled, &Inputs::new(), CostModel::ipsc2()).unwrap();
        assert_eq!(exec.messages(), 2);
        assert_eq!(exec.machine.vm(3).var("c"), Some(Scalar::Int(12)));
    }

    #[test]
    fn gs_compile_time_matches_sequential() {
        let program = programs::gauss_seidel();
        for s in [1usize, 2, 3, 4] {
            let n = 9usize;
            let job = Job::new(
                &program,
                "gs_iteration",
                programs::wavefront_decomposition(s),
            )
            .with_const("n", n as i64);
            let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
            let inputs = Inputs::new()
                .scalar("n", Scalar::Int(n as i64))
                .array("Old", driver::standard_input(n, n));
            let exec = driver::execute(&compiled, &inputs, CostModel::zero())
                .unwrap_or_else(|e| panic!("s={s}: {e}"));
            let gathered = exec.gather("New").unwrap();
            let seq = driver::run_sequential(&program, "gs_iteration", &inputs).unwrap();
            assert_eq!(
                driver::first_mismatch(&gathered, &seq),
                None,
                "mismatch at s={s}"
            );
            assert_eq!(exec.outcome.report.undelivered, 0);
        }
    }

    #[test]
    fn gs_compile_time_same_messages_fewer_steps_than_runtime() {
        // §4: "It exchanges as many messages as the run-time version but
        // each processor only participates in those iterations for which
        // it has data."
        let program = programs::gauss_seidel();
        let n = 12usize;
        let s = 4usize;
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let rt = driver::compile(&job, Strategy::Runtime).unwrap();
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        let rt_exec = driver::execute(&rt, &inputs, CostModel::ipsc2()).unwrap();
        let ct_exec = driver::execute(&ct, &inputs, CostModel::ipsc2()).unwrap();
        assert_eq!(rt_exec.messages(), ct_exec.messages());
        assert!(
            ct_exec.outcome.report.steps < rt_exec.outcome.report.steps,
            "compile-time should execute fewer instructions: {} vs {}",
            ct_exec.outcome.report.steps,
            rt_exec.outcome.report.steps
        );
        assert!(ct_exec.makespan() < rt_exec.makespan());
    }

    #[test]
    fn strided_loop_appears_in_gs_code() {
        let program = programs::gauss_seidel();
        let n = 16usize;
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(4),
        )
        .with_const("n", n as i64);
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let text = compiled.spmd.to_string();
        // The boundary-copy loop over owned columns strides by S=4
        // somewhere in the specialized code.
        assert!(text.contains("+= 4"), "expected a strided loop:\n{text}");
    }

    #[test]
    fn scalar_pinned_broadcast_works() {
        // x:P1 is read by a replicated scalar: owner broadcasts.
        let src = "procedure main() { let x = 9; let y = x + 1; return y; }";
        let program = pdc_lang::parse(src).unwrap();
        let d = Decomposition::new(3).scalar("x", ScalarMap::On(1));
        let job = Job::new(&program, "main", d);
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let exec = driver::execute(&compiled, &Inputs::new(), CostModel::ipsc2()).unwrap();
        // Two messages: P1 -> P0 and P1 -> P2.
        assert_eq!(exec.messages(), 2);
        for p in 0..3 {
            assert_eq!(exec.machine.vm(p).var("y"), Some(Scalar::Int(10)));
        }
    }

    #[test]
    fn block_distribution_compile_time_matches_sequential() {
        let program = programs::jacobi();
        let n = 8usize;
        let s = 4usize;
        let d = Decomposition::new(s)
            .array("New", Dist::ColumnBlock)
            .array("Old", Dist::ColumnBlock);
        let job = Job::new(&program, "jacobi", d).with_const("n", n as i64);
        let mut job = job;
        job.extent_overrides.insert("Old".into(), (n, n));
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let exec = driver::execute(&compiled, &inputs, CostModel::zero()).unwrap();
        let gathered = exec.gather("New").unwrap();
        let seq = driver::run_sequential(&program, "jacobi", &inputs).unwrap();
        assert_eq!(driver::first_mismatch(&gathered, &seq), None);
    }
}
