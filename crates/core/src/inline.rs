//! Procedure inlining with per-call-site mapping instantiation.
//!
//! The compiler flattens the call tree of the entry procedure before
//! analysis. This is the substitution documented in DESIGN.md: the paper
//! performs interprocedural analysis with *participants functions* because
//! Id Nouveau has recursion (§6); we instead specialize each call site by
//! inlining, which handles every non-recursive program — including the
//! paper's benchmark — and makes the §5.1 *mapping polymorphism* extension
//! a one-line policy choice:
//!
//! * [`ParamMapMode::Monomorphic`] — a procedure's scalar parameters keep
//!   their *declared* mapping at every call site (the Figure 8 behaviour:
//!   calling `f = λa:P1. a` on data owned by P2 drags the data to P1 and
//!   back);
//! * [`ParamMapMode::Polymorphic`] — parameters are re-mapped per call
//!   site to the mapping of the actual argument (the Figure 9 behaviour:
//!   the call runs where the data lives and the messages disappear).

use crate::CoreError;
use pdc_lang::ast::{Block, Expr, ExprKind, Program, Stmt};
use pdc_lang::Span;
use pdc_mapping::{Decomposition, ScalarMap};
use std::collections::{HashMap, HashSet};

/// How procedure parameters acquire mappings at call sites (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamMapMode {
    /// Parameters keep their declared mapping at every call site.
    #[default]
    Monomorphic,
    /// Parameters take the mapping of the actual argument.
    Polymorphic,
}

/// Declared mappings for procedure parameters, keyed by
/// `(procedure, parameter)`. Parameters without an entry behave as `ALL`
/// (replicated), like unmapped scalars.
pub type ParamMaps = HashMap<(String, String), ScalarMap>;

/// The result of flattening the entry procedure.
#[derive(Debug, Clone)]
pub struct Inlined {
    /// Entry parameters (left free; bound by the driver at run time).
    pub params: Vec<String>,
    /// The call-free body.
    pub body: Block,
    /// Mappings for the fresh scalars introduced for inlined parameters.
    pub scalar_maps: Vec<(String, ScalarMap)>,
}

struct Inliner<'a> {
    program: &'a Program,
    decomp: &'a Decomposition,
    param_maps: &'a ParamMaps,
    mode: ParamMapMode,
    stack: Vec<String>,
    counter: usize,
    extra_maps: Vec<(String, ScalarMap)>,
}

/// Flatten `entry`, inlining every call.
///
/// Restrictions (each reported as [`CoreError::Unsupported`]):
///
/// * calls may appear only as whole statements, as the right-hand side of
///   a `let`, or under a `return` — never nested inside expressions;
/// * an inlined procedure may use `return` only as its final statement;
/// * array arguments must be simple variables (the array's identity must
///   be statically known);
/// * recursion is rejected with [`CoreError::Recursion`].
///
/// # Errors
///
/// See above; also [`CoreError::NoEntry`] for a missing entry procedure.
pub fn inline_program(
    program: &Program,
    entry: &str,
    decomp: &Decomposition,
    param_maps: &ParamMaps,
    mode: ParamMapMode,
) -> Result<Inlined, CoreError> {
    let proc = program.proc(entry).ok_or_else(|| CoreError::NoEntry {
        name: entry.to_owned(),
    })?;
    let mut inliner = Inliner {
        program,
        decomp,
        param_maps,
        mode,
        stack: vec![entry.to_owned()],
        counter: 0,
        extra_maps: Vec::new(),
    };
    let body = inliner.block(&proc.body, &HashMap::new())?;
    Ok(Inlined {
        params: proc.params.clone(),
        body,
        scalar_maps: inliner.extra_maps,
    })
}

/// Collect the names used with subscripts anywhere in `block` — these are
/// the arrays of the program (as opposed to scalars). Used for
/// parameter-kind inference here and array discovery in the analysis.
pub fn collect_subscripted(block: &Block, out: &mut HashSet<String>) {
    subscripted_names(block, out)
}

/// Names used with subscripts anywhere in a block (arrays, as opposed to
/// scalars, for parameter-kind inference).
fn subscripted_names(block: &Block, out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::ArrayRead { array, indices } => {
                out.insert(array.clone());
                for i in indices {
                    expr(i, out);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, out);
                expr(rhs, out);
            }
            ExprKind::Unary { operand, .. } => expr(operand, out),
            ExprKind::Call { args, .. } => {
                for a in args {
                    expr(a, out);
                }
            }
            ExprKind::Alloc { dims } => {
                for d in dims {
                    expr(d, out);
                }
            }
            _ => {}
        }
    }
    for s in &block.stmts {
        match s {
            Stmt::Let { init, .. } => expr(init, out),
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                ..
            } => {
                out.insert(array.clone());
                for i in indices {
                    expr(i, out);
                }
                expr(value, out);
            }
            Stmt::For {
                lo, hi, step, body, ..
            } => {
                expr(lo, out);
                expr(hi, out);
                if let Some(st) = step {
                    expr(st, out);
                }
                subscripted_names(body, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                expr(cond, out);
                subscripted_names(then_blk, out);
                if let Some(e) = else_blk {
                    subscripted_names(e, out);
                }
            }
            Stmt::Return { value, .. } => expr(value, out),
            Stmt::ExprStmt { expr: e, .. } => expr(e, out),
        }
    }
}

impl Inliner<'_> {
    /// Process a block in the *caller's* namespace: `renames` maps callee
    /// names to caller names (empty at the entry level).
    fn block(
        &mut self,
        block: &Block,
        renames: &HashMap<String, String>,
    ) -> Result<Block, CoreError> {
        let mut out = Vec::new();
        for stmt in &block.stmts {
            self.stmt(stmt, renames, &mut out)?;
        }
        Ok(Block { stmts: out })
    }

    fn stmt(
        &mut self,
        stmt: &Stmt,
        renames: &HashMap<String, String>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        match stmt {
            Stmt::Let { name, init, span } => {
                let name = rename(name, renames);
                if let ExprKind::Call { name: callee, args } = &init.kind {
                    let ret = self.inline_call(callee, args, renames, *span, out)?;
                    let Some(ret) = ret else {
                        return Err(CoreError::Unsupported {
                            message: format!("`{callee}` returns no value"),
                            span: *span,
                        });
                    };
                    out.push(Stmt::Let {
                        name,
                        init: ret,
                        span: *span,
                    });
                } else {
                    out.push(Stmt::Let {
                        name,
                        init: self.expr(init, renames)?,
                        span: *span,
                    });
                }
                Ok(())
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                span,
            } => {
                out.push(Stmt::ArrayWrite {
                    array: rename(array, renames),
                    indices: indices
                        .iter()
                        .map(|e| self.expr(e, renames))
                        .collect::<Result<_, _>>()?,
                    value: self.expr(value, renames)?,
                    span: *span,
                });
                Ok(())
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let mut inner = renames.clone();
                // Loop variables in inlined bodies must be renamed so
                // sibling inlinings cannot collide; entry-level loops keep
                // their names (renames is identity there).
                let new_var = if renames.is_empty() && !renames.contains_key(var) {
                    var.clone()
                } else {
                    let fresh = format!("{}{}", self.prefix(), var);
                    inner.insert(var.clone(), fresh.clone());
                    fresh
                };
                let body = self.block(body, &inner)?;
                out.push(Stmt::For {
                    var: new_var,
                    lo: self.expr(lo, renames)?,
                    hi: self.expr(hi, renames)?,
                    step: step.as_ref().map(|e| self.expr(e, renames)).transpose()?,
                    body,
                    span: *span,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                out.push(Stmt::If {
                    cond: self.expr(cond, renames)?,
                    then_blk: self.block(then_blk, renames)?,
                    else_blk: else_blk
                        .as_ref()
                        .map(|b| self.block(b, renames))
                        .transpose()?,
                    span: *span,
                });
                Ok(())
            }
            Stmt::Return { value, span } => {
                if let ExprKind::Call { name: callee, args } = &value.kind {
                    let ret = self.inline_call(callee, args, renames, *span, out)?;
                    let Some(ret) = ret else {
                        return Err(CoreError::Unsupported {
                            message: format!("`{callee}` returns no value"),
                            span: *span,
                        });
                    };
                    out.push(Stmt::Return {
                        value: ret,
                        span: *span,
                    });
                } else {
                    out.push(Stmt::Return {
                        value: self.expr(value, renames)?,
                        span: *span,
                    });
                }
                Ok(())
            }
            Stmt::ExprStmt { expr, span } => {
                if let ExprKind::Call { name: callee, args } = &expr.kind {
                    let _ = self.inline_call(callee, args, renames, *span, out)?;
                    Ok(())
                } else {
                    Err(CoreError::Unsupported {
                        message: "only calls may be used as statements".into(),
                        span: *span,
                    })
                }
            }
        }
    }

    fn prefix(&self) -> String {
        format!("__i{}_", self.counter)
    }

    /// Inline one call; returns the renamed return expression, if any.
    fn inline_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        renames: &HashMap<String, String>,
        span: Span,
        out: &mut Vec<Stmt>,
    ) -> Result<Option<Expr>, CoreError> {
        if self.stack.iter().any(|f| f == callee) {
            let mut cycle = self.stack.clone();
            cycle.push(callee.to_owned());
            return Err(CoreError::Recursion { cycle });
        }
        let proc = self
            .program
            .proc(callee)
            .ok_or_else(|| CoreError::NoEntry {
                name: callee.to_owned(),
            })?;
        self.counter += 1;
        let prefix = self.prefix();
        // Which parameters are arrays (used with subscripts in the body)?
        let mut arrays = HashSet::new();
        subscripted_names(&proc.body, &mut arrays);

        let mut callee_renames: HashMap<String, String> = HashMap::new();
        for (param, arg) in proc.params.iter().zip(args) {
            let arg = self.expr(arg, renames)?;
            if arrays.contains(param) {
                // Array parameter: alias to the actual array's name.
                let ExprKind::Var(actual) = &arg.kind else {
                    return Err(CoreError::Unsupported {
                        message: format!(
                            "array argument for `{param}` of `{callee}` must be a variable"
                        ),
                        span,
                    });
                };
                callee_renames.insert(param.clone(), actual.clone());
            } else {
                // Scalar parameter: bind a fresh single-assignment scalar
                // and give it a mapping per the polymorphism mode.
                let fresh = format!("{prefix}{param}");
                let declared = self
                    .param_maps
                    .get(&(callee.to_owned(), param.clone()))
                    .copied();
                let map = match self.mode {
                    ParamMapMode::Monomorphic => declared,
                    ParamMapMode::Polymorphic => match &arg.kind {
                        ExprKind::Var(v) => Some(self.decomp.scalar_map(v)),
                        _ => declared,
                    },
                };
                if let Some(m) = map {
                    self.extra_maps.push((fresh.clone(), m));
                }
                out.push(Stmt::Let {
                    name: fresh.clone(),
                    init: arg,
                    span,
                });
                callee_renames.insert(param.clone(), fresh);
            }
        }
        // Locals of the callee get fresh names. Rename lazily: every `let`
        // and loop var encountered in the callee body is added here first.
        self.stack.push(callee.to_owned());
        let (body_stmts, ret) = self.split_tail_return(&proc.body, span)?;
        let mut local_renames = callee_renames;
        self.collect_local_renames(&body_stmts, &prefix, &mut local_renames);
        for s in &body_stmts {
            self.stmt(s, &local_renames, out)?;
        }
        let ret = ret
            .map(|e| {
                if let ExprKind::Call { name: c2, args: a2 } = &e.kind {
                    self.inline_call(c2, a2, &local_renames, span, out)
                        .and_then(|r| {
                            r.ok_or_else(|| CoreError::Unsupported {
                                message: format!("`{c2}` returns no value"),
                                span,
                            })
                        })
                } else {
                    self.expr(&e, &local_renames)
                }
            })
            .transpose()?;
        self.stack.pop();
        Ok(ret)
    }

    /// Split a callee body into (statements, final return expression).
    /// Any `return` that is not the final top-level statement is rejected.
    fn split_tail_return(
        &self,
        body: &Block,
        call_span: Span,
    ) -> Result<(Vec<Stmt>, Option<Expr>), CoreError> {
        fn has_return(b: &Block) -> bool {
            b.stmts.iter().any(|s| match s {
                Stmt::Return { .. } => true,
                Stmt::For { body, .. } => has_return(body),
                Stmt::If {
                    then_blk, else_blk, ..
                } => has_return(then_blk) || else_blk.as_ref().is_some_and(has_return),
                _ => false,
            })
        }
        let mut stmts = body.stmts.clone();
        let ret = match stmts.last() {
            Some(Stmt::Return { value, .. }) => {
                let v = value.clone();
                stmts.pop();
                Some(v)
            }
            _ => None,
        };
        if has_return(&Block {
            stmts: stmts.clone(),
        }) {
            return Err(CoreError::Unsupported {
                message: "inlined procedures may only `return` as their final statement".into(),
                span: call_span,
            });
        }
        Ok((stmts, ret))
    }

    fn collect_local_renames(
        &self,
        stmts: &[Stmt],
        prefix: &str,
        renames: &mut HashMap<String, String>,
    ) {
        for s in stmts {
            match s {
                Stmt::Let { name, .. } => {
                    renames
                        .entry(name.clone())
                        .or_insert_with(|| format!("{prefix}{name}"));
                }
                Stmt::For { body, .. } => {
                    // Loop vars are renamed at their `For` statement; only
                    // descend for nested lets.
                    self.collect_local_renames(&body.stmts, prefix, renames);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    self.collect_local_renames(&then_blk.stmts, prefix, renames);
                    if let Some(e) = else_blk {
                        self.collect_local_renames(&e.stmts, prefix, renames);
                    }
                }
                _ => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr, renames: &HashMap<String, String>) -> Result<Expr, CoreError> {
        let kind = match &e.kind {
            ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) => e.kind.clone(),
            ExprKind::Var(v) => ExprKind::Var(rename(v, renames)),
            ExprKind::ArrayRead { array, indices } => ExprKind::ArrayRead {
                array: rename(array, renames),
                indices: indices
                    .iter()
                    .map(|i| self.expr(i, renames))
                    .collect::<Result<_, _>>()?,
            },
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs, renames)?),
                rhs: Box::new(self.expr(rhs, renames)?),
            },
            ExprKind::Unary { op, operand } => ExprKind::Unary {
                op: *op,
                operand: Box::new(self.expr(operand, renames)?),
            },
            ExprKind::Call { .. } => {
                return Err(CoreError::Unsupported {
                    message: "calls may not be nested inside expressions; hoist into a `let`"
                        .into(),
                    span: e.span,
                })
            }
            ExprKind::Alloc { dims } => ExprKind::Alloc {
                dims: dims
                    .iter()
                    .map(|d| self.expr(d, renames))
                    .collect::<Result<_, _>>()?,
            },
        };
        Ok(Expr::new(kind, e.span))
    }
}

fn rename(name: &str, renames: &HashMap<String, String>) -> String {
    renames
        .get(name)
        .cloned()
        .unwrap_or_else(|| name.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_lang::parse;
    use pdc_lang::pretty;

    fn flat(src: &str, entry: &str) -> Inlined {
        let p = parse(src).expect("parse");
        let d = Decomposition::new(4);
        inline_program(&p, entry, &d, &ParamMaps::new(), ParamMapMode::Monomorphic).expect("inline")
    }

    #[test]
    fn simple_call_is_flattened() {
        let inl = flat(
            "procedure g(x) { let y = x + 1; return y; }
             procedure main(n) { let r = g(n); return r; }",
            "main",
        );
        let printed = pretty::program(&pdc_lang::Program {
            map_decls: vec![],
            procs: vec![pdc_lang::Proc {
                name: "main".into(),
                params: inl.params.clone(),
                body: inl.body.clone(),
                span: Span::default(),
            }],
        });
        // No calls remain; the callee's local is renamed.
        assert!(!printed.contains("g("));
        assert!(printed.contains("__i1_x = n"));
        assert!(printed.contains("__i1_y"));
    }

    #[test]
    fn array_params_alias_by_name() {
        let inl = flat(
            "procedure fill(a, n) { for i = 1 to n do { a[i] = i; } return 0; }
             procedure main(n) { let v = vector(n); fill(v, n); return v[1]; }",
            "main",
        );
        // The callee writes through the *caller's* array name.
        let has_v_write = fn_contains_array_write(&inl.body, "v");
        assert!(has_v_write);
    }

    fn fn_contains_array_write(b: &Block, name: &str) -> bool {
        b.stmts.iter().any(|s| match s {
            Stmt::ArrayWrite { array, .. } => array == name,
            Stmt::For { body, .. } => fn_contains_array_write(body, name),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                fn_contains_array_write(then_blk, name)
                    || else_blk
                        .as_ref()
                        .is_some_and(|e| fn_contains_array_write(e, name))
            }
            _ => false,
        })
    }

    #[test]
    fn recursion_is_rejected() {
        let p = parse("procedure f(n) { if n < 1 then { return 0; } return f(n - 1); }").unwrap();
        let d = Decomposition::new(2);
        let err =
            inline_program(&p, "f", &d, &ParamMaps::new(), ParamMapMode::Monomorphic).unwrap_err();
        assert!(matches!(err, CoreError::Recursion { .. }));
    }

    #[test]
    fn early_return_is_rejected() {
        let p = parse(
            "procedure g(n) { if n > 0 then { return 1; } return 0; }
             procedure main(n) { let r = g(n); return r; }",
        )
        .unwrap();
        let d = Decomposition::new(2);
        let err = inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic)
            .unwrap_err();
        assert!(err.to_string().contains("final statement"));
    }

    #[test]
    fn nested_call_in_expression_rejected() {
        let p = parse(
            "procedure g(n) { return n; }
             procedure main(n) { let r = g(n) + 1; return r; }",
        )
        .unwrap();
        let d = Decomposition::new(2);
        let err = inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic)
            .unwrap_err();
        assert!(err.to_string().contains("hoist"));
    }

    #[test]
    fn monomorphic_params_get_declared_maps() {
        let p = parse(
            "procedure f(a) { return a; }
             procedure main(b) { let u = f(b); return u; }",
        )
        .unwrap();
        let d = Decomposition::new(4).scalar("b", ScalarMap::On(2));
        let mut pm = ParamMaps::new();
        pm.insert(("f".into(), "a".into()), ScalarMap::On(1));
        let inl = inline_program(&p, "main", &d, &pm, ParamMapMode::Monomorphic).unwrap();
        assert_eq!(inl.scalar_maps, vec![("__i1_a".into(), ScalarMap::On(1))]);
    }

    #[test]
    fn polymorphic_params_inherit_argument_maps() {
        let p = parse(
            "procedure f(a) { return a; }
             procedure main(b) { let u = f(b); return u; }",
        )
        .unwrap();
        let d = Decomposition::new(4).scalar("b", ScalarMap::On(2));
        let mut pm = ParamMaps::new();
        pm.insert(("f".into(), "a".into()), ScalarMap::On(1));
        let inl = inline_program(&p, "main", &d, &pm, ParamMapMode::Polymorphic).unwrap();
        // The fresh parameter now lives where the argument lives.
        assert_eq!(inl.scalar_maps, vec![("__i1_a".into(), ScalarMap::On(2))]);
    }

    #[test]
    fn two_calls_get_distinct_names() {
        let inl = flat(
            "procedure g(x) { let t = x * 2; return t; }
             procedure main(n) { let a = g(n); let b = g(a); return b; }",
            "main",
        );
        let mut names = HashSet::new();
        for s in &inl.body.stmts {
            if let Stmt::Let { name, .. } = s {
                assert!(names.insert(name.clone()), "duplicate `{name}`");
            }
        }
    }
}
