//! The canonical programs of the paper, as source text.

use pdc_lang::{parse, Program};
use pdc_mapping::{Decomposition, Dist, ScalarMap};

/// Figure 1: one Gauss-Seidel relaxation sweep over an `n × n` grid in
/// normal order. `init_boundary` copies the boundary of `Old` into `New`;
/// interior elements average two `New` neighbours (above, left) and two
/// `Old` neighbours (below, right) — the wavefront dependence pattern of
/// Figure 2.
pub const GAUSS_SEIDEL: &str = r#"
procedure init_boundary(New, Old, n) {
    for i = 1 to n do {
        New[i, 1] = Old[i, 1];
        New[i, n] = Old[i, n];
    }
    for j = 2 to n - 1 do {
        New[1, j] = Old[1, j];
        New[n, j] = Old[n, j];
    }
    return 0;
}

procedure gs_iteration(Old, n) {
    let New = matrix(n, n);
    let c = 1;
    init_boundary(New, Old, n);
    for j = 2 to n - 1 do {
        for i = 2 to n - 1 do {
            New[i, j] = c * (New[i - 1, j] + New[i, j - 1]
                           + Old[i + 1, j] + Old[i, j + 1]) div 4;
        }
    }
    return New;
}
"#;

/// §4's loop-interchange discussion: the same kernel with the `i` and `j`
/// loops reversed. Under wrapped columns this order produces no wavefront
/// parallelism until loop interchange restores the column-major sweep.
pub const GAUSS_SEIDEL_INTERCHANGED: &str = r#"
procedure init_boundary(New, Old, n) {
    for i = 1 to n do {
        New[i, 1] = Old[i, 1];
        New[i, n] = Old[i, n];
    }
    for j = 2 to n - 1 do {
        New[1, j] = Old[1, j];
        New[n, j] = Old[n, j];
    }
    return 0;
}

procedure gs_iteration(Old, n) {
    let New = matrix(n, n);
    let c = 1;
    init_boundary(New, Old, n);
    for i = 2 to n - 1 do {
        for j = 2 to n - 1 do {
            New[i, j] = c * (New[i - 1, j] + New[i, j - 1]
                           + Old[i + 1, j] + Old[i, j + 1]) div 4;
        }
    }
    return New;
}
"#;

/// Figure 4a: the three-statement scalar example (`a:P1, b:P2, c:P3`).
pub const FIGURE4: &str = r#"
procedure main() {
    let a = 5;
    let b = 7;
    let c = a + b;
    return c;
}
"#;

/// §5.1's mapping-polymorphism example: the identity function applied to
/// scalars owned by two different processors (Figures 8 and 9).
pub const IDENTITY_CALLS: &str = r#"
procedure f(a) {
    return a;
}

procedure main(b, k) {
    let u = f(b);
    let v = f(k);
    return u + v;
}
"#;

/// A Jacobi sweep (all reads from `Old`): unlike Gauss-Seidel it has no
/// wavefront dependence, so every column updates in parallel. Used by the
/// extra examples and ablation benches.
pub const JACOBI: &str = r#"
procedure jacobi(Old, n) {
    let New = matrix(n, n);
    for i = 1 to n do {
        New[i, 1] = Old[i, 1];
        New[i, n] = Old[i, n];
    }
    for j = 2 to n - 1 do {
        New[1, j] = Old[1, j];
        New[n, j] = Old[n, j];
    }
    for j = 2 to n - 1 do {
        for i = 2 to n - 1 do {
            New[i, j] = (Old[i - 1, j] + Old[i, j - 1]
                       + Old[i + 1, j] + Old[i, j + 1]) div 4;
        }
    }
    return New;
}
"#;

/// Parse [`GAUSS_SEIDEL`].
///
/// # Panics
///
/// Never — the source is a compile-time constant covered by tests.
pub fn gauss_seidel() -> Program {
    parse(GAUSS_SEIDEL).expect("canonical program parses")
}

/// Parse [`GAUSS_SEIDEL_INTERCHANGED`].
pub fn gauss_seidel_interchanged() -> Program {
    parse(GAUSS_SEIDEL_INTERCHANGED).expect("canonical program parses")
}

/// Parse [`FIGURE4`].
pub fn figure4() -> Program {
    parse(FIGURE4).expect("canonical program parses")
}

/// Parse [`IDENTITY_CALLS`].
pub fn identity_calls() -> Program {
    parse(IDENTITY_CALLS).expect("canonical program parses")
}

/// Parse [`JACOBI`].
pub fn jacobi() -> Program {
    parse(JACOBI).expect("canonical program parses")
}

/// The paper's domain decomposition for the wavefront programs: both
/// matrices wrapped by column around the ring (§2.3).
pub fn wavefront_decomposition(nprocs: usize) -> Decomposition {
    Decomposition::new(nprocs)
        .array("New", Dist::ColumnCyclic)
        .array("Old", Dist::ColumnCyclic)
}

/// Figure 4's decomposition: `a:P1, b:P2, c:P3` (zero-based here).
pub fn figure4_decomposition(nprocs: usize) -> Decomposition {
    assert!(nprocs >= 4, "figure 4 uses three distinct processors");
    Decomposition::new(nprocs)
        .scalar("a", ScalarMap::On(1))
        .scalar("b", ScalarMap::On(2))
        .scalar("c", ScalarMap::On(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_istructure::IMatrix;
    use pdc_lang::interp::Interpreter;
    use pdc_lang::value::Value;

    fn graded(n: usize) -> Value {
        let m = Value::new_matrix(n, n);
        if let Value::Matrix(h) = &m {
            let mut h = h.borrow_mut();
            for i in 1..=n as i64 {
                for j in 1..=n as i64 {
                    h.write(i, j, Value::Int(i * 10 + j)).unwrap();
                }
            }
        }
        m
    }

    #[test]
    fn canonical_programs_parse() {
        let _ = gauss_seidel();
        let _ = gauss_seidel_interchanged();
        let _ = figure4();
        let _ = identity_calls();
        let _ = jacobi();
    }

    #[test]
    fn gauss_seidel_runs_sequentially() {
        let p = gauss_seidel();
        let out = Interpreter::new(&p)
            .run("gs_iteration", &[graded(6), Value::Int(6)])
            .unwrap();
        let Value::Matrix(m) = out else {
            panic!("expected matrix");
        };
        let mut m = m.borrow_mut();
        // New[2,2] averages two boundary copies and two Old neighbours:
        // (Old[1,2] + Old[2,1] + Old[3,2] + Old[2,3]) div 4
        //   = (12 + 21 + 32 + 23) div 4 = 22.
        assert_eq!(*m.read(2, 2).unwrap(), Value::Int(22));
        assert!(m.is_fully_defined());
    }

    #[test]
    fn interchanged_version_computes_the_same_result() {
        let a = Interpreter::new(&gauss_seidel())
            .run("gs_iteration", &[graded(8), Value::Int(8)])
            .unwrap();
        let b = Interpreter::new(&gauss_seidel_interchanged())
            .run("gs_iteration", &[graded(8), Value::Int(8)])
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn figure4_evaluates_to_twelve() {
        let out = Interpreter::new(&figure4()).run("main", &[]).unwrap();
        assert_eq!(out, Value::Int(12));
    }

    #[test]
    fn jacobi_smooths() {
        let p = jacobi();
        let out = Interpreter::new(&p)
            .run("jacobi", &[graded(5), Value::Int(5)])
            .unwrap();
        let Value::Matrix(m) = out else {
            panic!("expected matrix");
        };
        assert!(m.borrow().is_fully_defined());
        let _ = IMatrix::<i64>::new(1, 1); // keep the istructure dev-dep exercised
    }
}
