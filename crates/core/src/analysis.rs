//! Mapping propagation: the *evaluators* and *participants* attributes of
//! §3.2.
//!
//! The compiler walks the (inlined) abstract syntax tree and computes, for
//! every assignment, **who evaluates it** (the owner of the left-hand
//! side, under rule 1 of §3.1) and **who owns each right-hand-side
//! operand** (rule 2). Owners are symbolic [`OwnerExpr`]s over the
//! enclosing loop variables — e.g. the owner of `New[i, j+1]` under
//! wrapped columns is `(j+1-1) mod S`, exactly the paper's example. The
//! *participants* of a node is the union of the evaluators in its subtree;
//! for code generation purposes that union is represented as the list of
//! role owners ([`StmtRoles::participants`]).

use crate::inline::Inlined;
use crate::translate::{collect_operands, extract_affine, Operand};
use crate::CoreError;
use pdc_lang::ast::{Block, Expr, ExprKind, Stmt};
use pdc_mapping::{Affine, Decomposition, Dist, DistInstance, OwnerExpr, ScalarMap};
use std::collections::HashMap;

/// What the compiler knows about one array.
#[derive(Debug, Clone)]
pub struct ArrayInfo {
    /// Its distribution.
    pub dist: Dist,
    /// Compile-time extents, when the allocation dimensions fold to
    /// constants (required for the block distribution families).
    pub extents: Option<(usize, usize)>,
    /// 1 for `vector`, 2 for `matrix`.
    pub ndims: usize,
}

/// The owner of a computation or operand, as the compiler sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOwner {
    /// Every processor (replicated scalars/arrays).
    All,
    /// A symbolic owner over loop variables (constants included, as
    /// [`OwnerExpr::Const`]).
    Expr(OwnerExpr),
    /// Statically unanalyzable (non-affine subscripts): only run-time
    /// resolution of this statement is possible.
    Dynamic,
}

/// One right-hand-side operand and its owner.
#[derive(Debug, Clone)]
pub struct OperandInfo {
    /// The operand (walk order matches
    /// [`crate::translate::collect_operands`]).
    pub operand: Operand,
    /// Who owns it.
    pub owner: EvalOwner,
}

/// The roles of one assignment statement.
#[derive(Debug, Clone)]
pub struct StmtRoles {
    /// Who performs the operation (the owner of the left-hand side).
    pub eval: EvalOwner,
    /// The coercible operands, in walk order.
    pub operands: Vec<OperandInfo>,
}

impl StmtRoles {
    /// The participants of the statement: its evaluators plus every
    /// operand owner (the union of evaluators in the subtree, §3.2).
    pub fn participants(&self) -> Vec<&EvalOwner> {
        let mut v = vec![&self.eval];
        v.extend(self.operands.iter().map(|o| &o.owner));
        v
    }
}

/// The analysis context for one compiled program.
#[derive(Debug, Clone)]
pub struct Analysis {
    nprocs: usize,
    scalars: HashMap<String, ScalarMap>,
    arrays: HashMap<String, ArrayInfo>,
}

impl Analysis {
    /// Build the context: combine the decomposition with the inliner's
    /// extra scalar maps, discover every array (allocations and
    /// subscripted parameters), and fold allocation extents under
    /// `const_params` (compile-time-known scalars such as `n = 128`).
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingMapping`] for arrays without a distribution;
    /// [`CoreError::Unsupported`] for a block-family distribution whose
    /// extents do not fold to constants.
    pub fn build(
        inlined: &Inlined,
        decomp: &Decomposition,
        const_params: &HashMap<String, i64>,
        extent_overrides: &HashMap<String, (usize, usize)>,
    ) -> Result<Self, CoreError> {
        let mut scalars: HashMap<String, ScalarMap> =
            decomp.scalars().map(|(n, m)| (n.to_owned(), m)).collect();
        for (n, m) in &inlined.scalar_maps {
            scalars.insert(n.clone(), *m);
        }
        let mut arrays = HashMap::new();
        discover_arrays(
            &inlined.body,
            decomp,
            const_params,
            extent_overrides,
            &mut arrays,
        )?;
        // Subscripted entry parameters are arrays too.
        let mut subs = std::collections::HashSet::new();
        crate::inline::collect_subscripted(&inlined.body, &mut subs);
        for name in subs {
            if arrays.contains_key(&name) {
                continue;
            }
            // Only parameters (or aliases of discovered arrays) reach
            // here; locals were discovered at their allocation.
            let dist = decomp
                .array_dist(&name)
                .ok_or_else(|| CoreError::MissingMapping { name: name.clone() })?;
            let extents = extent_overrides.get(&name).copied();
            check_extents(&name, &dist, extents)?;
            arrays.insert(
                name.clone(),
                ArrayInfo {
                    dist,
                    extents,
                    // Dimensionality of parameters is refined at first
                    // use by the code generators; assume 2-D here.
                    ndims: 2,
                },
            );
        }
        Ok(Analysis {
            nprocs: decomp.nprocs(),
            scalars,
            arrays,
        })
    }

    /// Number of processors compiled for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The mapping of a scalar (default: replicated).
    pub fn scalar_map(&self, name: &str) -> ScalarMap {
        self.scalars.get(name).copied().unwrap_or(ScalarMap::All)
    }

    /// Is `name` a scalar pinned to one processor?
    pub fn is_pinned_scalar(&self, name: &str) -> bool {
        matches!(self.scalar_map(name), ScalarMap::On(_))
    }

    /// Known arrays.
    pub fn arrays(&self) -> &HashMap<String, ArrayInfo> {
        &self.arrays
    }

    /// Info for one array.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingMapping`] if unknown.
    pub fn array(&self, name: &str) -> Result<&ArrayInfo, CoreError> {
        self.arrays
            .get(name)
            .ok_or_else(|| CoreError::MissingMapping {
                name: name.to_owned(),
            })
    }

    /// The Map/Local/Alloc triple for an array. Extent-free distributions
    /// use placeholder extents (their owner and local functions do not
    /// depend on them); block families require folded extents.
    ///
    /// # Errors
    ///
    /// As [`Analysis::array`].
    pub fn inst(&self, name: &str) -> Result<DistInstance, CoreError> {
        let info = self.array(name)?;
        let (r, c) = info.extents.unwrap_or((1, 1));
        Ok(DistInstance::new(info.dist.clone(), r, c, self.nprocs))
    }

    /// The symbolic owner of an array element with the given source
    /// subscripts: [`EvalOwner::Dynamic`] when a subscript is not affine.
    ///
    /// # Errors
    ///
    /// As [`Analysis::array`].
    pub fn element_owner(&self, array: &str, indices: &[Expr]) -> Result<EvalOwner, CoreError> {
        if !self.array(array)?.dist.is_analyzable() {
            // Table-based assignments go through run-time ownership (the
            // inconclusive path).
            return Ok(EvalOwner::Dynamic);
        }
        let inst = self.inst(array)?;
        let affines: Option<Vec<Affine>> = indices.iter().map(extract_affine).collect();
        let Some(affines) = affines else {
            return Ok(EvalOwner::Dynamic);
        };
        let (i_aff, j_aff) = match affines.as_slice() {
            [j] => (Affine::constant(1), j.clone()),
            [i, j] => (i.clone(), j.clone()),
            _ => {
                return Ok(EvalOwner::Dynamic);
            }
        };
        // A distribution without a symbolic owner (table assignments)
        // degrades to the run-time ownership path instead of aborting.
        Ok(match inst.owner_expr(&i_aff, &j_aff) {
            Ok(expr) => EvalOwner::Expr(expr),
            Err(_) => EvalOwner::Dynamic,
        })
    }

    /// The roles of an assignment statement ([`Stmt::Let`] of a scalar or
    /// [`Stmt::ArrayWrite`]); `None` for other statement kinds.
    ///
    /// # Errors
    ///
    /// Mapping lookups may fail as in [`Analysis::array`].
    pub fn roles(&self, stmt: &Stmt) -> Result<Option<StmtRoles>, CoreError> {
        let (eval, rhs) = match stmt {
            Stmt::Let { name, init, .. } => {
                if matches!(init.kind, ExprKind::Alloc { .. }) {
                    // Allocations are executed by every processor (each
                    // allocates its local segment), not owner-computed.
                    return Ok(None);
                }
                let eval = match self.scalar_map(name) {
                    ScalarMap::All => EvalOwner::All,
                    ScalarMap::On(p) => EvalOwner::Expr(OwnerExpr::Const(p)),
                };
                (eval, init)
            }
            Stmt::ArrayWrite {
                array,
                indices,
                value,
                ..
            } => (self.element_owner(array, indices)?, value),
            _ => return Ok(None),
        };
        let is_mapped = |v: &str| self.is_pinned_scalar(v);
        let mut operands = Vec::new();
        for op in collect_operands(rhs, &is_mapped) {
            let owner = match &op {
                Operand::ArrayRead { array, indices } => self.element_owner(array, indices)?,
                Operand::ScalarVar { name } => match self.scalar_map(name) {
                    ScalarMap::On(p) => EvalOwner::Expr(OwnerExpr::Const(p)),
                    ScalarMap::All => EvalOwner::All,
                },
            };
            operands.push(OperandInfo { operand: op, owner });
        }
        Ok(Some(StmtRoles { eval, operands }))
    }
}

fn check_extents(
    name: &str,
    dist: &Dist,
    extents: Option<(usize, usize)>,
) -> Result<(), CoreError> {
    let needs = matches!(
        dist,
        Dist::ColumnBlock | Dist::RowBlock | Dist::Block2d { .. }
    );
    if needs && extents.is_none() {
        return Err(CoreError::Unsupported {
            message: format!(
                "array `{name}` uses a block distribution but its extents \
                 are not compile-time constants; pass them via const params \
                 or extent overrides"
            ),
            span: pdc_lang::Span::default(),
        });
    }
    Ok(())
}

fn discover_arrays(
    block: &Block,
    decomp: &Decomposition,
    const_params: &HashMap<String, i64>,
    extent_overrides: &HashMap<String, (usize, usize)>,
    out: &mut HashMap<String, ArrayInfo>,
) -> Result<(), CoreError> {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name, init, .. } => {
                if let ExprKind::Alloc { dims } = &init.kind {
                    let dist = decomp
                        .array_dist(name)
                        .ok_or_else(|| CoreError::MissingMapping { name: name.clone() })?;
                    let extents = extent_overrides.get(name).copied().or_else(|| {
                        let folded: Option<Vec<i64>> =
                            dims.iter().map(|d| fold_const(d, const_params)).collect();
                        folded.and_then(|v| match v.as_slice() {
                            [n] => Some((1, (*n).max(0) as usize)),
                            [r, c] => Some(((*r).max(0) as usize, (*c).max(0) as usize)),
                            _ => None,
                        })
                    });
                    check_extents(name, &dist, extents)?;
                    out.insert(
                        name.clone(),
                        ArrayInfo {
                            dist,
                            extents,
                            ndims: dims.len(),
                        },
                    );
                }
            }
            Stmt::For { body, .. } => {
                discover_arrays(body, decomp, const_params, extent_overrides, out)?
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                discover_arrays(then_blk, decomp, const_params, extent_overrides, out)?;
                if let Some(e) = else_blk {
                    discover_arrays(e, decomp, const_params, extent_overrides, out)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Fold an expression to a constant under compile-time parameter values.
fn fold_const(e: &Expr, params: &HashMap<String, i64>) -> Option<i64> {
    let a = extract_affine(e)?;
    let mut acc = a.constant_part();
    for v in a.vars() {
        acc += a.coeff(v) * params.get(v).copied()?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inline::{inline_program, ParamMapMode, ParamMaps};
    use pdc_lang::parse;

    fn analyze(src: &str, decomp: Decomposition, n: Option<i64>) -> (Inlined, Analysis) {
        let p = parse(src).unwrap();
        let inl = inline_program(
            &p,
            "main",
            &decomp,
            &ParamMaps::new(),
            ParamMapMode::Monomorphic,
        )
        .unwrap();
        let mut params = HashMap::new();
        if let Some(n) = n {
            params.insert("n".to_owned(), n);
        }
        let a = Analysis::build(&inl, &decomp, &params, &HashMap::new()).unwrap();
        (inl, a)
    }

    #[test]
    fn discovers_allocated_arrays() {
        let (_, a) = analyze(
            "procedure main(n) { let A = matrix(n, n); return A[1,1]; }",
            Decomposition::new(4).array("A", Dist::ColumnCyclic),
            Some(8),
        );
        let info = a.array("A").unwrap();
        assert_eq!(info.dist, Dist::ColumnCyclic);
        assert_eq!(info.extents, Some((8, 8)));
        assert_eq!(info.ndims, 2);
    }

    #[test]
    fn missing_mapping_is_an_error() {
        let p = parse("procedure main(n) { let A = matrix(n, n); return A[1,1]; }").unwrap();
        let d = Decomposition::new(4);
        let inl =
            inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic).unwrap();
        let err = Analysis::build(&inl, &d, &HashMap::new(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::MissingMapping { .. }));
    }

    #[test]
    fn block_dist_requires_constant_extents() {
        let p = parse("procedure main(n) { let A = matrix(n, n); return A[1,1]; }").unwrap();
        let d = Decomposition::new(4).array("A", Dist::ColumnBlock);
        let inl =
            inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic).unwrap();
        let err = Analysis::build(&inl, &d, &HashMap::new(), &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("block distribution"));
    }

    #[test]
    fn element_owner_matches_paper_example() {
        // "the evaluators for the reference A[i, j+1] would include
        // (j+1) mod S" (§3.2) — zero-based: (j+1-1) mod S = j mod S.
        let (_, a) = analyze(
            "procedure main(A, n) { return A[1, 1]; }",
            Decomposition::new(8).array("A", Dist::ColumnCyclic),
            None,
        );
        let idx = [
            pdc_lang::ast::Expr::new(ExprKind::Var("i".into()), Default::default()),
            pdc_lang::ast::Expr::new(
                ExprKind::Binary {
                    op: pdc_lang::ast::BinOp::Add,
                    lhs: Box::new(pdc_lang::ast::Expr::new(
                        ExprKind::Var("j".into()),
                        Default::default(),
                    )),
                    rhs: Box::new(pdc_lang::ast::Expr::new(
                        ExprKind::Int(1),
                        Default::default(),
                    )),
                },
                Default::default(),
            ),
        ];
        match a.element_owner("A", &idx).unwrap() {
            EvalOwner::Expr(OwnerExpr::CyclicMod { expr, s }) => {
                assert_eq!(s, 8);
                assert_eq!(expr.coeff("j"), 1);
                assert_eq!(expr.constant_part(), 0); // j+1-1
            }
            other => panic!("unexpected owner {other:?}"),
        }
    }

    #[test]
    fn figure4_roles() {
        // a:P1, b:P2, c:P3 — c := a + b has evaluator {P3} and
        // participants <P1, P2, P3> (Figure 4c).
        let src = "procedure main() { let a = 5; let b = 7; let c = a + b; return c; }";
        let d = Decomposition::new(4)
            .scalar("a", ScalarMap::On(1))
            .scalar("b", ScalarMap::On(2))
            .scalar("c", ScalarMap::On(3));
        let (inl, a) = {
            let p = parse(src).unwrap();
            let inl = inline_program(&p, "main", &d, &ParamMaps::new(), ParamMapMode::Monomorphic)
                .unwrap();
            let an = Analysis::build(&inl, &d, &HashMap::new(), &HashMap::new()).unwrap();
            (inl, an)
        };
        let roles = a.roles(&inl.body.stmts[2]).unwrap().unwrap();
        assert_eq!(roles.eval, EvalOwner::Expr(OwnerExpr::Const(3)));
        assert_eq!(roles.operands.len(), 2);
        assert_eq!(
            roles.operands[0].owner,
            EvalOwner::Expr(OwnerExpr::Const(1))
        );
        assert_eq!(
            roles.operands[1].owner,
            EvalOwner::Expr(OwnerExpr::Const(2))
        );
        assert_eq!(roles.participants().len(), 3);
    }

    #[test]
    fn non_affine_subscript_is_dynamic() {
        let (inl, a) = analyze(
            "procedure main(A, n) {
                for i = 1 to n do { A[i * i] = 1; }
                return 0;
            }",
            Decomposition::new(4).array("A", Dist::ColumnCyclic),
            None,
        );
        let Stmt::For { body, .. } = &inl.body.stmts[0] else {
            panic!("expected for");
        };
        let roles = a.roles(&body.stmts[0]).unwrap().unwrap();
        assert_eq!(roles.eval, EvalOwner::Dynamic);
    }

    #[test]
    fn alloc_let_has_no_roles() {
        let (inl, a) = analyze(
            "procedure main(n) { let A = matrix(n, n); return A[1,1]; }",
            Decomposition::new(2).array("A", Dist::ColumnCyclic),
            None,
        );
        assert!(a.roles(&inl.body.stmts[0]).unwrap().is_none());
    }
}
