//! Deterministic fault injection for the machine fabric.
//!
//! The paper's generated code assumes the iPSC/2 interconnect never loses,
//! duplicates, or reorders a message — the §4 pipelining argument (send new
//! values as soon as they are produced) is only safe on a perfectly
//! reliable network. This module lets tests and experiments *break* that
//! assumption on purpose, reproducibly: a seeded [`FaultPlan`] decides, for
//! the `k`-th transmission on each `(src, dst, tag)` triple, whether the
//! transport delivers it intact, drops it, duplicates it, delays it, or
//! reorders it past its successor.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, src, dst, tag, k)` where
//! `k` is the per-triple transmission index. The index is counted on the
//! *sender*, and FIFO order within a typed channel is program order on the
//! sender (see [`Scheduler`](crate::Scheduler)), so the same program run on
//! the deterministic simulator always sees the exact same injected faults —
//! no `Math.random`-style ambient entropy, no OS entropy, just a private
//! xorshift64* stream re-derived per message. On the threaded backend the
//! per-transmission decisions are equally deterministic, but wall-clock
//! retransmission timing can change *how many* transmissions occur.
//!
//! # Composition
//!
//! [`FaultyFabric`] wraps any [`Fabric`] — the simulator's
//! [`Machine`](crate::Machine), the threaded backend's
//! [`Endpoint`](crate::threaded::Endpoint), or a test double — so every
//! unmodified [`Process`](crate::Process) composes with it. Fault plans are
//! normally paired with the reliable-delivery layer (see
//! [`reliable`](crate::reliable)); a lossy plan without reliability simply
//! loses data, exactly like a real datagram network.

use crate::fabric::Fabric;
use crate::message::{ProcId, Tag, Word};
use std::collections::{BTreeSet, HashMap};

/// Scale of the per-mille probability knobs: a knob value of
/// [`PM_SCALE`] means "always".
pub const PM_SCALE: u32 = 1000;

/// What the faulty transport does with one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver intact.
    Deliver,
    /// Charge the sender, then lose the frame.
    Drop,
    /// Deliver intact, plus a transport-manufactured copy.
    Duplicate,
    /// Deliver with this many extra cycles of flight time.
    Delay(u64),
    /// Hold the frame back and release it after the next transmission on
    /// the same triple (a reorder-within-a-triple).
    Hold,
}

/// A processor stall event: at the `at_op`-th charged instruction on
/// `proc`, the processor loses `cycles` extra cycles (a page fault, an
/// interrupt storm — anything that delays one processor without touching
/// the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// The processor that stalls.
    pub proc: ProcId,
    /// The instruction index (per-processor `tick` count) at which it
    /// stalls. The first charged instruction is index 0.
    pub at_op: u64,
    /// Extra cycles charged at that instruction.
    pub cycles: u64,
}

/// A processor crash event: at the `at_op`-th charged instruction on
/// `proc` (or the first step boundary after it), the processor loses all
/// volatile state. With checkpointing enabled the scheduler restores it
/// from its last [`Checkpoint`](crate::checkpoint::Checkpoint); without,
/// the processor stays dead and its peers eventually observe
/// [`RetriesExhausted`](crate::MachineError::RetriesExhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The processor that crashes.
    pub proc: ProcId,
    /// The instruction index (per-processor `tick` count) at which it
    /// crashes. The crash fires at the first step boundary where the
    /// processor's charged-op counter has reached `at_op`.
    pub at_op: u64,
}

/// A seeded, fully deterministic description of what the fabric does to
/// traffic. All probability knobs are per-mille (`0..=1000`).
///
/// `max_faults_per_triple` bounds how many faults the plan may inject on
/// one `(src, dst, tag)` stream; once the budget is spent, later
/// transmissions pass through untouched. Together with a retransmit cap
/// larger than the budget this guarantees that a reliable run over a lossy
/// plan always converges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-message decision streams.
    pub seed: u64,
    /// Per-mille probability of dropping a transmission.
    pub drop_pm: u32,
    /// Per-mille probability of duplicating a transmission.
    pub dup_pm: u32,
    /// Per-mille probability of delaying a transmission.
    pub delay_pm: u32,
    /// Extra flight cycles for a delayed transmission.
    pub delay_cycles: u64,
    /// Per-mille probability of holding a transmission back past its
    /// successor on the same triple.
    pub reorder_pm: u32,
    /// Fault budget per `(src, dst, tag)` triple (`u32::MAX` = unlimited).
    pub max_faults_per_triple: u32,
    /// Triples whose every transmission is dropped, budget or not — the
    /// way to force a [`MachineError::RetriesExhausted`](crate::MachineError)
    /// outcome deterministically.
    pub black_holes: BTreeSet<(ProcId, ProcId, Tag)>,
    /// Processor stall events.
    pub stalls: Vec<Stall>,
    /// Scripted processor crash events.
    pub crashes: Vec<Crash>,
    /// Per-mille probability that a processor crashes at any given step
    /// boundary. Rolled once per step against the processor's charged-op
    /// counter, so the decision sequence is identical on both backends.
    pub crash_pm: u32,
    /// Budget for probabilistic crashes across the whole run (scripted
    /// crashes are exempt). Defaults to 0 — `crash_pm` alone injects
    /// nothing until a budget is granted.
    pub max_crashes: u32,
}

impl FaultPlan {
    /// The empty plan: a perfectly reliable fabric. Runs configured with
    /// it take the exact same code path as runs with no plan at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_pm: 0,
            dup_pm: 0,
            delay_pm: 0,
            delay_cycles: 0,
            reorder_pm: 0,
            max_faults_per_triple: u32::MAX,
            black_holes: BTreeSet::new(),
            stalls: Vec::new(),
            crashes: Vec::new(),
            crash_pm: 0,
            max_crashes: 0,
        }
    }

    /// An empty plan carrying only a seed (ready for builder calls).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Does this plan inject nothing at all?
    pub fn is_none(&self) -> bool {
        self.drop_pm == 0
            && self.dup_pm == 0
            && self.delay_pm == 0
            && self.reorder_pm == 0
            && self.black_holes.is_empty()
            && self.stalls.is_empty()
            && self.crashes.is_empty()
            && (self.crash_pm == 0 || self.max_crashes == 0)
    }

    /// Set the per-mille drop probability.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault probabilities exceed 1000‰.
    pub fn with_drops(mut self, pm: u32) -> Self {
        self.drop_pm = pm;
        self.check();
        self
    }

    /// Set the per-mille duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault probabilities exceed 1000‰.
    pub fn with_dups(mut self, pm: u32) -> Self {
        self.dup_pm = pm;
        self.check();
        self
    }

    /// Set the per-mille delay probability and the extra flight cycles.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault probabilities exceed 1000‰.
    pub fn with_delays(mut self, pm: u32, cycles: u64) -> Self {
        self.delay_pm = pm;
        self.delay_cycles = cycles;
        self.check();
        self
    }

    /// Set the per-mille reorder probability.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault probabilities exceed 1000‰.
    pub fn with_reorders(mut self, pm: u32) -> Self {
        self.reorder_pm = pm;
        self.check();
        self
    }

    /// Bound the number of faults injected per `(src, dst, tag)` triple.
    pub fn with_fault_budget(mut self, max: u32) -> Self {
        self.max_faults_per_triple = max;
        self
    }

    /// Drop *every* transmission on the given triple, ignoring the budget.
    pub fn with_black_hole(mut self, src: ProcId, dst: ProcId, tag: Tag) -> Self {
        self.black_holes.insert((src, dst, tag));
        self
    }

    /// Add a processor stall event.
    pub fn with_stall(mut self, proc: ProcId, at_op: u64, cycles: u64) -> Self {
        self.stalls.push(Stall {
            proc,
            at_op,
            cycles,
        });
        self
    }

    /// Add a scripted processor crash event.
    pub fn with_crash(mut self, proc: ProcId, at_op: u64) -> Self {
        self.crashes.push(Crash { proc, at_op });
        self
    }

    /// Enable probabilistic crashes: per-mille probability `pm` rolled at
    /// every step boundary, capped at `budget` crashes across the run.
    ///
    /// # Panics
    ///
    /// Panics if `pm` exceeds 1000‰.
    pub fn with_crash_rate(mut self, pm: u32, budget: u32) -> Self {
        assert!(
            pm <= PM_SCALE,
            "crash probability exceeds {PM_SCALE} per mille"
        );
        self.crash_pm = pm;
        self.max_crashes = budget;
        self
    }

    /// The probabilistic crash decision for processor `p` at charged-op
    /// counter `op` — a pure function, independent of any mutable state.
    pub fn crash_roll(&self, p: ProcId, op: u64) -> bool {
        if self.crash_pm == 0 {
            return false;
        }
        let mut x = splitmix(
            self.seed
                ^ splitmix((p.0 as u64).rotate_left(41) ^ 0xC4A5_11ED)
                ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let roll = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32 % PM_SCALE;
        roll < self.crash_pm
    }

    fn check(&self) {
        assert!(
            self.drop_pm + self.dup_pm + self.delay_pm + self.reorder_pm <= PM_SCALE,
            "combined fault probabilities exceed {PM_SCALE} per mille"
        );
    }

    /// The decision for the `k`-th transmission on `(src, dst, tag)` —
    /// a pure function, independent of any mutable state.
    pub fn decide(&self, src: ProcId, dst: ProcId, tag: Tag, k: u64) -> FaultDecision {
        if self.black_holes.contains(&(src, dst, tag)) {
            return FaultDecision::Drop;
        }
        let mut x = splitmix(
            self.seed
                ^ splitmix(src.0 as u64 ^ (dst.0 as u64).rotate_left(17) ^ ((tag.0 as u64) << 34))
                ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // xorshift64*: one more scramble so adjacent k values decorrelate.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let roll = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32 % PM_SCALE;
        if roll < self.drop_pm {
            FaultDecision::Drop
        } else if roll < self.drop_pm + self.dup_pm {
            FaultDecision::Duplicate
        } else if roll < self.drop_pm + self.dup_pm + self.delay_pm {
            FaultDecision::Delay(self.delay_cycles)
        } else if roll < self.drop_pm + self.dup_pm + self.delay_pm + self.reorder_pm {
            FaultDecision::Hold
        } else {
            FaultDecision::Deliver
        }
    }
}

/// SplitMix64 finalizer, used to derive per-message decision streams.
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tally of the faults a plan actually injected during one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transmissions dropped.
    pub drops: u64,
    /// Transmissions duplicated.
    pub dups: u64,
    /// Transmissions delayed.
    pub delays: u64,
    /// Transmissions held back past a successor.
    pub reorders: u64,
    /// Stall events fired.
    pub stalls: u64,
    /// Total extra cycles charged by stalls.
    pub stall_cycles: u64,
    /// Crash events fired.
    pub crashes: u64,
}

impl FaultCounts {
    /// Total message-level faults injected (stalls excluded).
    pub fn total(&self) -> u64 {
        self.drops + self.dups + self.delays + self.reorders
    }

    /// Merge another tally into this one (threaded backend teardown).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.drops += other.drops;
        self.dups += other.dups;
        self.delays += other.delays;
        self.reorders += other.reorders;
        self.stalls += other.stalls;
        self.stall_cycles += other.stall_cycles;
        self.crashes += other.crashes;
    }
}

/// The mutable run-time state of a plan: per-triple transmission indices
/// and fault budgets, held (reordered) frames, per-processor instruction
/// counters for stalls, and the injected-fault tally.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    xmit: HashMap<(ProcId, ProcId, Tag), u64>,
    spent: HashMap<(ProcId, ProcId, Tag), u32>,
    held: HashMap<(ProcId, ProcId, Tag), Vec<Word>>,
    ops: HashMap<ProcId, u64>,
    fired: Vec<bool>,
    crash_fired: Vec<bool>,
    crashes_spent: u32,
    counts: FaultCounts,
}

impl FaultState {
    /// Fresh state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.stalls.len()];
        let crash_fired = vec![false; plan.crashes.len()];
        FaultState {
            plan,
            xmit: HashMap::new(),
            spent: HashMap::new(),
            held: HashMap::new(),
            ops: HashMap::new(),
            fired,
            crash_fired,
            crashes_spent: 0,
            counts: FaultCounts::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Frames currently held for reordering (should be zero after a
    /// reliable run converges — retransmits flush them).
    pub fn held_frames(&self) -> usize {
        self.held.len()
    }

    /// Account one charged instruction on `p` and return the extra stall
    /// cycles (usually zero) to fold into the charge.
    pub fn stall_cycles(&mut self, p: ProcId) -> u64 {
        let op = self.ops.entry(p).or_insert(0);
        let at = *op;
        *op += 1;
        if self.plan.stalls.is_empty() {
            return 0;
        }
        let mut extra = 0;
        for (i, s) in self.plan.stalls.iter().enumerate() {
            if !self.fired[i] && s.proc == p && s.at_op == at {
                self.fired[i] = true;
                extra += s.cycles;
                self.counts.stalls += 1;
                self.counts.stall_cycles += s.cycles;
            }
        }
        extra
    }

    /// The charged-op counter for `p` — how many instructions it has
    /// been billed for so far. Step boundaries consult this to place
    /// checkpoint intervals and crash points identically on both
    /// backends.
    pub fn ops(&self, p: ProcId) -> u64 {
        self.ops.get(&p).copied().unwrap_or(0)
    }

    /// At a step boundary for `p`: does a crash fire now? Returns the
    /// charged-op counter at which it fired. Scripted crashes fire once
    /// each, at the first boundary where the counter has reached their
    /// `at_op`; probabilistic crashes roll [`FaultPlan::crash_roll`]
    /// against the counter and spend the crash budget.
    pub fn take_crash(&mut self, p: ProcId) -> Option<u64> {
        let at = self.ops(p);
        for (i, c) in self.plan.crashes.iter().enumerate() {
            if !self.crash_fired[i] && c.proc == p && at >= c.at_op {
                self.crash_fired[i] = true;
                self.counts.crashes += 1;
                return Some(at);
            }
        }
        if self.crashes_spent < self.plan.max_crashes && self.plan.crash_roll(p, at) {
            self.crashes_spent += 1;
            self.counts.crashes += 1;
            return Some(at);
        }
        None
    }

    /// Decide the fate of the next transmission on `(src, dst, tag)`,
    /// advancing the per-triple index and spending the fault budget.
    pub fn next_decision(&mut self, src: ProcId, dst: ProcId, tag: Tag) -> FaultDecision {
        let key = (src, dst, tag);
        let k = self.xmit.entry(key).or_insert(0);
        let index = *k;
        *k += 1;
        let mut d = self.plan.decide(src, dst, tag, index);
        let black_hole = self.plan.black_holes.contains(&key);
        if !black_hole {
            let spent = self.spent.entry(key).or_insert(0);
            if d != FaultDecision::Deliver {
                if *spent >= self.plan.max_faults_per_triple {
                    d = FaultDecision::Deliver;
                } else {
                    *spent += 1;
                }
            }
        }
        // Never stack two held frames on one triple: a second Hold would
        // only swap which frame waits, so deliver instead.
        if d == FaultDecision::Hold && self.held.contains_key(&key) {
            d = FaultDecision::Deliver;
        }
        d
    }

    /// Transmit `frame` over `fabric`, applying the plan. Dropped and
    /// delayed frames still charge the sender (the words left the CPU);
    /// duplicates and released held frames are transport-manufactured and
    /// charge nobody. The frame is borrowed so the retransmission window
    /// can dispatch straight out of its [`Pending`](crate::reliable::Pending)
    /// entries without cloning.
    pub fn dispatch<F: Fabric + ?Sized>(
        &mut self,
        fabric: &mut F,
        src: ProcId,
        dst: ProcId,
        tag: Tag,
        frame: &[Word],
    ) {
        let key = (src, dst, tag);
        let d = self.next_decision(src, dst, tag);
        match d {
            FaultDecision::Deliver => fabric.send_ref(src, dst, tag, frame),
            FaultDecision::Drop => {
                self.counts.drops += 1;
                fabric.send_lost(src, dst, tag, frame.len());
            }
            FaultDecision::Duplicate => {
                self.counts.dups += 1;
                fabric.send_ref(src, dst, tag, frame);
                fabric.inject_ref(src, dst, tag, frame, 0);
            }
            FaultDecision::Delay(extra) => {
                self.counts.delays += 1;
                fabric.send_lost(src, dst, tag, frame.len());
                fabric.inject_ref(src, dst, tag, frame, extra);
            }
            FaultDecision::Hold => {
                self.counts.reorders += 1;
                fabric.send_lost(src, dst, tag, frame.len());
                self.held.insert(key, frame.to_vec());
                return;
            }
        }
        // A transmission went out on this triple: release any held
        // predecessor *after* it, completing the reorder.
        if let Some(h) = self.held.remove(&key) {
            fabric.inject(src, dst, tag, h, 0);
        }
    }
}

/// A [`Fabric`] that applies a [`FaultPlan`] to every send and tick,
/// leaving receives untouched. Wraps any fabric — including a
/// `&mut Machine` — so unmodified processes run over a lossy network.
#[derive(Debug)]
pub struct FaultyFabric<F: Fabric> {
    inner: F,
    state: FaultState,
}

impl<F: Fabric> FaultyFabric<F> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        FaultyFabric {
            inner,
            state: FaultState::new(plan),
        }
    }

    /// The wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.state.counts()
    }

    /// Unwrap, returning the inner fabric.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: Fabric> Fabric for FaultyFabric<F> {
    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }

    fn cost_model(&self) -> &crate::cost::CostModel {
        self.inner.cost_model()
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        let extra = self.state.stall_cycles(p);
        self.inner.tick(p, cycles + extra);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        self.state
            .dispatch(&mut self.inner, src, dst, tag, &payload);
    }

    fn send_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word]) {
        self.state.dispatch(&mut self.inner, src, dst, tag, payload);
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        self.inner.try_recv(dst, src, tag)
    }

    fn try_recv_into(&mut self, dst: ProcId, src: ProcId, tag: Tag, out: &mut Vec<Word>) -> bool {
        self.inner.try_recv_into(dst, src, tag, out)
    }

    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        self.inner.send_lost(src, dst, tag, words);
    }

    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        self.inner.inject(src, dst, tag, payload, extra);
    }

    fn inject_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word], extra: u64) {
        self.inner.inject_ref(src, dst, tag, payload, extra);
    }

    fn metrics(&self) -> Option<&pdc_metrics::MetricsRegistry> {
        self.inner.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fabric::Machine;
    use crate::message::Time;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42).with_drops(300).with_dups(100);
        for k in 0..64 {
            assert_eq!(
                plan.decide(ProcId(0), ProcId(1), Tag(3), k),
                plan.decide(ProcId(0), ProcId(1), Tag(3), k),
            );
        }
    }

    #[test]
    fn decisions_vary_with_seed_triple_and_index() {
        let a = FaultPlan::seeded(1).with_drops(500);
        let b = FaultPlan::seeded(2).with_drops(500);
        let decisions = |p: &FaultPlan, src: usize, tag: u32| -> Vec<FaultDecision> {
            (0..256)
                .map(|k| p.decide(ProcId(src), ProcId(1), Tag(tag), k))
                .collect()
        };
        assert_ne!(
            decisions(&a, 0, 0),
            decisions(&b, 0, 0),
            "seeds decorrelate"
        );
        assert_ne!(
            decisions(&a, 0, 0),
            decisions(&a, 2, 0),
            "triples decorrelate"
        );
        assert_ne!(decisions(&a, 0, 0), decisions(&a, 0, 7), "tags decorrelate");
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::seeded(9).with_drops(250);
        let drops = (0..10_000)
            .filter(|&k| plan.decide(ProcId(0), ProcId(1), Tag(0), k) == FaultDecision::Drop)
            .count();
        assert!((2_000..3_000).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn empty_plan_is_none_and_delivers_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for k in 0..128 {
            assert_eq!(
                plan.decide(ProcId(0), ProcId(1), Tag(0), k),
                FaultDecision::Deliver
            );
        }
        assert!(!FaultPlan::seeded(0).with_drops(1).is_none());
    }

    #[test]
    fn budget_caps_faults_per_triple() {
        let plan = FaultPlan::seeded(3).with_drops(1000).with_fault_budget(2);
        let mut st = FaultState::new(plan);
        let drops = (0..50)
            .filter(|_| st.next_decision(ProcId(0), ProcId(1), Tag(0)) == FaultDecision::Drop)
            .count();
        assert_eq!(drops, 2);
        // An independent triple has its own budget.
        assert_eq!(
            st.next_decision(ProcId(0), ProcId(1), Tag(1)),
            FaultDecision::Drop
        );
    }

    #[test]
    fn black_hole_ignores_budget() {
        let plan =
            FaultPlan::seeded(0)
                .with_fault_budget(1)
                .with_black_hole(ProcId(0), ProcId(1), Tag(5));
        let mut st = FaultState::new(plan);
        for _ in 0..20 {
            assert_eq!(
                st.next_decision(ProcId(0), ProcId(1), Tag(5)),
                FaultDecision::Drop
            );
        }
        assert_eq!(
            st.next_decision(ProcId(0), ProcId(1), Tag(6)),
            FaultDecision::Deliver
        );
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn probability_overflow_rejected() {
        let _ = FaultPlan::seeded(0).with_drops(700).with_dups(400);
    }

    #[test]
    fn faulty_fabric_drops_on_machine() {
        let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(0));
        let mut f = FaultyFabric::new(Machine::new(2, CostModel::ipsc2()), plan);
        f.send(ProcId(0), ProcId(1), Tag(0), vec![1, 2]);
        // Sender paid for the send...
        assert_eq!(
            f.inner().clock(ProcId(0)),
            Time(CostModel::ipsc2().send_cost(2))
        );
        // ...but nothing was delivered.
        assert!(f.try_recv(ProcId(1), ProcId(0), Tag(0)).is_none());
        assert_eq!(f.counts().drops, 1);
    }

    #[test]
    fn faulty_fabric_duplicates_on_machine() {
        let plan = FaultPlan::seeded(0).with_dups(1000);
        let mut f = FaultyFabric::new(Machine::new(2, CostModel::zero()), plan);
        f.send(ProcId(0), ProcId(1), Tag(0), vec![7]);
        assert_eq!(f.try_recv(ProcId(1), ProcId(0), Tag(0)), Some(vec![7]));
        assert_eq!(f.try_recv(ProcId(1), ProcId(0), Tag(0)), Some(vec![7]));
        assert!(f.try_recv(ProcId(1), ProcId(0), Tag(0)).is_none());
        assert_eq!(f.counts().dups, 1);
    }

    #[test]
    fn faulty_fabric_reorders_within_triple() {
        let plan = FaultPlan::seeded(11).with_reorders(1000);
        let mut f = FaultyFabric::new(Machine::new(2, CostModel::zero()), plan);
        f.send(ProcId(0), ProcId(1), Tag(0), vec![1]); // held
        f.send(ProcId(0), ProcId(1), Tag(0), vec![2]); // delivered, then releases [1]
        assert_eq!(f.try_recv(ProcId(1), ProcId(0), Tag(0)), Some(vec![2]));
        assert_eq!(f.try_recv(ProcId(1), ProcId(0), Tag(0)), Some(vec![1]));
        assert!(f.counts().reorders >= 1);
    }

    #[test]
    fn delay_shifts_arrival_stamp() {
        let plan = FaultPlan::seeded(0).with_delays(1000, 500);
        let cost = CostModel::ipsc2();
        let mut f = FaultyFabric::new(Machine::new(2, cost), plan);
        f.send(ProcId(0), ProcId(1), Tag(0), vec![1]);
        f.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        let expected = cost.send_cost(1) + cost.flight + 500 + cost.recv_cost(1);
        assert_eq!(f.inner().clock(ProcId(1)), Time(expected));
        assert_eq!(f.counts().delays, 1);
    }

    #[test]
    fn scripted_crash_fires_once_at_first_boundary_past_at_op() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(1), 3);
        assert!(!plan.is_none());
        let mut st = FaultState::new(plan);
        // Boundary before the op counter reaches 3: nothing.
        assert_eq!(st.take_crash(ProcId(1)), None);
        for _ in 0..5 {
            st.stall_cycles(ProcId(1));
        }
        // Other processors never see it.
        assert_eq!(st.take_crash(ProcId(0)), None);
        // First boundary at or past op 3 fires, exactly once.
        assert_eq!(st.take_crash(ProcId(1)), Some(5));
        assert_eq!(st.take_crash(ProcId(1)), None);
        assert_eq!(st.counts().crashes, 1);
    }

    #[test]
    fn probabilistic_crashes_respect_budget_and_seed() {
        let plan = FaultPlan::seeded(77).with_crash_rate(1000, 2);
        assert!(!plan.is_none());
        let mut st = FaultState::new(plan);
        let mut fired = 0;
        for op in 0..100 {
            if st.take_crash(ProcId(0)).is_some() {
                fired += 1;
            }
            let _ = op;
            st.stall_cycles(ProcId(0));
        }
        assert_eq!(fired, 2, "budget caps probabilistic crashes");
        // Without a budget the rate knob alone injects nothing.
        assert!(FaultPlan::seeded(0).with_crash_rate(500, 0).is_none());
        // Pure function of (seed, proc, op).
        let p = FaultPlan::seeded(9).with_crash_rate(300, 1);
        for op in 0..64 {
            assert_eq!(p.crash_roll(ProcId(2), op), p.crash_roll(ProcId(2), op));
        }
    }

    #[test]
    fn stalls_charge_extra_cycles_once() {
        let plan = FaultPlan::seeded(0).with_stall(ProcId(0), 1, 1_000);
        let mut f = FaultyFabric::new(Machine::new(2, CostModel::zero()), plan);
        f.tick(ProcId(0), 1); // op 0: no stall
        f.tick(ProcId(0), 1); // op 1: stall fires
        f.tick(ProcId(0), 1); // op 2: no stall (fires once)
        assert_eq!(f.inner().clock(ProcId(0)), Time(3 + 1_000));
        assert_eq!(f.counts().stalls, 1);
        assert_eq!(f.counts().stall_cycles, 1_000);
    }
}
