//! Optional event tracing for debugging and visualization.

use crate::message::{ProcId, Tag, Time};

/// What happened in a traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A message left `src` for `dst`.
    Send {
        /// Destination processor.
        dst: ProcId,
        /// Message tag.
        tag: Tag,
        /// Payload size in words.
        words: usize,
    },
    /// A message from `src` was consumed.
    Recv {
        /// Originating processor.
        src: ProcId,
        /// Message tag.
        tag: Tag,
        /// Payload size in words.
        words: usize,
        /// Cycles the receiver spent waiting for this message beyond its
        /// own clock (0 if it had already arrived).
        waited: u64,
    },
    /// The process on this processor finished.
    Finish,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Processor on which the event occurred.
    pub proc: ProcId,
    /// Local clock after the event.
    pub at: Time,
    /// The event itself.
    pub kind: EventKind,
}

/// A bounded in-memory event trace.
///
/// Tracing is off by default ([`Trace::disabled`]); the bench and example
/// binaries enable it with a cap so pathological programs cannot exhaust
/// memory.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            cap: 0,
            dropped: 0,
            enabled: false,
        }
    }

    /// A trace that keeps at most `cap` events, counting overflow.
    pub fn bounded(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap,
            dropped: 0,
            enabled: true,
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, ev: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in global record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events that overflowed the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

/// Render a textual Gantt chart of the trace: one row per processor, time
/// scaled to `width` columns, with `s` marking sends, `r` receives and `#`
/// both in the same column. Useful for eyeballing pipelining — the
/// wavefront of the paper's Figure 2 is clearly visible in the staircase
/// of send/receive marks.
pub fn render_gantt(trace: &Trace, n_procs: usize, width: usize) -> String {
    let mut out = String::new();
    let horizon = trace
        .events()
        .iter()
        .map(|e| e.at.0)
        .max()
        .unwrap_or(0)
        .max(1);
    let col = |t: Time| ((t.0 as u128 * (width as u128 - 1)) / horizon as u128) as usize;
    for p in 0..n_procs {
        let mut row = vec![b'.'; width];
        for e in trace.events().iter().filter(|e| e.proc.0 == p) {
            let c = col(e.at);
            let mark = match e.kind {
                EventKind::Send { .. } => b's',
                EventKind::Recv { .. } => b'r',
                EventKind::Finish => b'|',
            };
            row[c] = match (row[c], mark) {
                (b'.', m) => m,
                (a, m) if a == m => m,
                _ => b'#',
            };
        }
        out.push_str(&format!("P{p:<3} "));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "     0{:>width$}\n",
        format!("{horizon} cycles"),
        width = width - 1
    ));
    if trace.dropped() > 0 {
        out.push_str(&format!(
            "     ({} events beyond the cap)\n",
            trace.dropped()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: usize) -> Event {
        Event {
            proc: ProcId(p),
            at: Time(1),
            kind: EventKind::Finish,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(ev(0));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_trace_caps_and_counts() {
        let mut t = Trace::bounded(2);
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn gantt_marks_events_per_processor() {
        let mut t = Trace::bounded(16);
        t.record(Event {
            proc: ProcId(0),
            at: Time(0),
            kind: EventKind::Send {
                dst: ProcId(1),
                tag: Tag(0),
                words: 1,
            },
        });
        t.record(Event {
            proc: ProcId(1),
            at: Time(100),
            kind: EventKind::Recv {
                src: ProcId(0),
                tag: Tag(0),
                words: 1,
                waited: 0,
            },
        });
        t.record(Event {
            proc: ProcId(1),
            at: Time(100),
            kind: EventKind::Finish,
        });
        let g = render_gantt(&t, 2, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("P0"));
        assert!(lines[0].contains('s'));
        // The recv and finish share a column: squashed to '#'.
        assert!(lines[1].contains('#'));
        assert!(g.contains("100 cycles"));
    }

    #[test]
    fn gantt_of_empty_trace_is_blank_rows() {
        let g = render_gantt(&Trace::disabled(), 2, 10);
        assert_eq!(g.lines().count(), 3);
    }
}
