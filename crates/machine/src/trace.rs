//! Optional event tracing for debugging, visualization, and the
//! observability layer (Chrome export in [`trace_chrome`](crate::trace_chrome),
//! critical-path analysis in [`trace_analysis`](crate::trace_analysis)).
//!
//! Both execution backends record the same events: the simulator's
//! [`Machine`](crate::Machine) directly, the threaded backend per
//! [`Endpoint`](crate::threaded::Endpoint) with the per-thread traces
//! merged by timestamp at teardown. Because logical clocks are
//! backend-invariant, so is the merged trace (on the raw fabric; under
//! fault injection the retransmission *schedule* is wall-clock-dependent
//! on the threaded backend).

use crate::message::{ProcId, Tag, Time};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// What happened in a traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A contiguous run of local computation ending at the event's `at`.
    /// Individual instruction ticks are coalesced into one interval per
    /// run so tight loops do not explode the trace.
    Compute {
        /// Length of the interval in (slowdown-scaled) cycles.
        cycles: u64,
    },
    /// A message left `src` for `dst`. `at` is the send completion time;
    /// the sender was busy packing over `[at - cost, at]`.
    Send {
        /// Destination processor.
        dst: ProcId,
        /// Message tag.
        tag: Tag,
        /// Payload size in words.
        words: usize,
        /// Packing cost the sender paid (slowdown-scaled).
        cost: u64,
    },
    /// A message from `src` was consumed. `at` is the post-unpack clock;
    /// the receiver unpacked over `[at - cost, at]` and sat blocked over
    /// the `waited` cycles before that.
    Recv {
        /// Originating processor.
        src: ProcId,
        /// Message tag.
        tag: Tag,
        /// Payload size in words.
        words: usize,
        /// Cycles the receiver spent waiting for this message beyond its
        /// own clock (0 if it had already arrived).
        waited: u64,
        /// Unpacking cost the receiver paid (slowdown-scaled).
        cost: u64,
    },
    /// A send whose frame the transport lost (fault injection): the
    /// sender paid `cost` but nothing was delivered.
    FrameLost {
        /// Intended destination.
        dst: ProcId,
        /// Message tag.
        tag: Tag,
        /// Payload size in words.
        words: usize,
        /// Packing cost the sender paid anyway.
        cost: u64,
    },
    /// The reliable-delivery layer retransmitted frame `seq` of the
    /// `(dst, tag)` stream.
    Retransmit {
        /// Stream destination.
        dst: ProcId,
        /// Stream tag.
        tag: Tag,
        /// Sequence number of the retransmitted frame.
        seq: u64,
    },
    /// The reliable-delivery layer retired sends up to cumulative
    /// sequence `cum` on the `(peer, tag)` stream (an ack arrived), or —
    /// on the receive side — acknowledged a batch it ingested.
    Ack {
        /// The stream peer.
        peer: ProcId,
        /// Stream (data) tag.
        tag: Tag,
        /// Cumulative sequence number acknowledged.
        cum: u64,
    },
    /// A checkpoint of this processor's complete execution state was
    /// serialized (see [`checkpoint`](crate::checkpoint)).
    CheckpointTaken {
        /// Charged-op counter at the snapshot.
        at_op: u64,
        /// Serialized checkpoint size in bytes.
        bytes: u64,
    },
    /// The processor crashed (fault injection), losing all volatile state.
    Crash {
        /// Charged-op counter at the crash.
        at_op: u64,
    },
    /// The processor was restored from its last checkpoint.
    Restore {
        /// The op counter of the checkpoint restored to.
        from_op: u64,
        /// Charged ops that must be re-executed to reach the crash point.
        replayed: u64,
    },
    /// A frame out of a restored sender window was re-armed for
    /// retransmission — the reliable layer will replay it to the peer.
    ReplayedFrame {
        /// Stream destination.
        dst: ProcId,
        /// Stream tag.
        tag: Tag,
        /// Sequence number of the replayed frame.
        seq: u64,
    },
    /// The process on this processor finished.
    Finish,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global record order (per backend; reassigned after a threaded
    /// merge so it is again strictly increasing).
    pub seq: u64,
    /// Processor on which the event occurred.
    pub proc: ProcId,
    /// Local clock after the event.
    pub at: Time,
    /// The event itself.
    pub kind: EventKind,
}

impl Event {
    /// Length of the busy/blocked interval ending at [`at`](Event::at):
    /// compute cycles, packing/unpacking cost (plus blocked wait for a
    /// receive), zero for instantaneous protocol events.
    pub fn duration(&self) -> u64 {
        match self.kind {
            EventKind::Compute { cycles } => cycles,
            EventKind::Send { cost, .. } | EventKind::FrameLost { cost, .. } => cost,
            EventKind::Recv { waited, cost, .. } => waited + cost,
            EventKind::Retransmit { .. }
            | EventKind::Ack { .. }
            | EventKind::CheckpointTaken { .. }
            | EventKind::Crash { .. }
            | EventKind::Restore { .. }
            | EventKind::ReplayedFrame { .. }
            | EventKind::Finish => 0,
        }
    }

    /// Start of the interval ending at [`at`](Event::at).
    pub fn start(&self) -> Time {
        Time(self.at.0.saturating_sub(self.duration()))
    }
}

/// What a bounded trace drops when it overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Keep the first `cap` events, drop everything after — the prologue
    /// of the run survives. The default.
    #[default]
    KeepOldest,
    /// Keep the last `cap` events, evicting from the front — the epilogue
    /// (where pipelining is visible) survives.
    KeepNewest,
}

/// An open (not yet emitted) compute interval for one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenCompute {
    end: Time,
    cycles: u64,
}

/// A bounded in-memory event trace.
///
/// Tracing is off by default ([`Trace::disabled`]); the bench and example
/// binaries enable it with a cap so pathological programs cannot exhaust
/// memory. On overflow the [`DropPolicy`] decides which end of the run
/// survives, and [`dropped`](Trace::dropped) counts the evicted events —
/// surfaced by the Chrome exporter and the gantt renderer so a truncated
/// trace is never mistaken for a complete one.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<Event>,
    cap: usize,
    policy: DropPolicy,
    dropped: u64,
    next_seq: u64,
    enabled: bool,
    /// Per-processor compute interval still being extended; flushed when
    /// any other event lands on that processor (or explicitly).
    open: BTreeMap<usize, OpenCompute>,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            events: VecDeque::new(),
            cap: 0,
            policy: DropPolicy::KeepOldest,
            dropped: 0,
            next_seq: 0,
            enabled: false,
            open: BTreeMap::new(),
        }
    }

    /// A trace that keeps at most the *oldest* `cap` events, counting
    /// overflow (see [`DropPolicy::KeepOldest`]).
    pub fn bounded(cap: usize) -> Self {
        Trace::with_policy(cap, DropPolicy::KeepOldest)
    }

    /// A bounded trace with an explicit overflow policy.
    pub fn with_policy(cap: usize, policy: DropPolicy) -> Self {
        Trace {
            events: VecDeque::new(),
            cap,
            policy,
            dropped: 0,
            next_seq: 0,
            enabled: true,
            open: BTreeMap::new(),
        }
    }

    /// An empty trace with the same cap/policy/enabled configuration —
    /// how the threaded backend clones the simulator machine's trace
    /// configuration onto each endpoint.
    pub fn like(&self) -> Self {
        Trace {
            events: VecDeque::new(),
            cap: self.cap,
            policy: self.policy,
            dropped: 0,
            next_seq: 0,
            enabled: self.enabled,
            open: BTreeMap::new(),
        }
    }

    /// Record an event (no-op when disabled). Flushes the processor's
    /// open compute interval first so per-processor order is preserved.
    pub fn record(&mut self, proc: ProcId, at: Time, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.flush_proc(proc);
        self.push(Event {
            seq: 0,
            proc,
            at,
            kind,
        });
    }

    /// Record `to - from` cycles of computation on `proc`, coalescing
    /// with an adjacent open interval. Zero-length intervals are ignored.
    pub fn record_compute(&mut self, proc: ProcId, from: Time, to: Time) {
        if !self.enabled || to <= from {
            return;
        }
        let cycles = to.0 - from.0;
        match self.open.get_mut(&proc.0) {
            Some(o) if o.end == from => {
                o.end = to;
                o.cycles += cycles;
            }
            _ => {
                self.flush_proc(proc);
                self.open.insert(proc.0, OpenCompute { end: to, cycles });
            }
        }
    }

    /// Emit `proc`'s open compute interval, if any.
    fn flush_proc(&mut self, proc: ProcId) {
        if let Some(o) = self.open.remove(&proc.0) {
            self.push(Event {
                seq: 0,
                proc,
                at: o.end,
                kind: EventKind::Compute { cycles: o.cycles },
            });
        }
    }

    /// Emit every open compute interval. Call before reading a final
    /// trace; [`Machine::snapshot_trace`](crate::Machine::snapshot_trace)
    /// and the threaded merge do this for you.
    pub fn flush(&mut self) {
        let procs: Vec<usize> = self.open.keys().copied().collect();
        for p in procs {
            self.flush_proc(ProcId(p));
        }
    }

    fn push(&mut self, mut ev: Event) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        match self.policy {
            DropPolicy::KeepOldest => {
                if self.events.len() < self.cap {
                    self.events.push_back(ev);
                } else {
                    self.dropped += 1;
                }
            }
            DropPolicy::KeepNewest => {
                self.events.push_back(ev);
                while self.events.len() > self.cap {
                    self.events.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// The recorded events, in record order (after a threaded merge: in
    /// timestamp order, per-processor record order preserved).
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that overflowed the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Merge per-processor traces (from the threaded backend) into one:
    /// events are stably sorted by timestamp, so each processor's own
    /// record order is preserved, and sequence numbers are reassigned in
    /// the merged order. Drop counts are summed; the merged cap is the
    /// sum of the parts' caps (each endpoint bounded its own memory).
    pub fn merge(parts: Vec<Trace>) -> Trace {
        let enabled = parts.iter().any(|t| t.enabled);
        let cap: usize = parts.iter().map(|t| t.cap).sum();
        let policy = parts.first().map_or(DropPolicy::KeepOldest, |t| t.policy);
        let dropped = parts.iter().map(|t| t.dropped).sum();
        let mut events: Vec<Event> = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        for mut part in parts {
            part.flush();
            events.extend(part.events);
        }
        events.sort_by_key(|e| e.at.0);
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        Trace {
            events: events.into(),
            cap,
            policy,
            dropped,
            next_seq: 0,
            enabled,
            open: BTreeMap::new(),
        }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

/// Render a textual Gantt chart of the trace: one row per processor, time
/// scaled to `width` columns, with `s` marking sends, `r` receives, `x`
/// lost/retransmitted frames, `a` acks, `|` completion, and `#` several in
/// the same column (compute intervals are not marked). Useful for
/// eyeballing pipelining — the wavefront of the paper's Figure 2 is
/// clearly visible in the staircase of send/receive marks.
///
/// A `width` below 2 cannot hold a time axis; the renderer returns a
/// one-line message instead of panicking. A trace whose events all share
/// one timestamp scales that instant to the final column.
pub fn render_gantt(trace: &Trace, n_procs: usize, width: usize) -> String {
    if width < 2 {
        return format!("(gantt needs a width of at least 2 columns, got {width})\n");
    }
    let mut out = String::new();
    let horizon = trace.events().map(|e| e.at.0).max().unwrap_or(0).max(1);
    let col = |t: Time| ((t.0 as u128 * (width as u128 - 1)) / horizon as u128) as usize;
    for p in 0..n_procs {
        let mut row = vec![b'.'; width];
        for e in trace.events().filter(|e| e.proc.0 == p) {
            let mark = match e.kind {
                EventKind::Send { .. } => b's',
                EventKind::Recv { .. } => b'r',
                EventKind::FrameLost { .. } | EventKind::Retransmit { .. } => b'x',
                EventKind::Ack { .. } => b'a',
                EventKind::CheckpointTaken { .. } => b'c',
                EventKind::Crash { .. } => b'!',
                EventKind::Restore { .. } | EventKind::ReplayedFrame { .. } => b'R',
                EventKind::Finish => b'|',
                EventKind::Compute { .. } => continue,
            };
            let c = col(e.at);
            row[c] = match (row[c], mark) {
                (b'.', m) => m,
                (a, m) if a == m => m,
                _ => b'#',
            };
        }
        out.push_str(&format!("P{p:<3} "));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "     0{:>width$}\n",
        format!("{horizon} cycles"),
        width = width - 1
    ));
    if trace.dropped() > 0 {
        out.push_str(&format!(
            "     ({} events beyond the cap)\n",
            trace.dropped()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    fn ev(t: &mut Trace, p: usize, at: u64) {
        t.record(ProcId(p), Time(at), EventKind::Finish);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        ev(&mut t, 0, 1);
        t.record_compute(ProcId(0), Time(0), Time(5));
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_trace_caps_and_counts() {
        let mut t = Trace::bounded(2);
        for i in 0..5 {
            ev(&mut t, i, i as u64);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // Keep-oldest: the first two events survive.
        let ats: Vec<u64> = t.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![0, 1]);
    }

    #[test]
    fn keep_newest_evicts_from_the_front() {
        let mut t = Trace::with_policy(2, DropPolicy::KeepNewest);
        for i in 0..5 {
            ev(&mut t, i, i as u64);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let ats: Vec<u64> = t.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![3, 4], "the tail of the run survives");
    }

    #[test]
    fn compute_intervals_coalesce() {
        let mut t = Trace::bounded(16);
        t.record_compute(ProcId(0), Time(0), Time(5));
        t.record_compute(ProcId(0), Time(5), Time(9));
        // A non-adjacent interval flushes the open one.
        t.record_compute(ProcId(0), Time(20), Time(22));
        t.flush();
        let evs: Vec<&Event> = t.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Compute { cycles: 9 });
        assert_eq!(evs[0].at, Time(9));
        assert_eq!(evs[1].kind, EventKind::Compute { cycles: 2 });
        assert_eq!(evs[1].at, Time(22));
    }

    #[test]
    fn other_events_flush_open_compute_in_order() {
        let mut t = Trace::bounded(16);
        t.record_compute(ProcId(0), Time(0), Time(5));
        t.record(
            ProcId(0),
            Time(10),
            EventKind::Send {
                dst: ProcId(1),
                tag: Tag(0),
                words: 1,
                cost: 5,
            },
        );
        let kinds: Vec<&EventKind> = t.events().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Compute { cycles: 5 }));
        assert!(matches!(kinds[1], EventKind::Send { .. }));
    }

    #[test]
    fn seq_numbers_are_strictly_increasing() {
        let mut t = Trace::bounded(16);
        for i in 0..5 {
            ev(&mut t, 0, i);
        }
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn merge_sorts_by_time_and_reseqs() {
        let mut a = Trace::bounded(16);
        ev(&mut a, 0, 10);
        ev(&mut a, 0, 30);
        let mut b = Trace::bounded(16);
        ev(&mut b, 1, 20);
        b.record_compute(ProcId(1), Time(30), Time(40));
        let m = Trace::merge(vec![a, b]);
        let ats: Vec<u64> = m.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![10, 20, 30, 40], "flushed and time-sorted");
        let seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(m.is_enabled());
    }

    #[test]
    fn event_interval_accessors() {
        let e = Event {
            seq: 0,
            proc: ProcId(1),
            at: Time(100),
            kind: EventKind::Recv {
                src: ProcId(0),
                tag: Tag(0),
                words: 2,
                waited: 30,
                cost: 10,
            },
        };
        assert_eq!(e.duration(), 40);
        assert_eq!(e.start(), Time(60));
    }

    #[test]
    fn gantt_marks_events_per_processor() {
        let mut t = Trace::bounded(16);
        t.record(
            ProcId(0),
            Time(0),
            EventKind::Send {
                dst: ProcId(1),
                tag: Tag(0),
                words: 1,
                cost: 0,
            },
        );
        t.record(
            ProcId(1),
            Time(100),
            EventKind::Recv {
                src: ProcId(0),
                tag: Tag(0),
                words: 1,
                waited: 0,
                cost: 0,
            },
        );
        t.record(ProcId(1), Time(100), EventKind::Finish);
        let g = render_gantt(&t, 2, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("P0"));
        assert!(lines[0].contains('s'));
        // The recv and finish share a column: squashed to '#'.
        assert!(lines[1].contains('#'));
        assert!(g.contains("100 cycles"));
    }

    #[test]
    fn gantt_of_empty_trace_is_blank_rows() {
        let g = render_gantt(&Trace::disabled(), 2, 10);
        assert_eq!(g.lines().count(), 3);
    }

    #[test]
    fn gantt_narrow_width_is_a_message_not_a_panic() {
        let mut t = Trace::bounded(4);
        ev(&mut t, 0, 5);
        for w in [0, 1] {
            let g = render_gantt(&t, 1, w);
            assert!(g.contains("width of at least 2"), "width {w}: {g}");
        }
    }

    #[test]
    fn gantt_single_timestamp_lands_in_final_column() {
        let mut t = Trace::bounded(4);
        ev(&mut t, 0, 42);
        let g = render_gantt(&t, 1, 10);
        let row = g.lines().next().unwrap();
        assert!(row.ends_with('|'), "mark at the right edge: {row:?}");
    }
}
