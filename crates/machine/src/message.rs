//! Identifiers, simulated time, and the message record.

use std::fmt;

/// Index of a processor, `0 .. n`.
///
/// Printed as `P<k>`; the paper numbers processors `P1, P2, …` but all
/// arithmetic in the mapping functions is zero-based (`j mod S`), so we keep
/// zero-based ids throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Message type, in the sense of the Intel NX `csend(type, …)` argument.
///
/// The compiler assigns a distinct tag to each (statement, operand) stream
/// so that pipelined streams between the same pair of processors cannot
/// interleave incorrectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Simulated time, in abstract machine cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Saturating addition of a cost.
    pub fn plus(self, cycles: u64) -> Time {
        Time(self.0.saturating_add(cycles))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// One machine word of payload. Values of the source language are encoded
/// into words by the SPMD layer (integers directly, floats via their bit
/// pattern).
pub type Word = i64;

/// A message in flight or queued at its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Type tag used for matching.
    pub tag: Tag,
    /// Payload words.
    pub payload: Vec<Word>,
    /// Sender clock when the send started.
    pub sent_at: Time,
    /// Time the message becomes visible at the destination.
    pub arrives_at: Time,
}

impl Message {
    /// Payload length in words.
    pub fn len_words(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(Tag(9).to_string(), "t9");
        assert_eq!(Time(12).to_string(), "12cy");
    }

    #[test]
    fn time_plus_saturates() {
        assert_eq!(Time(5).plus(7), Time(12));
        assert_eq!(Time(u64::MAX).plus(1), Time(u64::MAX));
    }

    #[test]
    fn message_len() {
        let m = Message {
            src: ProcId(0),
            dst: ProcId(1),
            tag: Tag(0),
            payload: vec![1, 2, 3],
            sent_at: Time::ZERO,
            arrives_at: Time(10),
        };
        assert_eq!(m.len_words(), 3);
    }
}
