//! A deterministic discrete-event simulator of a message-passing
//! multiprocessor, in the style of the Intel iPSC/2 or NCUBE machines the
//! paper targets (§2.2).
//!
//! The machine model is deliberately simple, exactly as the paper assumes:
//!
//! * `n` processors, each running one process;
//! * communication cost is *independent of the identities* of the
//!   processors — packing/unpacking dominates time-of-flight, so access
//!   cost is "binary": local is cheap, every non-local access costs the
//!   same;
//! * sends are asynchronous (`csend` returns once the message is handed to
//!   the transport) and receives block until a matching message exists;
//! * messages are matched by *(source, destination, tag)* with FIFO order
//!   within a triple, mirroring the typed `csend`/`crecv` of the Intel NX
//!   system used in the paper's Appendix A programs.
//!
//! Simulated time is tracked with per-processor logical clocks: every
//! instruction advances the executing processor's clock by a
//! [`CostModel`]-determined amount; a message is stamped with
//! `sender_clock + startup + words × per_word` and a receive sets the
//! receiver's clock to `max(own clock, arrival) + receive overhead`. The
//! resulting *makespan* (maximum final clock) is the quantity the paper's
//! Figures 6 and 7 plot, and it is exactly reproducible run to run.
//!
//! The crate is independent of the language and compiler layers: anything
//! that implements [`Process`] can be scheduled with [`Scheduler`]. The
//! SPMD virtual machine in `pdc-spmd` is the production client; the unit
//! tests here drive the fabric with small hand-written processes.
//!
//! # Examples
//!
//! ```
//! use pdc_machine::{CostModel, Machine, ProcId, Tag};
//!
//! let mut m = Machine::new(2, CostModel::ipsc2());
//! m.send(ProcId(0), ProcId(1), Tag(7), vec![41, 42]);
//! let words = m
//!     .try_recv(ProcId(1), ProcId(0), Tag(7))
//!     .expect("message is available");
//! assert_eq!(words, vec![41, 42]);
//! assert_eq!(m.stats().network.messages, 1);
//! ```

pub mod checkpoint;
mod cost;
mod error;
mod fabric;
pub mod fault;
mod message;
mod network;
pub mod reliable;
pub mod ring;
mod sched;
mod stats;
pub mod threaded;
mod trace;
pub mod trace_analysis;
pub mod trace_chrome;

pub use checkpoint::{Checkpoint, CheckpointCfg, RecoveryReport};
pub use cost::CostModel;
pub use error::MachineError;
pub use fabric::{Fabric, Machine};
pub use fault::{Crash, FaultCounts, FaultDecision, FaultPlan, FaultState, FaultyFabric, Stall};
pub use message::{Message, ProcId, Tag, Time, Word};
pub use network::Network;
pub use reliable::{ack_tag, RelConfig, ACK_TAG_BIT};
pub use sched::{Process, RunReport, Scheduler, Step};
pub use stats::{FaultReport, MachineStats, NetworkStats, ProcStats};
pub use threaded::{Backend, ThreadedRunner, DEFAULT_RECV_TIMEOUT};
pub use trace::{render_gantt as trace_render, DropPolicy, Event, EventKind, Trace};
pub use trace_analysis::{
    analyze, CommEdge, CriticalPath, PathSegment, ProcProfile, TraceAnalysis,
};
pub use trace_chrome::{
    chrome_trace, chrome_trace_with_metrics, validate_chrome_trace, ChromeStats,
};

/// Runtime metrics layer (re-exported from `pdc-metrics`): lock-free
/// sharded counters/histograms and the always-on flight recorder both
/// backends populate. See [`MetricsRegistry`] and
/// [`RunReport::metrics`](crate::RunReport).
pub use pdc_metrics as metrics;
pub use pdc_metrics::{Ctr, FlightEvent, FlightKind, MetricsRegistry, MetricsSnapshot};
